package ontology

import "sync"

var (
	pdc20Once sync.Once
	pdc20Tree *Guideline
)

// PDC20Beta returns the NSF/IEEE-TCPP PDC curriculum version 2.0-beta
// (released late 2020; the paper notes the revision was expected in
// 2023). The beta keeps the four areas of PDC12 but broadens them:
// energy as a first-class concern, accelerators, big-data processing,
// and a more explicit treatment of concurrency safety. The tree is built
// once and shared; treat it as read-only.
//
// CS Materials supports classifying against multiple guideline versions
// simultaneously; this reproduction ships PDC20-beta so anchor rules and
// course classifications can migrate when the community does.
func PDC20Beta() *Guideline {
	pdc20Once.Do(func() { pdc20Tree = buildPDC20() })
	return pdc20Tree
}

func buildPDC20() *Guideline {
	g := NewGuideline("NSF/IEEE-TCPP PDC 2.0-beta")
	for _, area := range pdc20Data {
		a := g.AddChildID(g.Root, KindArea, area.abbrev, area.name)
		for _, unit := range area.units {
			u := g.AddChild(a, KindUnit, unit.name)
			for _, enc := range unit.topics {
				name, bloom, core := parsePDCTopic(enc)
				n := g.AddChild(u, KindTopic, name)
				n.Bloom = bloom
				n.Core = core
			}
		}
	}
	return g
}

// pdc20Data reconstructs the 2.0-beta body of knowledge: the PDC12
// skeleton with the beta's additions.
var pdc20Data = []pdcArea{
	{
		abbrev: "ARCH", name: "Architecture",
		units: []pdcUnit{
			{
				name: "Classes of Parallelism",
				topics: []string{
					"Superscalar instruction-level parallelism|K|c",
					"SIMD and vector operation|C|c",
					"Pipelines as assembly-line parallelism|C|c",
					"MIMD and the Flynn taxonomy|K|c",
					"Simultaneous multithreading|K|c",
					"Multicore processors|C|c",
					"Heterogeneous architectures such as CPU plus GPU|C|c",
					"GPU and accelerator microarchitecture|K|e",
					"Domain-specific accelerators such as tensor units|K|e",
				},
			},
			{
				name: "Memory Hierarchy",
				topics: []string{
					"Cache organization in multicore systems|C|c",
					"Atomicity of memory operations|C|c",
					"Memory consistency models|K|c",
					"Cache coherence protocols|K|e",
					"False sharing|C|c",
					"High-bandwidth and non-volatile memory|K|e",
				},
			},
			{
				name: "Energy and Power",
				topics: []string{
					"Power as a first-class architectural constraint|K|c",
					"Dynamic voltage and frequency scaling|K|e",
					"Energy proportionality of computing systems|K|e",
					"Dark silicon and the end of Dennard scaling|K|e",
				},
			},
			{
				name: "Performance Metrics",
				topics: []string{
					"Peak versus sustained performance|K|c",
					"FLOPS, bandwidth, and arithmetic intensity|C|c",
					"The roofline model|K|e",
				},
			},
		},
	},
	{
		abbrev: "PROG", name: "Programming",
		units: []pdcUnit{
			{
				name: "Parallel Programming Paradigms",
				topics: []string{
					"Programming by task decomposition|A|c",
					"Programming by data-parallel decomposition|A|c",
					"Shared-memory programming|A|c",
					"Message-passing programming|C|c",
					"Hybrid shared and distributed programming|C|c",
					"Asynchronous and event-driven concurrency|C|c",
					"Serverless and function-as-a-service models|K|e",
					"Dataflow and streaming models|K|e",
				},
			},
			{
				name: "Parallel Programming Notations",
				topics: []string{
					"Parallel-for loop annotations such as OpenMP|A|c",
					"Task-spawn constructs such as cilk spawn and sync|C|c",
					"Thread libraries|C|c",
					"Message-passing libraries such as MPI|C|c",
					"Futures, promises, and async-await|C|c",
					"Concurrent collections and thread-safe containers|C|c",
					"GPU kernel programming such as CUDA and SYCL|C|e",
					"Parallel frameworks for big data such as MapReduce and Spark|K|e",
				},
			},
			{
				name: "Semantics and Correctness Issues",
				topics: []string{
					"Tasks and threads as units of execution|C|c",
					"Synchronization: critical regions, producer-consumer|A|c",
					"Mutual exclusion with locks|A|c",
					"Data races and determinism|A|c",
					"Deadlock detection and avoidance|C|c",
					"Memory models and visibility of writes|C|c",
					"Thread safety of data structures|C|c",
					"Lock-free and wait-free techniques|K|e",
					"Race detection and sanitizer tooling|K|e",
				},
			},
			{
				name: "Performance Issues in Programming",
				topics: []string{
					"Computation decomposition and granularity|C|c",
					"Load balancing of parallel work|C|c",
					"Scheduling and mapping tasks to resources|C|c",
					"Data distribution and locality|C|c",
					"Communication overhead and aggregation|C|c",
					"Energy-aware programming|K|e",
					"Performance portability across architectures|K|e",
				},
			},
		},
	},
	{
		abbrev: "ALGO", name: "Algorithms",
		units: []pdcUnit{
			{
				name: "Parallel and Distributed Models and Complexity",
				topics: []string{
					"Costs of computation: time, space, power, energy|C|c",
					"Asymptotic analysis in the parallel context|A|c",
					"Work and span of a computation DAG|C|c",
					"Critical path as a lower bound on time|C|c",
					"Speedup, efficiency, and scalability|C|c",
					"Amdahl's law and Gustafson's law|C|c",
					"Dependencies and task graphs as models of computation|C|c",
					"Directed acyclic graphs and topological order|C|c",
					"Communication-avoiding algorithm design|K|e",
				},
			},
			{
				name: "Algorithmic Paradigms",
				topics: []string{
					"Divide-and-conquer in parallel|A|c",
					"Recursive task-based parallelism|C|c",
					"Reduction as a parallel pattern|A|c",
					"Scan and prefix-sum as parallel patterns|C|c",
					"Stencil computations|C|c",
					"Master-worker and work queues|C|c",
					"Bottom-up dynamic programming in parallel|C|c",
					"Speculative execution and branch-and-bound|K|e",
					"Bulk-synchronous and asynchronous iteration|K|e",
				},
			},
			{
				name: "Algorithmic Problems",
				topics: []string{
					"Parallel summation and collective communication|A|c",
					"Parallel sorting: merge-based and sample sort|C|c",
					"Parallel matrix operations|C|c",
					"Parallel graph analytics: BFS, PageRank|C|e",
					"Parallel search of unstructured spaces|C|c",
					"List scheduling and makespan minimization|C|c",
					"Topological sort for dependency resolution|C|c",
					"Distributed machine learning computations|K|e",
				},
			},
		},
	},
	{
		abbrev: "XCUT", name: "Cross-Cutting and Advanced Topics",
		units: []pdcUnit{
			{
				name: "High-Level Themes",
				topics: []string{
					"Why and what is parallel and distributed computing|K|c",
					"Parallelism as the norm, not the exception|C|c",
					"Power and energy as first-class constraints|K|c",
				},
			},
			{
				name: "Concurrency Concepts",
				topics: []string{
					"Nondeterminism as inherent to concurrency|C|c",
					"Concurrency beyond parallelism: overlapping I/O|C|c",
					"Ordering of operations on shared objects|C|c",
					"Linearizability at a high level|K|e",
				},
			},
			{
				name: "Fault Tolerance and Distribution",
				topics: []string{
					"Partial failure in distributed systems|C|c",
					"Replication and redundancy|K|c",
					"Consensus at a high level|K|e",
					"Checkpointing and recovery|K|e",
				},
			},
			{
				name: "Current and Advanced Topics",
				topics: []string{
					"Cluster and cloud computing|C|c",
					"Big data processing at scale|K|c",
					"Edge and fog computing|K|e",
					"Quantum computing overview|K|e",
					"Security in distributed systems|K|e",
				},
			},
		},
	},
}

// CrosswalkPDC12To20 maps PDC12 topic IDs to their PDC 2.0-beta
// counterparts for the entries this repository's anchor rules teach.
// Topics absent from the map either kept the same ID (common, since both
// versions share the skeleton) or have no direct successor.
func CrosswalkPDC12To20() map[string]string {
	return map[string]string{
		// Renamed or restructured entries.
		"PROG/parallel-programming-notations/futures-and-promises":                           "PROG/parallel-programming-notations/futures-promises-and-async-await",
		"ARCH/floating-point-representation/non-associativity-of-floating-point-addition":    "ALGO/parallel-and-distributed-models-and-complexity/costs-of-computation-time-space-power-energy",
		"ARCH/floating-point-representation/error-propagation-in-parallel-reductions":        "ALGO/algorithmic-paradigms/reduction-as-a-parallel-pattern",
		"XCUT/high-level-themes/history-of-parallel-computing-and-moore-s-law":               "XCUT/high-level-themes/parallelism-as-the-norm-not-the-exception",
		"PROG/parallel-programming-paradigms/client-server-and-distributed-object-paradigms": "PROG/parallel-programming-paradigms/asynchronous-and-event-driven-concurrency",
	}
}

// ResolveAcrossVersions looks a tag up in PDC12 first, then via the
// crosswalk in PDC 2.0-beta, then directly in 2.0-beta. It returns the
// node and the guideline that owns it, or (nil, nil).
func ResolveAcrossVersions(tag string) (*Node, *Guideline) {
	if n := PDC12().Lookup(tag); n != nil {
		return n, PDC12()
	}
	if mapped, ok := CrosswalkPDC12To20()[tag]; ok {
		if n := PDC20Beta().Lookup(mapped); n != nil {
			return n, PDC20Beta()
		}
	}
	if n := PDC20Beta().Lookup(tag); n != nil {
		return n, PDC20Beta()
	}
	return nil, nil
}
