// Package ontology models curriculum guidelines as trees, mirroring the
// structure that the CS Materials system classifies learning materials
// against: a guideline contains knowledge areas, which contain knowledge
// units, which contain topics and learning outcomes.
//
// Two guideline instances are provided: the ACM/IEEE CS2013 Computer
// Science curriculum (see cs2013.go) and the NSF/IEEE-TCPP 2012 Parallel
// and Distributed Computing curriculum (see pdc12.go). Both are
// reconstructions built from the published documents: the knowledge-area
// and knowledge-unit skeletons carry the real names; topic populations are
// complete for the areas the paper's analyses touch and representative
// elsewhere (documented in DESIGN.md).
package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates the level of a node within a guideline tree.
type Kind int

const (
	// KindRoot is the single root of a guideline.
	KindRoot Kind = iota
	// KindArea is a knowledge area (e.g. Software Development Fundamentals).
	KindArea
	// KindUnit is a knowledge unit within an area.
	KindUnit
	// KindTopic is a topic within a knowledge unit.
	KindTopic
	// KindOutcome is a learning outcome within a knowledge unit.
	KindOutcome
)

func (k Kind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindArea:
		return "area"
	case KindUnit:
		return "unit"
	case KindTopic:
		return "topic"
	case KindOutcome:
		return "outcome"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Tier is the CS2013 coverage requirement attached to knowledge units.
type Tier int

const (
	// TierNone marks nodes that carry no tier (root, areas, PDC12 nodes).
	TierNone Tier = iota
	// TierCore1 units must be covered entirely by a curriculum.
	TierCore1
	// TierCore2 units should be covered at 80% or more.
	TierCore2
	// TierElective units are optional.
	TierElective
)

func (t Tier) String() string {
	switch t {
	case TierNone:
		return "none"
	case TierCore1:
		return "core-1"
	case TierCore2:
		return "core-2"
	case TierElective:
		return "elective"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Mastery is the CS2013 learning-outcome mastery level.
type Mastery int

const (
	// MasteryNone marks nodes that are not learning outcomes.
	MasteryNone Mastery = iota
	// MasteryFamiliarity: the student can answer "what do you know about this?".
	MasteryFamiliarity
	// MasteryUsage: the student can apply the concept concretely.
	MasteryUsage
	// MasteryAssessment: the student can weigh alternatives.
	MasteryAssessment
)

func (m Mastery) String() string {
	switch m {
	case MasteryNone:
		return "none"
	case MasteryFamiliarity:
		return "familiarity"
	case MasteryUsage:
		return "usage"
	case MasteryAssessment:
		return "assessment"
	default:
		return fmt.Sprintf("Mastery(%d)", int(m))
	}
}

// Bloom is the PDC12 Bloom-taxonomy level attached to PDC topics.
type Bloom int

const (
	// BloomNone marks nodes without a Bloom annotation (CS2013 nodes).
	BloomNone Bloom = iota
	// BloomKnow: recall the concept.
	BloomKnow
	// BloomComprehend: explain the concept.
	BloomComprehend
	// BloomApply: use the concept in new situations.
	BloomApply
)

func (b Bloom) String() string {
	switch b {
	case BloomNone:
		return "none"
	case BloomKnow:
		return "know"
	case BloomComprehend:
		return "comprehend"
	case BloomApply:
		return "apply"
	default:
		return fmt.Sprintf("Bloom(%d)", int(b))
	}
}

// Node is one entry in a guideline tree. Nodes are identified by a
// path-like ID ("SDF/fundamental-programming-concepts/conditionals") that
// is stable across rebuilds and is what materials are classified against.
type Node struct {
	ID       string
	Kind     Kind
	Name     string
	Tier     Tier    // knowledge units only (CS2013)
	Mastery  Mastery // learning outcomes only (CS2013)
	Bloom    Bloom   // topics only (PDC12)
	Core     bool    // PDC12 core vs elective
	Parent   *Node
	Children []*Node
}

// Guideline is a curriculum guideline tree with an ID index.
type Guideline struct {
	Name  string
	Root  *Node
	index map[string]*Node
}

// NewGuideline creates an empty guideline with a root node.
func NewGuideline(name string) *Guideline {
	root := &Node{ID: "", Kind: KindRoot, Name: name}
	g := &Guideline{Name: name, Root: root, index: map[string]*Node{"": root}}
	return g
}

// Slug converts a human-readable name into the ID segment form:
// lower case, spaces and punctuation collapsed to single dashes.
func Slug(name string) string {
	var b strings.Builder
	lastDash := true // suppress leading dash
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}

// AddChild creates a node under parent and registers it in the index. The
// child's ID is parent.ID + "/" + Slug(name) (or just the slug at the top
// level). It panics if the resulting ID already exists: guideline data
// must not contain duplicates.
func (g *Guideline) AddChild(parent *Node, kind Kind, name string) *Node {
	return g.AddChildID(parent, kind, Slug(name), name)
}

// AddChildID is AddChild with an explicit ID segment, used where the
// conventional segment differs from the slugged name (e.g. knowledge-area
// abbreviations such as "SDF").
func (g *Guideline) AddChildID(parent *Node, kind Kind, segment, name string) *Node {
	if parent == nil {
		panic("ontology: AddChild with nil parent")
	}
	if segment == "" {
		panic(fmt.Sprintf("ontology: empty ID segment for node %q", name))
	}
	id := segment
	if parent.ID != "" {
		id = parent.ID + "/" + segment
	}
	if _, dup := g.index[id]; dup {
		panic(fmt.Sprintf("ontology: duplicate node ID %q", id))
	}
	n := &Node{ID: id, Kind: kind, Name: name, Parent: parent}
	parent.Children = append(parent.Children, n)
	g.index[id] = n
	return n
}

// Lookup returns the node with the given ID, or nil.
func (g *Guideline) Lookup(id string) *Node { return g.index[id] }

// MustLookup returns the node with the given ID and panics if absent.
// Use it for IDs that are hard-coded into analyses.
func (g *Guideline) MustLookup(id string) *Node {
	n := g.index[id]
	if n == nil {
		panic(fmt.Sprintf("ontology: unknown node ID %q in guideline %q", id, g.Name))
	}
	return n
}

// Len returns the number of nodes, excluding the root.
func (g *Guideline) Len() int { return len(g.index) - 1 }

// Walk visits every node in depth-first pre-order, root first. Returning
// false from visit stops the descent into that node's children (the walk
// continues with siblings).
func (g *Guideline) Walk(visit func(*Node) bool) { walk(g.Root, visit) }

func walk(n *Node, visit func(*Node) bool) {
	if !visit(n) {
		return
	}
	for _, c := range n.Children {
		walk(c, visit)
	}
}

// Nodes returns all non-root nodes sorted by ID for deterministic
// iteration (map order is randomized in Go).
func (g *Guideline) Nodes() []*Node {
	out := make([]*Node, 0, len(g.index)-1)
	for id, n := range g.index {
		if id == "" {
			continue
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NodesOfKind returns all nodes of the given kind, sorted by ID.
func (g *Guideline) NodesOfKind(k Kind) []*Node {
	var out []*Node
	for _, n := range g.Nodes() {
		if n.Kind == k {
			out = append(out, n)
		}
	}
	return out
}

// Leaves returns all leaf nodes (topics and outcomes), sorted by ID.
// These are the "curriculum tags" that materials are classified against.
func (g *Guideline) Leaves() []*Node {
	var out []*Node
	for _, n := range g.Nodes() {
		if len(n.Children) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Areas returns the knowledge areas in insertion order.
func (g *Guideline) Areas() []*Node {
	var out []*Node
	for _, c := range g.Root.Children {
		if c.Kind == KindArea {
			out = append(out, c)
		}
	}
	return out
}

// AreaOf returns the knowledge area ancestor of n (or n itself if n is an
// area). It returns nil for the root.
func AreaOf(n *Node) *Node {
	for cur := n; cur != nil; cur = cur.Parent {
		if cur.Kind == KindArea {
			return cur
		}
	}
	return nil
}

// UnitOf returns the knowledge unit ancestor of n (or n itself if n is a
// unit), or nil if there is none.
func UnitOf(n *Node) *Node {
	for cur := n; cur != nil; cur = cur.Parent {
		if cur.Kind == KindUnit {
			return cur
		}
	}
	return nil
}

// Depth returns the number of edges from the root to n.
func Depth(n *Node) int {
	d := 0
	for cur := n; cur.Parent != nil; cur = cur.Parent {
		d++
	}
	return d
}

// Path returns the nodes from the root (exclusive) down to n (inclusive).
func Path(n *Node) []*Node {
	var rev []*Node
	for cur := n; cur != nil && cur.Kind != KindRoot; cur = cur.Parent {
		rev = append(rev, cur)
	}
	out := make([]*Node, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// LCA returns the lowest common ancestor of a and b within the same
// guideline tree (possibly the root).
func LCA(a, b *Node) *Node {
	seen := map[*Node]bool{}
	for cur := a; cur != nil; cur = cur.Parent {
		seen[cur] = true
	}
	for cur := b; cur != nil; cur = cur.Parent {
		if seen[cur] {
			return cur
		}
	}
	return nil
}

// SubtreeIDs returns the IDs of every node in n's subtree, n included.
func SubtreeIDs(n *Node) []string {
	var out []string
	walk(n, func(m *Node) bool {
		if m.Kind != KindRoot {
			out = append(out, m.ID)
		}
		return true
	})
	sort.Strings(out)
	return out
}

// Prune returns a deep copy of the guideline tree containing only nodes
// for which keep returns true, plus every ancestor of a kept node. This
// implements the "hit-tree" of the CS Materials system: the subset of the
// classification tree touched by a set of materials.
func (g *Guideline) Prune(keep func(*Node) bool) *Guideline {
	// Pass 1: mark every node that is kept or has a kept descendant.
	keepSet := map[*Node]bool{}
	var mark func(n *Node) bool
	mark = func(n *Node) bool {
		any := n.Kind != KindRoot && keep(n)
		for _, c := range n.Children {
			if mark(c) {
				any = true
			}
		}
		if any {
			keepSet[n] = true
		}
		return any
	}
	mark(g.Root)

	// Pass 2: copy the marked skeleton.
	out := NewGuideline(g.Name)
	var cp func(src, dstParent *Node)
	cp = func(src, dstParent *Node) {
		for _, c := range src.Children {
			if !keepSet[c] {
				continue
			}
			dst := &Node{ID: c.ID, Kind: c.Kind, Name: c.Name,
				Tier: c.Tier, Mastery: c.Mastery, Bloom: c.Bloom, Core: c.Core,
				Parent: dstParent}
			dstParent.Children = append(dstParent.Children, dst)
			out.index[dst.ID] = dst
			cp(c, dst)
		}
	}
	cp(g.Root, out.Root)
	return out
}
