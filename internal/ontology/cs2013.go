package ontology

import (
	"fmt"
	"strings"
	"sync"
)

// kuSpec describes one knowledge unit of the data table: its name, tier,
// topic names, and learning outcomes. Outcomes are encoded as
// "text|M" where M ∈ {F, U, A} for familiarity, usage, assessment.
type kuSpec struct {
	name     string
	tier     Tier
	topics   []string
	outcomes []string
}

// kaSpec describes one knowledge area: its conventional abbreviation
// (used as the ID segment, e.g. "SDF"), full name, and units.
type kaSpec struct {
	abbrev string
	name   string
	units  []kuSpec
}

var (
	cs2013Once sync.Once
	cs2013Tree *Guideline
)

// CS2013 returns the ACM/IEEE Computer Science Curricula 2013 guideline
// tree. The tree is built once and shared; callers must treat it as
// read-only (use Prune for filtered copies).
func CS2013() *Guideline {
	cs2013Once.Do(func() { cs2013Tree = buildCS2013() })
	return cs2013Tree
}

func buildCS2013() *Guideline {
	g := NewGuideline("ACM/IEEE CS2013")
	for _, ka := range cs2013Data {
		area := g.AddChildID(g.Root, KindArea, ka.abbrev, ka.name)
		for _, ku := range ka.units {
			unit := g.AddChild(area, KindUnit, ku.name)
			unit.Tier = ku.tier
			for _, tp := range ku.topics {
				g.AddChild(unit, KindTopic, tp)
			}
			for _, oc := range ku.outcomes {
				text, mastery := parseOutcome(oc)
				n := g.AddChild(unit, KindOutcome, text)
				n.Mastery = mastery
			}
		}
	}
	return g
}

func parseOutcome(enc string) (string, Mastery) {
	i := strings.LastIndexByte(enc, '|')
	if i < 0 {
		panic(fmt.Sprintf("ontology: outcome %q missing mastery suffix", enc))
	}
	text := enc[:i]
	switch enc[i+1:] {
	case "F":
		return text, MasteryFamiliarity
	case "U":
		return text, MasteryUsage
	case "A":
		return text, MasteryAssessment
	default:
		panic(fmt.Sprintf("ontology: outcome %q has unknown mastery %q", enc, enc[i+1:]))
	}
}

// cs2013Data reconstructs the CS2013 body of knowledge. Knowledge-area
// and knowledge-unit names (and tiers) follow the published guideline;
// topic and outcome populations are complete for the areas exercised by
// the paper's analyses and representative elsewhere (see DESIGN.md §2).
var cs2013Data = []kaSpec{
	{
		abbrev: "SDF", name: "Software Development Fundamentals",
		units: []kuSpec{
			{
				name: "Algorithms and Design", tier: TierCore1,
				topics: []string{
					"The concept and properties of algorithms",
					"The role of algorithms in the problem-solving process",
					"Problem-solving strategies",
					"Iterative and recursive mathematical functions",
					"Iterative and recursive traversal of data structures",
					"Divide-and-conquer strategies",
					"Implementation of algorithms",
					"Abstraction and encapsulation in program design",
					"Separation of behavior and implementation",
				},
				outcomes: []string{
					"Discuss the importance of algorithms in the problem-solving process|F",
					"Create algorithms for solving simple problems|U",
					"Implement a divide-and-conquer algorithm for a problem|U",
					"Apply the techniques of decomposition to break a program into smaller pieces|U",
					"Identify the data components and behaviors of multiple abstract data types|U",
				},
			},
			{
				name: "Fundamental Programming Concepts", tier: TierCore1,
				topics: []string{
					"Basic syntax and semantics of a higher-level language",
					"Variables and primitive data types",
					"Expressions and assignments",
					"Simple input and output",
					"Conditional control structures",
					"Iterative control structures",
					"Functions and parameter passing",
					"The concept of recursion",
				},
				outcomes: []string{
					"Analyze and explain the behavior of simple programs|U",
					"Identify and describe uses of primitive data types|F",
					"Write programs that use primitive data types|U",
					"Modify and expand short programs that use standard control structures|U",
					"Design and implement a program that uses functions with parameters|U",
					"Choose appropriate conditional and iteration constructs for a given task|A",
					"Describe the concept of recursion and give examples of its use|F",
					"Identify base and recursive cases of a recursive function|A",
				},
			},
			{
				name: "Fundamental Data Structures", tier: TierCore1,
				topics: []string{
					"Arrays",
					"Records and structs",
					"Strings and string processing",
					"Stacks and queues",
					"Linked lists",
					"Sets and maps as abstract data types",
					"References and aliasing",
					"Choosing an appropriate data structure",
				},
				outcomes: []string{
					"Write programs that use arrays and records|U",
					"Write programs that use linked lists, stacks and queues|U",
					"Compare alternative implementations of data structures|A",
					"Choose the appropriate data structure to model a given problem|A",
					"Describe how references allow structure sharing and its hazards|F",
				},
			},
			{
				name: "Development Methods", tier: TierCore1,
				topics: []string{
					"Program comprehension",
					"Program correctness and defensive programming",
					"The concept of a specification and pre/post-conditions",
					"Unit testing and test-case design",
					"Debugging strategies",
					"Documentation and program style",
					"Modern programming environments and libraries",
				},
				outcomes: []string{
					"Trace the execution of a variety of code segments|U",
					"Construct and debug programs using standard libraries|U",
					"Apply a variety of strategies to the testing of simple programs|U",
					"Create test cases that cover boundary conditions|U",
					"Apply consistent documentation and program style standards|U",
				},
			},
		},
	},
	{
		abbrev: "AL", name: "Algorithms and Complexity",
		units: []kuSpec{
			{
				name: "Basic Analysis", tier: TierCore1,
				topics: []string{
					"Differences among best, expected, and worst case behaviors",
					"Asymptotic analysis of upper and expected complexity bounds",
					"Big O notation: formal definition",
					"Big O notation: use",
					"Complexity classes such as constant, logarithmic, linear and quadratic",
					"Empirical measurement of performance",
					"Time and space trade-offs in algorithms",
					"Recurrence relations and the analysis of recursive algorithms",
				},
				outcomes: []string{
					"Explain what is meant by best, expected, and worst case behavior|F",
					"Determine informally the time and space complexity of simple algorithms|U",
					"Use big O notation to give asymptotic upper bounds|U",
					"Perform empirical studies to validate hypotheses about runtime|A",
					"Solve elementary recurrence relations|U",
				},
			},
			{
				name: "Algorithmic Strategies", tier: TierCore1,
				topics: []string{
					"Brute-force algorithms",
					"Greedy algorithms",
					"Divide-and-conquer",
					"Recursive backtracking",
					"Dynamic programming",
					"Reduction: transform-and-conquer",
					"Heuristics",
				},
				outcomes: []string{
					"Use a greedy approach to solve an appropriate problem|U",
					"Use a divide-and-conquer algorithm to solve an appropriate problem|U",
					"Use recursive backtracking to solve a problem such as a maze|U",
					"Use dynamic programming to solve an appropriate problem|U",
					"Determine an appropriate algorithmic approach to a problem|A",
				},
			},
			{
				name: "Fundamental Data Structures and Algorithms", tier: TierCore1,
				topics: []string{
					"Sequential and binary search algorithms",
					"Quadratic sorting algorithms: selection and insertion sort",
					"O(n log n) sorting algorithms: quicksort, heapsort, mergesort",
					"Hash tables including collision avoidance strategies",
					"Binary search trees: common operations",
					"Balanced binary search trees",
					"Heaps and priority queues",
					"Graphs and graph algorithms: representations",
					"Graph traversals: depth-first and breadth-first",
					"Shortest-path algorithms: Dijkstra and Floyd",
					"Minimum spanning trees: Prim and Kruskal",
					"Topological sort of a directed acyclic graph",
					"Pattern matching and string processing algorithms",
				},
				outcomes: []string{
					"Implement basic numerical and string searching algorithms|U",
					"Implement common quadratic and O(n log n) sorting algorithms|U",
					"Implement and use a hash table, handling collisions|U",
					"Implement binary search trees and their traversals|U",
					"Implement graph algorithms including traversals and shortest paths|U",
					"Discuss runtime and memory efficiency of principal algorithms|A",
					"Select an appropriate sorting or searching algorithm for an application|A",
				},
			},
			{
				name: "Basic Automata Computability and Complexity", tier: TierCore1,
				topics: []string{
					"Finite-state machines",
					"Regular expressions",
					"The halting problem",
					"Context-free grammars",
					"Introduction to the P and NP classes and the P vs NP problem",
					"NP-completeness and Cook's theorem",
				},
				outcomes: []string{
					"Design a finite state machine to accept a specified language|U",
					"Explain why the halting problem has no algorithmic solution|F",
					"Define the classes P and NP|F",
					"Explain the significance of NP-completeness|F",
				},
			},
			{
				name: "Advanced Computational Complexity", tier: TierElective,
				topics: []string{
					"Review of the classes P and NP and the P vs NP problem",
					"NP-completeness reductions",
					"The complexity classes NP-hard and NP-complete",
					"Approximation algorithms for NP-hard problems",
					"Amortized analysis",
				},
				outcomes: []string{
					"Prove that a problem is NP-complete via reduction|U",
					"Apply amortized analysis to a sequence of operations|U",
				},
			},
			{
				name: "Advanced Automata Theory and Computability", tier: TierElective,
				topics: []string{
					"Turing machines and the Church-Turing thesis",
					"Decidability and recognizability",
					"Rice's theorem and reductions among undecidable problems",
					"The Chomsky hierarchy",
				},
				outcomes: []string{
					"Determine the decidability of a language|U",
					"Classify languages within the Chomsky hierarchy|U",
				},
			},
			{
				name: "Advanced Data Structures Algorithms and Analysis", tier: TierElective,
				topics: []string{
					"Balanced trees: AVL, red-black, B-trees and splay trees",
					"Graphs: network flows and matching",
					"String matching: Knuth-Morris-Pratt and Boyer-Moore",
					"Geometric algorithms: convex hull and line-segment intersection",
					"Randomized algorithms",
					"Union-find and path compression",
					"Linear programming and duality",
				},
				outcomes: []string{
					"Implement an advanced balanced tree and analyze its operations|U",
					"Solve a maximum-flow problem on a network|U",
					"Use a randomized algorithm to solve an appropriate problem|U",
				},
			},
		},
	},
	{
		abbrev: "DS", name: "Discrete Structures",
		units: []kuSpec{
			{
				name: "Sets Relations and Functions", tier: TierCore1,
				topics: []string{
					"Sets: Venn diagrams, union, intersection, complement",
					"Sets: Cartesian products and power sets",
					"Relations: reflexivity, symmetry, transitivity",
					"Equivalence relations and partial orders",
					"Functions: surjections, injections, bijections",
					"Functions: composition and inverse",
				},
				outcomes: []string{
					"Perform the operations of union, intersection, complement on sets|U",
					"Determine whether a relation is an equivalence relation or a partial order|U",
					"Determine whether a function is injective, surjective, or bijective|U",
				},
			},
			{
				name: "Basic Logic", tier: TierCore1,
				topics: []string{
					"Propositional logic and logical connectives",
					"Truth tables",
					"Normal forms: conjunctive and disjunctive",
					"Predicate logic and universal and existential quantification",
					"Validity of well-formed formulas",
					"Limitations of propositional and predicate logic",
				},
				outcomes: []string{
					"Convert logical statements from informal language to propositional expressions|U",
					"Use truth tables to establish logical equivalence|U",
					"Apply quantifiers to convert between English and predicate logic|U",
				},
			},
			{
				name: "Proof Techniques", tier: TierCore1,
				topics: []string{
					"Implication, converse, inverse, contrapositive",
					"Direct proof and proof by contradiction",
					"Weak and strong mathematical induction",
					"Structural induction",
					"Recursive mathematical definitions",
					"The well-ordering principle",
				},
				outcomes: []string{
					"Outline the basic structure of each proof technique|U",
					"Apply each of the proof techniques correctly in the construction of a sound argument|U",
					"Identify the induction hypothesis in an inductive proof|A",
				},
			},
			{
				name: "Basics of Counting", tier: TierCore1,
				topics: []string{
					"Counting arguments: sum and product rule",
					"The pigeonhole principle",
					"Permutations and combinations",
					"The binomial theorem and Pascal's identity",
					"Solving recurrence relations",
					"Inclusion-exclusion principle",
				},
				outcomes: []string{
					"Apply counting arguments including sum and product rules|U",
					"Apply the pigeonhole principle in the context of a formal proof|U",
					"Compute permutations and combinations of a set|U",
					"Solve a variety of basic recurrence relations|U",
				},
			},
			{
				name: "Graphs and Trees", tier: TierCore1,
				topics: []string{
					"Trees: properties and traversal strategies",
					"Undirected graphs",
					"Directed graphs",
					"Weighted graphs",
					"Spanning trees and spanning forests",
					"Graph isomorphism",
				},
				outcomes: []string{
					"Illustrate the basic terminology of graph theory and properties of trees|F",
					"Model problems using graphs and trees|U",
					"Demonstrate traversal methods for trees and graphs|U",
				},
			},
			{
				name: "Discrete Probability", tier: TierCore1,
				topics: []string{
					"Finite probability spaces and events",
					"Conditional probability, independence, Bayes' theorem",
					"Random variables and expectation",
					"Variance and standard deviation of discrete variables",
					"The law of large numbers",
				},
				outcomes: []string{
					"Calculate probabilities of events for elementary problems|U",
					"Apply Bayes' theorem to determine conditional probabilities|U",
					"Compute the expectation of a discrete random variable|U",
				},
			},
		},
	},
	{
		abbrev: "PL", name: "Programming Languages",
		units: []kuSpec{
			{
				name: "Object-Oriented Programming", tier: TierCore1,
				topics: []string{
					"Object-oriented design: classes and objects",
					"Encapsulation and information hiding",
					"Definition of classes: fields, methods, and constructors",
					"Inheritance and subtyping",
					"Subclasses and method overriding",
					"Dynamic dispatch: definition of method-call",
					"Polymorphism: subtype polymorphism versus parametric",
					"Class hierarchy design",
					"Object interfaces and abstract classes",
					"Generics and parameterized types",
					"Collection classes and iterators",
				},
				outcomes: []string{
					"Design and implement a class hierarchy|U",
					"Use subclassing to design simple class hierarchies that allow code to be reused|U",
					"Use object-oriented encapsulation mechanisms such as interfaces and private members|U",
					"Compare and contrast subtype and parametric polymorphism|A",
					"Use iterators and collection classes to process aggregates|U",
					"Explain how dynamic dispatch selects the method implementation at runtime|F",
				},
			},
			{
				name: "Functional Programming", tier: TierCore1,
				topics: []string{
					"Lambda expressions and anonymous functions",
					"Effect-free programming and immutability",
					"First-class functions and closures",
					"Higher-order functions: map, filter, reduce",
					"Recursion over recursive data types",
					"Function composition",
				},
				outcomes: []string{
					"Write basic algorithms that avoid assigning to mutable state|U",
					"Write useful functions that take and return other functions|U",
					"Use higher-order functions such as map and reduce over lists|U",
				},
			},
			{
				name: "Event-Driven and Reactive Programming", tier: TierCore2,
				topics: []string{
					"Events and event handlers",
					"Callbacks and observer patterns",
					"Asynchronous events and race conditions",
					"Graphical user interface event loops",
				},
				outcomes: []string{
					"Write event handlers for a simple graphical application|U",
					"Explain why an event-driven program may behave nondeterministically|F",
				},
			},
			{
				name: "Basic Type Systems", tier: TierCore2,
				topics: []string{
					"A type as a set of values with operations",
					"Primitive types versus compound types",
					"Static versus dynamic typing",
					"Type safety and errors caught by types",
					"Generic types and parametric polymorphism",
					"Type equivalence: structural versus name",
				},
				outcomes: []string{
					"Explain how typing rules define the set of legal operations for a type|F",
					"Define and use a generic type|U",
					"Contrast static and dynamic typing trade-offs|A",
				},
			},
			{
				name: "Program Representation", tier: TierCore2,
				topics: []string{
					"Programs that take programs as input",
					"Abstract syntax trees",
					"Data structures to represent code for execution or translation",
				},
				outcomes: []string{
					"Represent a simple expression language as a tree and evaluate it|U",
				},
			},
			{
				name: "Language Translation and Execution", tier: TierCore2,
				topics: []string{
					"Interpretation versus compilation",
					"Language translation pipeline: lexing, parsing, code generation",
					"Run-time representation of core language constructs",
					"Memory management: garbage collection versus manual",
				},
				outcomes: []string{
					"Distinguish a compiler from an interpreter|F",
					"Explain the phases of a language translation pipeline|F",
					"Discuss the benefits and limitations of garbage collection|A",
				},
			},
			{
				name: "Syntax Analysis", tier: TierElective,
				topics: []string{
					"Scanning: regular expressions and tokens",
					"Parsing: context-free grammars",
					"Recursive-descent and table-driven parsing",
				},
				outcomes: []string{
					"Build a recursive-descent parser for a small grammar|U",
				},
			},
			{
				name: "Compiler Semantic Analysis", tier: TierElective,
				topics: []string{
					"Symbol tables and scope",
					"Static semantic checking and type checking",
					"Attribute grammars",
				},
				outcomes: []string{
					"Implement a type checker for a small language|U",
				},
			},
			{
				name: "Code Generation", tier: TierElective,
				topics: []string{
					"Intermediate representations",
					"Instruction selection and register allocation",
					"Basic peephole optimization",
				},
				outcomes: []string{
					"Generate code for a simple stack machine|U",
				},
			},
			{
				name: "Runtime Systems", tier: TierElective,
				topics: []string{
					"Activation records and the call stack",
					"Heap layout and allocation",
					"Just-in-time compilation",
				},
				outcomes: []string{
					"Trace the stack and heap during execution of a small program|U",
				},
			},
			{
				name: "Static Analysis", tier: TierElective,
				topics: []string{
					"Data-flow analysis",
					"Abstract interpretation",
					"Practical bug-finding tools",
				},
				outcomes: []string{
					"Use a static analysis tool to find defects in a program|U",
				},
			},
			{
				name: "Concurrency and Parallelism in Programming Languages", tier: TierElective,
				topics: []string{
					"Threads and shared-state concurrency in languages",
					"Futures and promises",
					"Message-passing constructs: actors and channels",
					"Language memory models",
					"Data parallelism constructs: parallel maps and loops",
				},
				outcomes: []string{
					"Write a correct concurrent program using two different language constructs|U",
					"Explain why a data race may yield unpredictable results|F",
				},
			},
			{
				name: "Advanced Type Systems", tier: TierElective,
				topics: []string{
					"Parametricity and type inference",
					"Algebraic data types and pattern matching",
					"Dependent types overview",
				},
				outcomes: []string{
					"Use algebraic data types to model a small domain|U",
				},
			},
			{
				name: "Formal Semantics", tier: TierElective,
				topics: []string{
					"Operational semantics of expressions",
					"Denotational semantics overview",
					"Hoare logic and axiomatic semantics",
				},
				outcomes: []string{
					"Derive the value of an expression with an operational semantics|U",
				},
			},
			{
				name: "Language Pragmatics", tier: TierElective,
				topics: []string{
					"Evaluation order, precedence, and associativity",
					"Parameter-passing mechanisms",
					"Domain-specific languages",
				},
				outcomes: []string{
					"Compare call-by-value and call-by-reference parameter passing|A",
				},
			},
			{
				name: "Logic Programming", tier: TierElective,
				topics: []string{
					"Clauses, facts, rules, and queries",
					"Unification and backtracking search",
				},
				outcomes: []string{
					"Write a small logic program to solve a search problem|U",
				},
			},
		},
	},
	{
		abbrev: "AR", name: "Architecture and Organization",
		units: []kuSpec{
			{
				name: "Digital Logic and Digital Systems", tier: TierCore2,
				topics: []string{
					"Overview of computer hardware organization",
					"Combinational and sequential logic",
					"Logic gates and truth-table realization",
					"Registers and register transfer notation",
					"Physical constraints: fan-in, fan-out, energy, speed of light",
				},
				outcomes: []string{
					"Design a simple circuit using logic gates|U",
					"Explain the progression from transistors to gates to components|F",
				},
			},
			{
				name: "Machine Level Representation of Data", tier: TierCore2,
				topics: []string{
					"Bits, bytes, and words",
					"Numeric data representation: unsigned and twos-complement integers",
					"Fixed- and floating-point representation of real numbers",
					"Representation of character data",
					"Representation of records, structs, and arrays in memory",
					"Signed and unsigned arithmetic and overflow",
					"Endianness and byte ordering",
				},
				outcomes: []string{
					"Explain why everything is data in computers|F",
					"Convert numbers between decimal, binary, and hexadecimal|U",
					"Explain how fixed-length number representations lose information|F",
					"Describe how arrays and structs are laid out in memory|F",
					"Explain how floating-point rounding makes addition non-associative|F",
				},
			},
			{
				name: "Assembly Level Machine Organization", tier: TierCore2,
				topics: []string{
					"The von Neumann machine architecture",
					"Instruction set architecture and instruction formats",
					"The fetch-decode-execute cycle",
					"Subroutine call and return at the machine level",
					"Introduction to SIMD versus MIMD and the Flynn taxonomy",
				},
				outcomes: []string{
					"Explain the organization of a von Neumann machine|F",
					"Write a simple assembly fragment for a control construct|U",
					"Describe the Flynn classification of parallel machines|F",
				},
			},
			{
				name: "Memory System Organization and Architecture", tier: TierCore2,
				topics: []string{
					"Memory hierarchies: registers, caches, main memory",
					"Cache organization: lines, associativity, replacement",
					"Latency versus bandwidth",
					"Virtual memory overview",
				},
				outcomes: []string{
					"Identify the levels of the memory hierarchy and their trade-offs|F",
					"Explain how locality of reference makes caches effective|F",
				},
			},
			{
				name: "Interfacing and Communication", tier: TierCore2,
				topics: []string{
					"I/O fundamentals: polling and interrupts",
					"Direct memory access",
					"Buses and interconnects",
				},
				outcomes: []string{
					"Explain how interrupts transfer control to the operating system|F",
				},
			},
			{
				name: "Functional Organization", tier: TierElective,
				topics: []string{
					"Instruction pipelining and hazards",
					"Control unit implementation",
					"Instruction-level parallelism",
				},
				outcomes: []string{
					"Explain how pipelining improves instruction throughput|F",
				},
			},
			{
				name: "Multiprocessing and Alternative Architectures", tier: TierElective,
				topics: []string{
					"Shared-memory multiprocessors and cache coherence",
					"GPU and accelerator architectures",
					"Interconnection networks",
				},
				outcomes: []string{
					"Describe the organization of a shared-memory multiprocessor|F",
				},
			},
			{
				name: "Performance Enhancements", tier: TierElective,
				topics: []string{
					"Branch prediction and speculative execution",
					"Superscalar and out-of-order execution",
					"Prefetching",
				},
				outcomes: []string{
					"Explain the costs and benefits of speculative execution|F",
				},
			},
		},
	},
	{
		abbrev: "CN", name: "Computational Science",
		units: []kuSpec{
			{
				name: "Introduction to Modeling and Simulation", tier: TierCore1,
				topics: []string{
					"Models as abstractions of situations",
					"Simulations as dynamic modeling",
					"The simulation life cycle: model, simulate, assess",
					"Examples of applications in the physical and social sciences",
					"Working with large datasets",
					"Visualizing simulation results",
				},
				outcomes: []string{
					"Explain the concept of modeling and the use of abstraction|F",
					"Create a simple, formal mathematical model of a real-world situation|U",
					"Use a dataset to drive and validate a simple simulation|U",
					"Visualize the output of a simulation or dataset|U",
				},
			},
			{
				name: "Modeling and Simulation", tier: TierElective,
				topics: []string{
					"Discrete-event simulation",
					"Monte Carlo methods and random number generation",
					"Model validation and verification",
					"Numerical integration of differential equations",
				},
				outcomes: []string{
					"Build a discrete-event simulation of a queueing system|U",
					"Use Monte Carlo estimation and reason about its error|U",
				},
			},
			{
				name: "Processing", tier: TierElective,
				topics: []string{
					"Fundamentals of numerical computation and error",
					"Data-parallel processing of large datasets",
					"Workflow pipelines for scientific data",
				},
				outcomes: []string{
					"Quantify the numerical error of a floating-point computation|U",
				},
			},
			{
				name: "Interactive Visualization", tier: TierElective,
				topics: []string{
					"Principles of visual encoding of data",
					"Interactive charts, maps, and graph drawings",
					"Perceptual considerations: color scales, divergent maps",
				},
				outcomes: []string{
					"Build an interactive visualization of a dataset|U",
					"Choose an appropriate color scale for a data display|A",
				},
			},
			{
				name: "Data Information and Knowledge", tier: TierElective,
				topics: []string{
					"Acquisition, cleaning, and provenance of data",
					"Metadata and standards for data interchange",
					"From data to information to knowledge: aggregation and mining",
				},
				outcomes: []string{
					"Clean and document a raw dataset for analysis|U",
				},
			},
		},
	},
	{
		abbrev: "GV", name: "Graphics and Visualization",
		units: []kuSpec{
			{
				name: "Fundamental Concepts", tier: TierCore2,
				topics: []string{
					"Image representation: raster and vector",
					"Color models: RGB and HSV",
					"Coordinate systems and transformations",
					"Human visual perception basics",
				},
				outcomes: []string{
					"Describe how images are represented digitally|F",
					"Apply 2D transformations to simple shapes|U",
				},
			},
			{
				name: "Basic Rendering", tier: TierElective,
				topics: []string{
					"The graphics pipeline",
					"Rasterization of lines and polygons",
					"Texture mapping basics",
				},
				outcomes: []string{"Render a simple scene with a rasterization pipeline|U"},
			},
			{
				name: "Geometric Modeling", tier: TierElective,
				topics: []string{
					"Polygon meshes",
					"Parametric curves and surfaces",
				},
				outcomes: []string{"Build and manipulate a polygonal model|U"},
			},
			{
				name: "Computer Animation", tier: TierElective,
				topics: []string{
					"Keyframing and interpolation",
					"Physically based animation overview",
				},
				outcomes: []string{"Animate a simple object with keyframes|U"},
			},
			{
				name: "Visualization", tier: TierElective,
				topics: []string{
					"Visualization of scalar and vector fields",
					"Information visualization of trees, graphs, and tables",
					"Evaluation of visualization effectiveness",
				},
				outcomes: []string{"Design a visualization for a hierarchical dataset|U"},
			},
		},
	},
	{
		abbrev: "HCI", name: "Human-Computer Interaction",
		units: []kuSpec{
			{
				name: "Foundations", tier: TierCore1,
				topics: []string{
					"Contexts for HCI: desktop, web, mobile",
					"Usability heuristics and principles",
					"Human capabilities: perception, memory, attention",
					"Accessibility",
				},
				outcomes: []string{
					"Discuss why user-centered design matters|F",
					"Evaluate an interface against usability heuristics|U",
				},
			},
			{
				name: "Designing Interaction", tier: TierCore2,
				topics: []string{
					"Task analysis and user modeling",
					"Prototyping: low and high fidelity",
					"Interface design patterns",
				},
				outcomes: []string{"Create a low-fidelity prototype for a given task|U"},
			},
			{
				name: "Programming Interactive Systems", tier: TierElective,
				topics: []string{
					"GUI toolkits and widget hierarchies",
					"Model-view-controller architecture",
					"Handling input events",
				},
				outcomes: []string{"Implement a small GUI application with MVC|U"},
			},
			{
				name: "User-Centered Design and Testing", tier: TierElective,
				topics: []string{
					"Usability testing methods",
					"A/B testing and quantitative evaluation",
				},
				outcomes: []string{"Run a small usability study and report findings|U"},
			},
		},
	},
	{
		abbrev: "IAS", name: "Information Assurance and Security",
		units: []kuSpec{
			{
				name: "Foundational Concepts in Security", tier: TierCore1,
				topics: []string{
					"Confidentiality, integrity, availability",
					"Risk, threats, vulnerabilities, and attack vectors",
					"Authentication and authorization",
					"Concept of trust and trustworthiness",
				},
				outcomes: []string{
					"Analyze the trade-offs of balancing key security properties|A",
					"Describe common threats and attack vectors|F",
				},
			},
			{
				name: "Principles of Secure Design", tier: TierCore1,
				topics: []string{
					"Least privilege and fail-safe defaults",
					"Defense in depth",
					"Open design and economy of mechanism",
					"Security by design versus security through obscurity",
				},
				outcomes: []string{
					"Apply the principle of least privilege in a system design|U",
				},
			},
			{
				name: "Defensive Programming", tier: TierCore1,
				topics: []string{
					"Input validation and data sanitization",
					"Buffer overflows and memory-safe programming",
					"Race conditions and time-of-check to time-of-use",
					"Correct handling of exceptions and error cases",
					"Checking the correctness of programs: assertions and invariants",
				},
				outcomes: []string{
					"Write code that validates all untrusted input|U",
					"Explain how a buffer overflow can be exploited|F",
					"Use assertions to document and check invariants|U",
				},
			},
			{
				name: "Threats and Attacks", tier: TierCore2,
				topics: []string{
					"Malware taxonomy",
					"Denial of service",
					"Social engineering",
				},
				outcomes: []string{"Describe representative attack types|F"},
			},
			{
				name: "Network Security", tier: TierCore2,
				topics: []string{
					"Firewalls and intrusion detection",
					"Transport-layer security",
					"Wireless security basics",
				},
				outcomes: []string{"Describe how TLS protects a connection|F"},
			},
			{
				name: "Cryptography", tier: TierCore2,
				topics: []string{
					"Symmetric and asymmetric ciphers",
					"Cryptographic hash functions",
					"Digital signatures and certificates",
				},
				outcomes: []string{"Use a cryptographic library to encrypt and sign data|U"},
			},
			{
				name: "Web Security", tier: TierElective,
				topics: []string{
					"Cross-site scripting and injection attacks",
					"Session management weaknesses",
				},
				outcomes: []string{"Identify and fix an injection vulnerability|U"},
			},
		},
	},
	{
		abbrev: "IM", name: "Information Management",
		units: []kuSpec{
			{
				name: "Information Management Concepts", tier: TierCore1,
				topics: []string{
					"Information systems as sociotechnical systems",
					"Data capture, representation, and organization",
					"Indexing and searching stored information",
					"Quality issues: reliability, scalability, efficiency of access",
				},
				outcomes: []string{
					"Describe how humans gain access to information and data|F",
					"Design an index to support efficient search over a dataset|U",
				},
			},
			{
				name: "Database Systems", tier: TierCore2,
				topics: []string{
					"Components of database systems",
					"The relational model and relational algebra",
					"Declarative queries with SQL",
					"Database design: normalization basics",
				},
				outcomes: []string{
					"Write simple SQL queries over a relational schema|U",
					"Normalize a small schema to third normal form|U",
				},
			},
			{
				name: "Data Modeling", tier: TierCore2,
				topics: []string{
					"Entity-relationship modeling",
					"Relational data modeling",
					"Semi-structured data: trees and documents",
				},
				outcomes: []string{"Model a domain with an entity-relationship diagram|U"},
			},
			{
				name: "Indexing", tier: TierElective,
				topics: []string{
					"B-tree and hash indexes",
					"Inverted indexes for text",
				},
				outcomes: []string{"Choose an index for a given query workload|A"},
			},
			{
				name: "Transaction Processing", tier: TierElective,
				topics: []string{
					"ACID properties",
					"Concurrency control: locking and isolation levels",
					"Failure recovery and logging",
				},
				outcomes: []string{"Explain how two-phase locking ensures serializability|F"},
			},
			{
				name: "Distributed Databases", tier: TierElective,
				topics: []string{
					"Data partitioning and replication",
					"Consistency models and the CAP trade-off",
				},
				outcomes: []string{"Discuss trade-offs between consistency and availability|A"},
			},
			{
				name: "Data Mining", tier: TierElective,
				topics: []string{
					"Clustering and classification overview",
					"Association rules",
					"Dimensionality reduction and matrix factorization",
				},
				outcomes: []string{"Apply a clustering algorithm to a dataset and interpret the result|U"},
			},
			{
				name: "Information Storage and Retrieval", tier: TierElective,
				topics: []string{
					"Boolean and ranked retrieval",
					"Term weighting: TF-IDF",
					"Evaluation: precision and recall",
				},
				outcomes: []string{"Build a small search engine with ranked retrieval|U"},
			},
		},
	},
	{
		abbrev: "IS", name: "Intelligent Systems",
		units: []kuSpec{
			{
				name: "Fundamental Issues", tier: TierCore2,
				topics: []string{
					"Overview of AI problems and AI winters",
					"What is intelligent behavior: the Turing test",
					"Problem characteristics: observability, determinism",
				},
				outcomes: []string{"Discuss what it means for a system to be intelligent|F"},
			},
			{
				name: "Basic Search Strategies", tier: TierCore2,
				topics: []string{
					"Problem spaces, states, goals, and operators",
					"Uninformed search: BFS, DFS, iterative deepening",
					"Heuristic search: hill climbing and A*",
					"Constraint satisfaction basics",
				},
				outcomes: []string{
					"Formulate a problem as state-space search|U",
					"Implement A* with an admissible heuristic|U",
				},
			},
			{
				name: "Basic Knowledge Representation and Reasoning", tier: TierCore2,
				topics: []string{
					"Propositional and first-order logic for KR",
					"Forward and backward chaining",
				},
				outcomes: []string{"Encode simple domain knowledge in logic|U"},
			},
			{
				name: "Basic Machine Learning", tier: TierCore2,
				topics: []string{
					"Supervised versus unsupervised learning",
					"Decision trees and nearest neighbor",
					"Overfitting and cross-validation",
				},
				outcomes: []string{"Train and evaluate a simple classifier|U"},
			},
		},
	},
	{
		abbrev: "NC", name: "Networking and Communication",
		units: []kuSpec{
			{
				name: "Introduction", tier: TierCore1,
				topics: []string{
					"Organization of the Internet: ISPs, content providers",
					"Layering and its purposes",
					"Switching techniques: circuit and packet",
					"Physical pieces of a network: hosts, routers, links",
				},
				outcomes: []string{
					"Articulate the organization of the Internet|F",
					"Describe the layers of the network stack and their roles|F",
				},
			},
			{
				name: "Networked Applications", tier: TierCore1,
				topics: []string{
					"Naming and address schemes: DNS, IP, URIs",
					"Client-server and peer-to-peer paradigms",
					"HTTP as an application-layer protocol",
					"Sockets and socket programming",
				},
				outcomes: []string{
					"Implement a simple client-server socket application|U",
					"Explain the role of DNS in naming|F",
				},
			},
			{
				name: "Reliable Data Delivery", tier: TierCore2,
				topics: []string{
					"Error control: retransmission and acknowledgements",
					"Flow control and sliding windows",
					"TCP congestion control overview",
				},
				outcomes: []string{"Explain how sliding-window protocols achieve reliability|F"},
			},
			{
				name: "Routing and Forwarding", tier: TierCore2,
				topics: []string{
					"Routing versus forwarding",
					"Shortest-path routing",
					"IP addressing and subnetting",
				},
				outcomes: []string{"Compute forwarding tables from a topology|U"},
			},
			{
				name: "Local Area Networks", tier: TierCore2,
				topics: []string{
					"Multiple access control: CSMA/CD and CSMA/CA",
					"Ethernet and switching",
				},
				outcomes: []string{"Describe how collisions are handled in shared media|F"},
			},
			{
				name: "Resource Allocation", tier: TierCore2,
				topics: []string{
					"Congestion and fairness",
					"Quality of service basics",
				},
				outcomes: []string{"Discuss fairness in bandwidth allocation|F"},
			},
			{
				name: "Mobility", tier: TierCore2,
				topics: []string{
					"Principles of cellular and wireless networking",
					"Mobile IP overview",
				},
				outcomes: []string{"Describe handoff in a cellular network|F"},
			},
		},
	},
	{
		abbrev: "OS", name: "Operating Systems",
		units: []kuSpec{
			{
				name: "Overview of Operating Systems", tier: TierCore1,
				topics: []string{
					"Role and purpose of the operating system",
					"Functionality of a typical operating system",
					"Design issues: efficiency, robustness, portability",
				},
				outcomes: []string{
					"Explain the objectives and functions of modern operating systems|F",
				},
			},
			{
				name: "Operating System Principles", tier: TierCore1,
				topics: []string{
					"Structuring methods: monolithic, layered, microkernel",
					"Abstractions, processes, and resources",
					"The user/system state transition and protection",
				},
				outcomes: []string{"Describe how computing resources are used by application software and managed by system software|F"},
			},
			{
				name: "Concurrency", tier: TierCore2,
				topics: []string{
					"States and state diagrams of processes and threads",
					"Thread creation and management",
					"Race conditions and critical regions",
					"Synchronization primitives: locks, semaphores, monitors, condition variables",
					"Deadlock: causes, conditions, prevention",
					"Producer-consumer and readers-writers problems",
					"Atomicity and memory consistency",
				},
				outcomes: []string{
					"Write correct concurrent programs using synchronization primitives|U",
					"Identify a race condition in a code fragment|A",
					"Explain the four necessary conditions for deadlock|F",
				},
			},
			{
				name: "Scheduling and Dispatch", tier: TierCore2,
				topics: []string{
					"Preemptive and non-preemptive scheduling",
					"Scheduling policies: FCFS, SJF, priority, round robin",
					"Dispatching and context switching",
				},
				outcomes: []string{
					"Compare scheduling algorithms on turnaround and response time|U",
				},
			},
			{
				name: "Memory Management", tier: TierCore2,
				topics: []string{
					"Memory hierarchy review",
					"Paging and virtual memory",
					"Page replacement policies and thrashing",
				},
				outcomes: []string{"Explain how paging supports virtual memory|F"},
			},
			{
				name: "Security and Protection", tier: TierCore2,
				topics: []string{
					"Protection domains and access control lists",
					"Memory protection mechanisms",
				},
				outcomes: []string{"Describe how an OS isolates processes from one another|F"},
			},
			{
				name: "File Systems", tier: TierElective,
				topics: []string{
					"Files, directories, and metadata",
					"Allocation strategies and free-space management",
					"Journaling and crash consistency",
				},
				outcomes: []string{"Describe how a file is located from a path name|F"},
			},
			{
				name: "Virtual Machines", tier: TierElective,
				topics: []string{
					"Types of virtualization",
					"Hypervisors and containers",
				},
				outcomes: []string{"Contrast containers with full virtual machines|A"},
			},
		},
	},
	{
		abbrev: "PBD", name: "Platform-Based Development",
		units: []kuSpec{
			{
				name: "Introduction to Platform-Based Development", tier: TierElective,
				topics: []string{
					"Programming via platform-specific APIs",
					"Overview of platform languages and ecosystems",
					"Constraints imposed by platforms",
				},
				outcomes: []string{"Describe how platform constraints shape program design|F"},
			},
			{
				name: "Web Platforms", tier: TierElective,
				topics: []string{
					"Web programming languages and frameworks",
					"Client-side versus server-side computation",
					"Web services and REST APIs",
				},
				outcomes: []string{"Build a small web application with a REST backend|U"},
			},
			{
				name: "Mobile Platforms", tier: TierElective,
				topics: []string{
					"Mobile programming environments",
					"Sensors and location-aware applications",
					"Power and network constraints",
				},
				outcomes: []string{"Implement a simple sensor-driven mobile app|U"},
			},
			{
				name: "Game Platforms", tier: TierElective,
				topics: []string{
					"Game engines and real-time loops",
					"2D sprite-based game development",
				},
				outcomes: []string{"Build a simple 2D game with a game loop|U"},
			},
		},
	},
	{
		abbrev: "PD", name: "Parallel and Distributed Computing",
		units: []kuSpec{
			{
				name: "Parallelism Fundamentals", tier: TierCore1,
				topics: []string{
					"Multiple simultaneous computations",
					"Goals of parallelism: throughput versus concurrency for responsiveness",
					"Parallelism, communication, and coordination",
					"Programming errors not found in sequential programming: data races",
				},
				outcomes: []string{
					"Distinguish using computational resources for speedup versus managing concurrent access|F",
					"Distinguish multiple sufficient programming constructs to coordinate parallelism|U",
				},
			},
			{
				name: "Parallel Decomposition", tier: TierCore1,
				topics: []string{
					"Need for communication and coordination",
					"Independence and partitioning",
					"Task-based decomposition",
					"Data-parallel decomposition",
					"Basic knowledge of parallel decomposition concepts",
				},
				outcomes: []string{
					"Decompose a problem into independent tasks|U",
					"Write a correct and scalable parallel algorithm using data-parallel decomposition|U",
				},
			},
			{
				name: "Communication and Coordination", tier: TierCore1,
				topics: []string{
					"Shared memory and consistency",
					"Message passing between processes",
					"Synchronization: locks, barriers, atomics",
					"Deadlock and livelock in coordination",
					"Futures and promises as coordination abstractions",
				},
				outcomes: []string{
					"Use mutual exclusion to avoid a given race condition|U",
					"Write a program that correctly terminates when all of its set of concurrent tasks complete|U",
				},
			},
			{
				name: "Parallel Algorithms Analysis and Programming", tier: TierCore2,
				topics: []string{
					"Critical path, work, and span of a parallel computation",
					"Speedup, efficiency, and Amdahl's law",
					"Parallel reduction and scan",
					"Parallel loops and independence",
					"Task graphs and dependency-driven scheduling",
					"Load balancing strategies",
				},
				outcomes: []string{
					"Define critical path, work, and span|F",
					"Use Amdahl's law to bound achievable speedup|U",
					"Implement a parallel divide-and-conquer or data-parallel algorithm|U",
					"Analyze a parallel algorithm's work and span|A",
				},
			},
			{
				name: "Parallel Architecture", tier: TierCore2,
				topics: []string{
					"Multicore processors",
					"Shared versus distributed memory organization",
					"Symmetric multiprocessing and NUMA",
					"SIMD and vector processing",
					"GPU accelerators",
				},
				outcomes: []string{
					"Explain the differences between shared and distributed memory|F",
					"Describe the SIMD execution model|F",
				},
			},
			{
				name: "Parallel Performance", tier: TierElective,
				topics: []string{
					"Load balancing and scheduling overheads",
					"Data locality and communication cost",
					"Scalability: strong and weak scaling",
					"Performance measurement of parallel programs",
				},
				outcomes: []string{
					"Measure and report strong and weak scaling of a parallel program|U",
					"Identify a load imbalance and propose a remedy|A",
				},
			},
			{
				name: "Distributed Systems", tier: TierElective,
				topics: []string{
					"Faults and partial failure",
					"Distributed message delivery: ordering and reliability",
					"Consensus and leader election overview",
					"Remote procedure calls and distributed objects",
					"Clusters and data-parallel frameworks",
				},
				outcomes: []string{
					"Explain why consensus is hard under partial failure|F",
					"Implement a simple distributed computation over message passing|U",
				},
			},
			{
				name: "Cloud Computing", tier: TierElective,
				topics: []string{
					"Infrastructure, platform, and software as a service",
					"Elasticity and resource virtualization",
					"Data storage in the cloud",
				},
				outcomes: []string{"Deploy an application onto a cloud platform|U"},
			},
			{
				name: "Formal Models and Semantics", tier: TierElective,
				topics: []string{
					"Formal models of concurrency: interleaving semantics",
					"Linearizability and sequential consistency",
					"Process calculi overview",
				},
				outcomes: []string{"Determine whether a history is linearizable|U"},
			},
		},
	},
	{
		abbrev: "SE", name: "Software Engineering",
		units: []kuSpec{
			{
				name: "Software Processes", tier: TierCore1,
				topics: []string{
					"Software life-cycle models: waterfall, iterative, agile",
					"Phases of software development",
					"Process maturity and improvement",
				},
				outcomes: []string{
					"Describe how software can be developed via a process|F",
					"Compare plan-driven and agile approaches for a given project|A",
				},
			},
			{
				name: "Software Project Management", tier: TierCore2,
				topics: []string{
					"Team organization and roles",
					"Effort estimation and scheduling",
					"Risk management",
					"Version control and configuration management",
				},
				outcomes: []string{
					"Plan the iterations of a small team project|U",
					"Use a version control system collaboratively|U",
				},
			},
			{
				name: "Tools and Environments", tier: TierCore2,
				topics: []string{
					"Integrated development environments",
					"Build systems and continuous integration",
					"Testing tools and coverage measurement",
					"Issue tracking",
				},
				outcomes: []string{
					"Set up continuous integration for a small project|U",
				},
			},
			{
				name: "Requirements Engineering", tier: TierCore1,
				topics: []string{
					"Functional and non-functional requirements",
					"Elicitation techniques: interviews, user stories",
					"Requirements specification and validation",
				},
				outcomes: []string{
					"Write user stories with acceptance criteria|U",
					"Distinguish functional from non-functional requirements|F",
				},
			},
			{
				name: "Software Design", tier: TierCore1,
				topics: []string{
					"Principles of design: coupling, cohesion, information hiding",
					"Architectural styles and patterns",
					"Design patterns: creational, structural, behavioral",
					"Modeling with UML class and sequence diagrams",
					"Designing for reuse and maintainability",
				},
				outcomes: []string{
					"Apply design principles to decompose a system into modules|U",
					"Use appropriate design patterns in a small system|U",
					"Model a design with UML diagrams|U",
				},
			},
			{
				name: "Software Construction", tier: TierCore1,
				topics: []string{
					"Coding standards and code review",
					"Defensive coding practices",
					"API design and documentation",
					"Refactoring",
				},
				outcomes: []string{
					"Perform a code review against a checklist|U",
					"Refactor code to improve its structure without changing behavior|U",
				},
			},
			{
				name: "Software Verification and Validation", tier: TierCore1,
				topics: []string{
					"Verification versus validation",
					"Testing levels: unit, integration, system, acceptance",
					"Test-driven development",
					"Black-box and white-box test design",
					"Regression testing",
					"Defect tracking and triage",
				},
				outcomes: []string{
					"Create a test plan for a medium-size code segment|U",
					"Apply test-driven development in a small project|U",
					"Distinguish black-box from white-box testing|F",
				},
			},
			{
				name: "Software Evolution", tier: TierCore2,
				topics: []string{
					"Software maintenance categories",
					"Working with legacy code",
					"Re-engineering and migration",
				},
				outcomes: []string{"Identify refactoring opportunities in legacy code|U"},
			},
			{
				name: "Formal Methods", tier: TierElective,
				topics: []string{
					"Pre- and post-conditions and invariants",
					"Model checking overview",
				},
				outcomes: []string{"Specify a module using pre- and post-conditions|U"},
			},
			{
				name: "Software Reliability", tier: TierElective,
				topics: []string{
					"Fault, error, failure terminology",
					"Reliability engineering and fault tolerance",
				},
				outcomes: []string{"Discuss techniques that improve software reliability|F"},
			},
		},
	},
	{
		abbrev: "SF", name: "Systems Fundamentals",
		units: []kuSpec{
			{
				name: "Computational Paradigms", tier: TierCore1,
				topics: []string{
					"Basic building blocks: gates, flip-flops, components",
					"Hardware as a computational paradigm",
					"Multiple representations and layers of interpretation",
				},
				outcomes: []string{
					"Describe computing systems as layered abstractions|F",
				},
			},
			{
				name: "Cross-Layer Communications", tier: TierCore1,
				topics: []string{
					"Programming abstractions and interfaces",
					"Requests and responses across layers",
				},
				outcomes: []string{"Trace a request through system layers|U"},
			},
			{
				name: "State and State Machines", tier: TierCore1,
				topics: []string{
					"Digital versus analog state",
					"State machines as system models",
					"Sequential behavior and state transition diagrams",
				},
				outcomes: []string{"Model a small system as a state machine|U"},
			},
			{
				name: "Parallelism", tier: TierCore1,
				topics: []string{
					"Sequential versus parallel processing",
					"System support for parallelism: multicore and networked",
					"Kinds of parallelism: data, task, pipeline",
					"Coordination costs and overheads",
				},
				outcomes: []string{
					"Distinguish data parallelism from task parallelism with examples|F",
					"Explain why coordination limits achievable speedup|F",
				},
			},
			{
				name: "Evaluation", tier: TierCore1,
				topics: []string{
					"Performance figures of merit: latency and throughput",
					"Benchmarking and workload selection",
					"Amdahl's law as an evaluation tool",
				},
				outcomes: []string{
					"Measure latency and throughput of a simple system|U",
					"Apply Amdahl's law to predict improvement limits|U",
				},
			},
			{
				name: "Resource Allocation and Scheduling", tier: TierCore2,
				topics: []string{
					"Kinds of resources and allocation schemes",
					"Scheduling trade-offs: fairness versus throughput",
				},
				outcomes: []string{"Compare two scheduling disciplines on a workload|U"},
			},
			{
				name: "Virtualization and Isolation", tier: TierCore2,
				topics: []string{
					"Rationale for protection and predictable performance",
					"Levels of indirection and virtualization mechanisms",
				},
				outcomes: []string{"Explain how virtualization provides isolation|F"},
			},
			{
				name: "Reliability through Redundancy", tier: TierCore2,
				topics: []string{
					"Distinction between bugs and faults",
					"Redundancy for fault tolerance",
				},
				outcomes: []string{"Describe how redundancy masks faults|F"},
			},
		},
	},
	{
		abbrev: "SP", name: "Social Issues and Professional Practice",
		units: []kuSpec{
			{
				name: "Social Context", tier: TierCore1,
				topics: []string{
					"Social implications of computing in a networked world",
					"Impact of social media and accessibility of technology",
					"The digital divide",
				},
				outcomes: []string{
					"Describe positive and negative ways computing alters society|F",
				},
			},
			{
				name: "Analytical Tools", tier: TierCore1,
				topics: []string{
					"Ethical argumentation",
					"Stakeholder analysis",
				},
				outcomes: []string{"Evaluate stakeholder positions for an ethical dilemma|U"},
			},
			{
				name: "Professional Ethics", tier: TierCore1,
				topics: []string{
					"Codes of ethics: ACM and IEEE",
					"Accountability and responsibility of professionals",
					"Ethical dissent and whistle-blowing",
				},
				outcomes: []string{"Apply a professional code of ethics to a scenario|U"},
			},
			{
				name: "Intellectual Property", tier: TierCore1,
				topics: []string{
					"Copyright, patents, and trade secrets",
					"Software licensing including open source",
					"Plagiarism",
				},
				outcomes: []string{"Contrast open-source licenses and their obligations|F"},
			},
			{
				name: "Privacy and Civil Liberties", tier: TierCore1,
				topics: []string{
					"Privacy implications of pervasive data collection",
					"Technology-based solutions for privacy",
				},
				outcomes: []string{"Discuss how data aggregation threatens privacy|F"},
			},
			{
				name: "Professional Communication", tier: TierCore1,
				topics: []string{
					"Writing technical documentation",
					"Oral presentations of technical material",
					"Communicating with stakeholders",
				},
				outcomes: []string{"Present a technical solution to a non-technical audience|U"},
			},
			{
				name: "Sustainability", tier: TierCore1,
				topics: []string{
					"Energy footprint of computing",
					"Sustainable software engineering practices",
				},
				outcomes: []string{"Estimate the energy impact of a computing choice|U"},
			},
		},
	},
}
