package ontology

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPropSlugIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Slug(s)
		return Slug(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSlugAlphabet(t *testing.T) {
	f := func(s string) bool {
		for _, r := range Slug(s) {
			ok := r == '-' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')
			if !ok {
				return false
			}
		}
		out := Slug(s)
		return !strings.HasPrefix(out, "-") && !strings.HasSuffix(out, "-") &&
			!strings.Contains(out, "--")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropPruneSubsetInvariants: for random keep-sets of leaves, a pruned
// tree (a) contains exactly the kept leaves among its leaves, (b) every
// node is either kept or has a kept descendant, and (c) never grows.
func TestPropPruneSubsetInvariants(t *testing.T) {
	g := CS2013()
	leaves := g.Leaves()
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%30) + 1
		keep := map[string]bool{}
		for i := 0; i < n; i++ {
			keep[leaves[rng.Intn(len(leaves))].ID] = true
		}
		pruned := g.Prune(func(nd *Node) bool { return keep[nd.ID] && len(nd.Children) == 0 })
		if pruned.Len() > g.Len() {
			return false
		}
		// Every kept leaf appears; every pruned leaf was kept.
		got := map[string]bool{}
		for _, l := range pruned.Leaves() {
			got[l.ID] = true
			if !keep[l.ID] {
				return false
			}
		}
		for id := range keep {
			if !got[id] {
				return false
			}
		}
		// Ancestors of kept leaves are present.
		for id := range keep {
			n := g.MustLookup(id)
			for cur := n.Parent; cur != nil && cur.Kind != KindRoot; cur = cur.Parent {
				if pruned.Lookup(cur.ID) == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropLCAIsCommonAncestor: the LCA of two random nodes is an ancestor
// of both and no child of it is.
func TestPropLCAIsCommonAncestor(t *testing.T) {
	g := CS2013()
	nodes := g.Nodes()
	isAncestor := func(a, n *Node) bool {
		for cur := n; cur != nil; cur = cur.Parent {
			if cur == a {
				return true
			}
		}
		return false
	}
	f := func(i16, j16 uint16) bool {
		a := nodes[int(i16)%len(nodes)]
		b := nodes[int(j16)%len(nodes)]
		l := LCA(a, b)
		if l == nil {
			return false
		}
		if !isAncestor(l, a) || !isAncestor(l, b) {
			return false
		}
		// No child of the LCA is an ancestor of both.
		for _, c := range l.Children {
			if isAncestor(c, a) && isAncestor(c, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropDepthConsistentWithPath: Depth equals len(Path) for every node.
func TestPropDepthConsistentWithPath(t *testing.T) {
	g := PDC12()
	for _, n := range g.Nodes() {
		if Depth(n) != len(Path(n)) {
			t.Fatalf("node %q: depth %d, path length %d", n.ID, Depth(n), len(Path(n)))
		}
	}
}
