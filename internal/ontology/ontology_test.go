package ontology

import (
	"strings"
	"testing"
)

func TestSlug(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Fundamental Programming Concepts", "fundamental-programming-concepts"},
		{"Big O notation: formal definition", "big-o-notation-formal-definition"},
		{"  leading  spaces ", "leading-spaces"},
		{"Already-slugged", "already-slugged"},
		{"UPPER", "upper"},
		{"a/b", "a-b"},
		{"trailing!", "trailing"},
	}
	for _, c := range cases {
		if got := Slug(c.in); got != c.want {
			t.Errorf("Slug(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAddChildBuildsIDs(t *testing.T) {
	g := NewGuideline("test")
	a := g.AddChildID(g.Root, KindArea, "XX", "Example Area")
	u := g.AddChild(a, KindUnit, "Some Unit")
	tp := g.AddChild(u, KindTopic, "A Topic Here")
	if a.ID != "XX" {
		t.Fatalf("area ID = %q", a.ID)
	}
	if u.ID != "XX/some-unit" {
		t.Fatalf("unit ID = %q", u.ID)
	}
	if tp.ID != "XX/some-unit/a-topic-here" {
		t.Fatalf("topic ID = %q", tp.ID)
	}
	if g.Lookup(tp.ID) != tp {
		t.Fatal("Lookup failed for topic")
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
}

func TestAddChildDuplicatePanics(t *testing.T) {
	g := NewGuideline("test")
	a := g.AddChildID(g.Root, KindArea, "XX", "Area")
	g.AddChild(a, KindUnit, "Unit One")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate ID")
		}
	}()
	g.AddChild(a, KindUnit, "Unit One")
}

func TestMustLookupPanics(t *testing.T) {
	g := NewGuideline("test")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.MustLookup("nope")
}

func TestCS2013Structure(t *testing.T) {
	g := CS2013()
	areas := g.Areas()
	if len(areas) != 18 {
		t.Fatalf("CS2013 has %d areas, want 18", len(areas))
	}
	wantAreas := []string{"SDF", "AL", "DS", "PL", "AR", "CN", "GV", "HCI", "IAS", "IM", "IS", "NC", "OS", "PBD", "PD", "SE", "SF", "SP"}
	have := map[string]bool{}
	for _, a := range areas {
		have[a.ID] = true
	}
	for _, w := range wantAreas {
		if !have[w] {
			t.Errorf("missing knowledge area %q", w)
		}
	}
	if g.Len() < 600 {
		t.Fatalf("CS2013 has only %d nodes; expected a realistic population (>600)", g.Len())
	}
}

func TestCS2013KeyEntriesExist(t *testing.T) {
	g := CS2013()
	// Entries the paper's analyses refer to by name must exist.
	ids := []string{
		"SDF/fundamental-programming-concepts",
		"SDF/fundamental-programming-concepts/variables-and-primitive-data-types",
		"SDF/fundamental-programming-concepts/conditional-control-structures",
		"SDF/fundamental-programming-concepts/the-concept-of-recursion",
		"SDF/algorithms-and-design/divide-and-conquer-strategies",
		"AL/basic-analysis/big-o-notation-formal-definition",
		"AL/fundamental-data-structures-and-algorithms/topological-sort-of-a-directed-acyclic-graph",
		"DS/graphs-and-trees/directed-graphs",
		"PL/object-oriented-programming/inheritance-and-subtyping",
		"PD/parallelism-fundamentals",
		"AR/machine-level-representation-of-data/representation-of-records-structs-and-arrays-in-memory",
	}
	for _, id := range ids {
		if g.Lookup(id) == nil {
			t.Errorf("CS2013 missing expected entry %q", id)
		}
	}
}

func TestCS2013TiersAndMastery(t *testing.T) {
	g := CS2013()
	fpc := g.MustLookup("SDF/fundamental-programming-concepts")
	if fpc.Tier != TierCore1 {
		t.Fatalf("FPC tier = %v, want core-1", fpc.Tier)
	}
	if fpc.Kind != KindUnit {
		t.Fatalf("FPC kind = %v", fpc.Kind)
	}
	// All outcomes must carry a mastery level; all topics must not.
	g.Walk(func(n *Node) bool {
		switch n.Kind {
		case KindOutcome:
			if n.Mastery == MasteryNone {
				t.Errorf("outcome %q has no mastery", n.ID)
			}
		case KindTopic:
			if n.Mastery != MasteryNone {
				t.Errorf("topic %q has a mastery level", n.ID)
			}
		}
		return true
	})
}

func TestCS2013SharedInstance(t *testing.T) {
	if CS2013() != CS2013() {
		t.Fatal("CS2013 must return the shared instance")
	}
}

func TestPDC12Structure(t *testing.T) {
	g := PDC12()
	areas := g.Areas()
	if len(areas) != 4 {
		t.Fatalf("PDC12 has %d areas, want 4", len(areas))
	}
	for _, want := range []string{"ARCH", "PROG", "ALGO", "XCUT"} {
		if g.Lookup(want) == nil {
			t.Errorf("PDC12 missing area %q", want)
		}
	}
	// Every topic must have a Bloom level; units and areas must not.
	g.Walk(func(n *Node) bool {
		if n.Kind == KindTopic && n.Bloom == BloomNone {
			t.Errorf("PDC topic %q has no Bloom level", n.ID)
		}
		if n.Kind != KindTopic && n.Bloom != BloomNone {
			t.Errorf("non-topic %q has a Bloom level", n.ID)
		}
		return true
	})
	// There must be both core and elective topics.
	core, elective := 0, 0
	for _, n := range g.NodesOfKind(KindTopic) {
		if n.Core {
			core++
		} else {
			elective++
		}
	}
	if core == 0 || elective == 0 {
		t.Fatalf("PDC12 core=%d elective=%d; both must be non-zero", core, elective)
	}
}

func TestAreaOfUnitOfDepthPath(t *testing.T) {
	g := CS2013()
	n := g.MustLookup("SDF/fundamental-programming-concepts/the-concept-of-recursion")
	if AreaOf(n).ID != "SDF" {
		t.Fatalf("AreaOf = %q", AreaOf(n).ID)
	}
	if UnitOf(n).ID != "SDF/fundamental-programming-concepts" {
		t.Fatalf("UnitOf = %q", UnitOf(n).ID)
	}
	if Depth(n) != 3 {
		t.Fatalf("Depth = %d, want 3", Depth(n))
	}
	p := Path(n)
	if len(p) != 3 || p[0].ID != "SDF" || p[2] != n {
		t.Fatalf("Path = %v", p)
	}
}

func TestAreaOfRootNil(t *testing.T) {
	g := CS2013()
	if AreaOf(g.Root) != nil {
		t.Fatal("AreaOf(root) should be nil")
	}
	if UnitOf(g.MustLookup("SDF")) != nil {
		t.Fatal("UnitOf(area) should be nil")
	}
}

func TestLCA(t *testing.T) {
	g := CS2013()
	a := g.MustLookup("SDF/fundamental-programming-concepts/the-concept-of-recursion")
	b := g.MustLookup("SDF/fundamental-programming-concepts/conditional-control-structures")
	if got := LCA(a, b); got.ID != "SDF/fundamental-programming-concepts" {
		t.Fatalf("LCA = %q", got.ID)
	}
	c := g.MustLookup("AL/basic-analysis/big-o-notation-use")
	if got := LCA(a, c); got.Kind != KindRoot {
		t.Fatalf("cross-area LCA = %q, want root", got.ID)
	}
	if got := LCA(a, a); got != a {
		t.Fatal("LCA(a,a) != a")
	}
}

func TestSubtreeIDs(t *testing.T) {
	g := CS2013()
	fpc := g.MustLookup("SDF/fundamental-programming-concepts")
	ids := SubtreeIDs(fpc)
	if len(ids) < 10 {
		t.Fatalf("FPC subtree too small: %d", len(ids))
	}
	for _, id := range ids {
		if !strings.HasPrefix(id, "SDF/fundamental-programming-concepts") {
			t.Fatalf("subtree ID %q escapes subtree", id)
		}
	}
}

func TestNodesSortedDeterministic(t *testing.T) {
	g := CS2013()
	a := g.Nodes()
	b := g.Nodes()
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("Nodes() not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].ID <= a[i-1].ID {
			t.Fatalf("Nodes() not sorted at %d: %q <= %q", i, a[i].ID, a[i-1].ID)
		}
	}
}

func TestLeavesAreTopicsOrOutcomes(t *testing.T) {
	g := CS2013()
	for _, l := range g.Leaves() {
		if l.Kind != KindTopic && l.Kind != KindOutcome {
			t.Fatalf("leaf %q has kind %v", l.ID, l.Kind)
		}
		if len(l.Children) != 0 {
			t.Fatalf("leaf %q has children", l.ID)
		}
	}
}

func TestPrune(t *testing.T) {
	g := CS2013()
	// Keep only two specific topics; the pruned tree must contain exactly
	// them plus their ancestors.
	keepIDs := map[string]bool{
		"SDF/fundamental-programming-concepts/the-concept-of-recursion": true,
		"AL/basic-analysis/big-o-notation-use":                          true,
	}
	p := g.Prune(func(n *Node) bool { return keepIDs[n.ID] })
	wantIDs := []string{
		"SDF",
		"SDF/fundamental-programming-concepts",
		"SDF/fundamental-programming-concepts/the-concept-of-recursion",
		"AL",
		"AL/basic-analysis",
		"AL/basic-analysis/big-o-notation-use",
	}
	if p.Len() != len(wantIDs) {
		t.Fatalf("pruned tree has %d nodes, want %d", p.Len(), len(wantIDs))
	}
	for _, id := range wantIDs {
		if p.Lookup(id) == nil {
			t.Errorf("pruned tree missing %q", id)
		}
	}
	// Pruned copy must be independent of the original.
	if p.Lookup("SDF") == g.Lookup("SDF") {
		t.Fatal("Prune must deep-copy nodes")
	}
	// Original must be untouched.
	if g.Len() < 600 {
		t.Fatal("Prune mutated the original guideline")
	}
}

func TestPruneEmpty(t *testing.T) {
	g := CS2013()
	p := g.Prune(func(n *Node) bool { return false })
	if p.Len() != 0 {
		t.Fatalf("empty prune kept %d nodes", p.Len())
	}
}

func TestPruneParentLinksConsistent(t *testing.T) {
	g := CS2013()
	p := g.Prune(func(n *Node) bool { return n.Kind == KindTopic && AreaOf(n).ID == "SDF" })
	p.Walk(func(n *Node) bool {
		for _, c := range n.Children {
			if c.Parent != n {
				t.Fatalf("child %q has wrong parent", c.ID)
			}
		}
		return true
	})
	// All topics in SDF must be present.
	want := 0
	g.Walk(func(n *Node) bool {
		if n.Kind == KindTopic && AreaOf(n) != nil && AreaOf(n).ID == "SDF" {
			want++
		}
		return true
	})
	got := len(p.NodesOfKind(KindTopic))
	if got != want {
		t.Fatalf("pruned SDF topics = %d, want %d", got, want)
	}
}

func TestKindTierMasteryBloomStrings(t *testing.T) {
	if KindTopic.String() != "topic" || KindRoot.String() != "root" {
		t.Fatal("Kind.String wrong")
	}
	if TierCore1.String() != "core-1" || TierElective.String() != "elective" {
		t.Fatal("Tier.String wrong")
	}
	if MasteryUsage.String() != "usage" {
		t.Fatal("Mastery.String wrong")
	}
	if BloomApply.String() != "apply" {
		t.Fatal("Bloom.String wrong")
	}
	if Kind(99).String() == "" || Tier(99).String() == "" || Mastery(99).String() == "" || Bloom(99).String() == "" {
		t.Fatal("out-of-range String should not be empty")
	}
}
