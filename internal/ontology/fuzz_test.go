package ontology

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzSlug exercises the ID segment normalizer with arbitrary input: the
// output must always be a valid ID segment (lowercase ASCII alphanumerics
// and single dashes, no leading/trailing dash) and idempotent.
func FuzzSlug(f *testing.F) {
	for _, seed := range []string{
		"Fundamental Programming Concepts",
		"Big O notation: formal definition",
		"NP-completeness and Cook's theorem",
		"ünïcödé Ünicode",
		"---",
		"",
		"a  b\tc\nd",
		"🎉 emoji party 🎉",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := Slug(s)
		if out != Slug(out) {
			t.Fatalf("Slug not idempotent on %q: %q -> %q", s, out, Slug(out))
		}
		if strings.HasPrefix(out, "-") || strings.HasSuffix(out, "-") {
			t.Fatalf("Slug(%q) = %q has boundary dash", s, out)
		}
		if strings.Contains(out, "--") {
			t.Fatalf("Slug(%q) = %q has double dash", s, out)
		}
		for _, r := range out {
			if r != '-' && !unicode.IsLower(r) && !unicode.IsDigit(r) {
				t.Fatalf("Slug(%q) = %q contains %q", s, out, r)
			}
			if r > unicode.MaxASCII {
				t.Fatalf("Slug(%q) = %q contains non-ASCII", s, out)
			}
		}
	})
}
