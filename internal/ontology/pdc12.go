package ontology

import (
	"fmt"
	"strings"
	"sync"
)

// pdcTopic encodes a PDC12 topic as "name|B|core" where B ∈ {K, C, A}
// (Bloom: know, comprehend, apply) and core is "c" or "e".
type pdcUnit struct {
	name   string
	topics []string
}

type pdcArea struct {
	abbrev string
	name   string
	units  []pdcUnit
}

var (
	pdc12Once sync.Once
	pdc12Tree *Guideline
)

// PDC12 returns the NSF/IEEE-TCPP 2012 Parallel and Distributed Computing
// curriculum guideline tree. Unlike CS2013, PDC12 attaches Bloom levels to
// topics and distinguishes only core from elective. The tree is built once
// and shared; callers must treat it as read-only.
func PDC12() *Guideline {
	pdc12Once.Do(func() { pdc12Tree = buildPDC12() })
	return pdc12Tree
}

func buildPDC12() *Guideline {
	g := NewGuideline("NSF/IEEE-TCPP PDC12")
	for _, area := range pdc12Data {
		a := g.AddChildID(g.Root, KindArea, area.abbrev, area.name)
		for _, unit := range area.units {
			u := g.AddChild(a, KindUnit, unit.name)
			for _, enc := range unit.topics {
				name, bloom, core := parsePDCTopic(enc)
				n := g.AddChild(u, KindTopic, name)
				n.Bloom = bloom
				n.Core = core
			}
		}
	}
	return g
}

func parsePDCTopic(enc string) (string, Bloom, bool) {
	parts := strings.Split(enc, "|")
	if len(parts) != 3 {
		panic(fmt.Sprintf("ontology: malformed PDC topic %q", enc))
	}
	var b Bloom
	switch parts[1] {
	case "K":
		b = BloomKnow
	case "C":
		b = BloomComprehend
	case "A":
		b = BloomApply
	default:
		panic(fmt.Sprintf("ontology: unknown Bloom level %q in %q", parts[1], enc))
	}
	switch parts[2] {
	case "c":
		return parts[0], b, true
	case "e":
		return parts[0], b, false
	default:
		panic(fmt.Sprintf("ontology: unknown core flag %q in %q", parts[2], enc))
	}
}

// pdc12Data reconstructs the NSF/IEEE-TCPP 2012 PDC curriculum: four
// areas (Architecture, Programming, Algorithms, Cross-Cutting and
// Advanced Topics), topics annotated with Bloom levels and core status.
var pdc12Data = []pdcArea{
	{
		abbrev: "ARCH", name: "Architecture",
		units: []pdcUnit{
			{
				name: "Classes of Parallelism",
				topics: []string{
					"Superscalar instruction-level parallelism|K|c",
					"SIMD and vector operation|K|c",
					"Pipelines as assembly-line parallelism|C|c",
					"Streams such as GPU pipelines|K|e",
					"MIMD and the Flynn taxonomy|K|c",
					"Simultaneous multithreading|K|c",
					"Highly multithreaded architectures|K|e",
					"Multicore processors|C|c",
					"Heterogeneous architectures such as CPU plus GPU|K|c",
				},
			},
			{
				name: "Memory Hierarchy",
				topics: []string{
					"Cache organization in multicore systems|C|c",
					"Atomicity of memory operations|K|c",
					"Memory consistency models|K|e",
					"Cache coherence protocols|K|e",
					"False sharing|K|e",
					"Impact of memory hierarchy on performance|C|c",
				},
			},
			{
				name: "Floating-Point Representation",
				topics: []string{
					"Floating-point range and precision|K|c",
					"Rounding error and its accumulation|K|c",
					"Non-associativity of floating-point addition|C|c",
					"Error propagation in parallel reductions|K|e",
				},
			},
			{
				name: "Performance Metrics",
				topics: []string{
					"Cycles per instruction and benchmark metrics|K|c",
					"Peak versus sustained performance|K|c",
					"MIPS and FLOPS as measures|K|c",
				},
			},
			{
				name: "Interconnects",
				topics: []string{
					"Shared buses and contention|K|e",
					"Network topologies: mesh, torus, fat tree|K|e",
					"Latency and bandwidth of interconnects|C|e",
				},
			},
		},
	},
	{
		abbrev: "PROG", name: "Programming",
		units: []pdcUnit{
			{
				name: "Parallel Programming Paradigms",
				topics: []string{
					"Programming by task decomposition|A|c",
					"Programming by data-parallel decomposition|A|c",
					"Shared-memory programming|A|c",
					"Message-passing programming|C|c",
					"Hybrid shared and distributed programming|K|e",
					"Client-server and distributed-object paradigms|C|c",
					"Functional and dataflow models of parallelism|K|e",
					"Event-driven and reactive concurrency|K|e",
				},
			},
			{
				name: "Parallel Programming Notations",
				topics: []string{
					"Parallel-for loop annotations such as OpenMP|A|c",
					"Task-spawn constructs such as cilk spawn and sync|C|c",
					"Thread libraries|C|c",
					"Message-passing libraries such as MPI|C|c",
					"Futures and promises|C|e",
					"Concurrent collections and thread-safe containers|C|c",
					"CUDA-style accelerator kernels|K|e",
				},
			},
			{
				name: "Semantics and Correctness Issues",
				topics: []string{
					"Tasks and threads as units of execution|C|c",
					"Synchronization: critical regions, producer-consumer|A|c",
					"Mutual exclusion with locks|A|c",
					"Data races and determinism|C|c",
					"Deadlock detection and avoidance|C|c",
					"Memory models and visibility of writes|K|e",
					"Concurrency defects and debugging|C|c",
					"Thread safety of data structures|C|c",
				},
			},
			{
				name: "Performance Issues in Programming",
				topics: []string{
					"Computation decomposition and granularity|C|c",
					"Load balancing of parallel work|C|c",
					"Scheduling and mapping tasks to resources|C|c",
					"Data distribution and locality|C|c",
					"Communication overhead and aggregation|K|e",
					"Performance tuning and profiling tools|K|e",
				},
			},
		},
	},
	{
		abbrev: "ALGO", name: "Algorithms",
		units: []pdcUnit{
			{
				name: "Parallel and Distributed Models and Complexity",
				topics: []string{
					"Costs of computation: time, space, power|C|c",
					"Asymptotic analysis in the parallel context|A|c",
					"Work and span of a computation DAG|C|c",
					"Critical path as a lower bound on time|C|c",
					"Speedup, efficiency, and scalability|C|c",
					"Amdahl's law and Gustafson's law|C|c",
					"The PRAM model|K|e",
					"BSP and LogP cost models|K|e",
					"Dependencies and task graphs as models of computation|C|c",
					"Directed acyclic graphs and topological order|C|c",
				},
			},
			{
				name: "Algorithmic Paradigms",
				topics: []string{
					"Divide-and-conquer in parallel|A|c",
					"Recursive task-based parallelism|C|c",
					"Reduction as a parallel pattern|A|c",
					"Scan and prefix-sum as parallel patterns|C|c",
					"Stencil computations|K|e",
					"Master-worker and work queues|C|c",
					"Pipelined algorithms|K|e",
					"Bottom-up dynamic programming in parallel|K|e",
					"Speculative execution and branch-and-bound|K|e",
				},
			},
			{
				name: "Algorithmic Problems",
				topics: []string{
					"Parallel summation and collective communication|A|c",
					"Parallel sorting: merge-based and sample sort|C|c",
					"Parallel matrix operations|C|c",
					"Parallel graph traversal: BFS in parallel|K|e",
					"Parallel search of unstructured spaces|C|c",
					"Convolution and map over arrays|C|c",
					"List scheduling and makespan minimization|K|e",
					"Topological sort for dependency resolution|C|c",
				},
			},
		},
	},
	{
		abbrev: "XCUT", name: "Cross-Cutting and Advanced Topics",
		units: []pdcUnit{
			{
				name: "High-Level Themes",
				topics: []string{
					"Why and what is parallel and distributed computing|K|c",
					"History of parallel computing and Moore's law|K|e",
					"Power and energy as first-class constraints|K|e",
				},
			},
			{
				name: "Concurrency Concepts",
				topics: []string{
					"Nondeterminism as inherent to concurrency|C|c",
					"Concurrency beyond parallelism: overlapping I/O|K|c",
					"Ordering of operations on shared objects|C|c",
				},
			},
			{
				name: "Fault Tolerance and Distribution",
				topics: []string{
					"Partial failure in distributed systems|K|e",
					"Replication and redundancy|K|e",
					"Consensus at a high level|K|e",
					"Distributed transactions overview|K|e",
				},
			},
			{
				name: "Current and Advanced Topics",
				topics: []string{
					"Cluster and cloud computing|K|c",
					"MapReduce-style data processing|K|e",
					"Peer-to-peer systems|K|e",
					"Security in distributed systems|K|e",
					"Performance modeling of applications at scale|K|e",
				},
			},
		},
	},
}
