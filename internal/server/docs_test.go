package server

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"csmaterials/internal/engine/analyses"
	"csmaterials/internal/fleet"
)

// TestAPIDocsCoverRegistry pins docs/api.md to the live route table:
// every registered analysis must be documented, and every documented
// /api/v1/<segment> must correspond to a real route. CI runs this
// test by name, so adding an analysis without documenting it (or
// documenting an endpoint that does not exist) fails the build.
func TestAPIDocsCoverRegistry(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "api.md"))
	if err != nil {
		t.Fatalf("docs/api.md unreadable: %v", err)
	}
	doc := string(raw)

	reg, err := analyses.Default()
	if err != nil {
		t.Fatal(err)
	}
	names := reg.Names()
	for _, name := range names {
		if !strings.Contains(doc, "/api/v1/"+name) {
			t.Errorf("docs/api.md does not document registered analysis %q (GET /api/v1/%s)", name, name)
		}
	}

	// Fixed (non-registry) routes the doc must cover.
	for _, route := range []string{
		"/api/v1/courses", "/api/v1/search", "/api/v1/batch",
		"/api/v1/datasets", "/api/v1/datasets/{id}", "/api/v1/keys/reload",
		"/api/v1/fleet", "/api/v1/fleet/invalidate",
		"/healthz", "/readyz", "/metrics", "/debug/metrics", "/debug/trace",
	} {
		if !strings.Contains(doc, route) {
			t.Errorf("docs/api.md does not document %s", route)
		}
	}

	// Fleet-mode error codes clients can observe.
	for _, code := range []string{"node_draining", "not_owner"} {
		if !strings.Contains(doc, code) {
			t.Errorf("docs/api.md does not document the %s error code", code)
		}
	}

	// Every route family that exists un-scoped also exists under
	// /api/v1/datasets/{id}/; the doc must cover each scoped family —
	// the fixed query families and every registered analysis.
	scoped := append([]string{"courses", "search", "figures"}, names...)
	for _, fam := range scoped {
		if !strings.Contains(doc, "/api/v1/datasets/{id}/"+fam) {
			t.Errorf("docs/api.md does not document the dataset-scoped route family /api/v1/datasets/{id}/%s", fam)
		}
	}

	// Reverse direction: every /api/v1/<segment> the doc mentions must
	// be a real route — a registered analysis or a fixed endpoint.
	known := map[string]bool{"courses": true, "search": true, "figures": true, "batch": true, "datasets": true, "keys": true, "fleet": true}
	for _, name := range names {
		known[name] = true
	}
	seg := regexp.MustCompile(`/api/v1/([a-z]+)`)
	for _, m := range seg.FindAllStringSubmatch(doc, -1) {
		if !known[m[1]] {
			t.Errorf("docs/api.md documents /api/v1/%s, which is not a registered analysis or fixed route", m[1])
		}
	}
}

// TestClusterDocsCoverFleetMetrics pins docs/cluster.md (and the
// operations guide's metrics reference) to the live csm_fleet_*
// exposition: every family a fleet-mode replica emits must be
// documented, and every csm_fleet_* name the docs mention must be a
// family that actually exists. Adding a fleet counter without
// documenting it fails CI, exactly like an undocumented analysis route.
func TestClusterDocsCoverFleetMetrics(t *testing.T) {
	cluster, err := os.ReadFile(filepath.Join("..", "..", "docs", "cluster.md"))
	if err != nil {
		t.Fatalf("docs/cluster.md unreadable: %v", err)
	}
	ops, err := os.ReadFile(filepath.Join("..", "..", "docs", "operations.md"))
	if err != nil {
		t.Fatalf("docs/operations.md unreadable: %v", err)
	}

	fl, err := fleet.New(fleet.Config{
		Self:  "a",
		Peers: []fleet.Peer{{ID: "a", URL: "http://127.0.0.1:1"}, {ID: "b", URL: "http://127.0.0.1:2"}},
	}, fleet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(Options{Fleet: fl, disableWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	live := map[string]bool{}
	for _, fam := range s.promFleetFamilies() {
		live[fam.Name] = true
		for docName, content := range map[string]string{"cluster": string(cluster), "operations": string(ops)} {
			if !strings.Contains(content, fam.Name) {
				t.Errorf("docs/%s.md does not document the %s metric family", docName, fam.Name)
			}
		}
	}

	// Reverse direction: a documented csm_fleet_* name must exist.
	fam := regexp.MustCompile(`csm_fleet_[a-z_]+`)
	for _, m := range fam.FindAllString(string(cluster)+string(ops), -1) {
		if !live[m] {
			t.Errorf("docs mention %s, which is not an emitted family", m)
		}
	}

	// The operational contract of a drain must be spelled out.
	for _, term := range []string{"node_draining", "not_owner", "SIGTERM", "X-CSM-Forwarded", "X-CSM-Ring-Version", "X-CSM-Owner"} {
		if !strings.Contains(string(cluster), term) {
			t.Errorf("docs/cluster.md does not mention %s", term)
		}
	}
}
