package server

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"csmaterials/internal/engine/analyses"
)

// TestAPIDocsCoverRegistry pins docs/api.md to the live route table:
// every registered analysis must be documented, and every documented
// /api/v1/<segment> must correspond to a real route. CI runs this
// test by name, so adding an analysis without documenting it (or
// documenting an endpoint that does not exist) fails the build.
func TestAPIDocsCoverRegistry(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "api.md"))
	if err != nil {
		t.Fatalf("docs/api.md unreadable: %v", err)
	}
	doc := string(raw)

	reg, err := analyses.Default()
	if err != nil {
		t.Fatal(err)
	}
	names := reg.Names()
	for _, name := range names {
		if !strings.Contains(doc, "/api/v1/"+name) {
			t.Errorf("docs/api.md does not document registered analysis %q (GET /api/v1/%s)", name, name)
		}
	}

	// Fixed (non-registry) routes the doc must cover.
	for _, route := range []string{
		"/api/v1/courses", "/api/v1/search", "/api/v1/batch",
		"/api/v1/datasets", "/api/v1/datasets/{id}", "/api/v1/keys/reload",
		"/healthz", "/readyz", "/metrics", "/debug/metrics", "/debug/trace",
	} {
		if !strings.Contains(doc, route) {
			t.Errorf("docs/api.md does not document %s", route)
		}
	}

	// Every route family that exists un-scoped also exists under
	// /api/v1/datasets/{id}/; the doc must cover each scoped family —
	// the fixed query families and every registered analysis.
	scoped := append([]string{"courses", "search", "figures"}, names...)
	for _, fam := range scoped {
		if !strings.Contains(doc, "/api/v1/datasets/{id}/"+fam) {
			t.Errorf("docs/api.md does not document the dataset-scoped route family /api/v1/datasets/{id}/%s", fam)
		}
	}

	// Reverse direction: every /api/v1/<segment> the doc mentions must
	// be a real route — a registered analysis or a fixed endpoint.
	known := map[string]bool{"courses": true, "search": true, "figures": true, "batch": true, "datasets": true, "keys": true}
	for _, name := range names {
		known[name] = true
	}
	seg := regexp.MustCompile(`/api/v1/([a-z]+)`)
	for _, m := range seg.FindAllStringSubmatch(doc, -1) {
		if !known[m[1]] {
			t.Errorf("docs/api.md documents /api/v1/%s, which is not a registered analysis or fixed route", m[1])
		}
	}
}
