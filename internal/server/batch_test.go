package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// batchEnv decodes the POST /api/v1/batch envelope.
type batchEnv struct {
	Data []struct {
		Analysis string          `json:"analysis"`
		Key      string          `json:"key"`
		Cache    string          `json:"cache"`
		Stale    bool            `json:"stale"`
		Data     json.RawMessage `json:"data"`
		Error    *struct {
			Status  int    `json:"status"`
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	} `json:"data"`
	Meta struct {
		Items   int `json:"items"`
		Workers int `json:"workers"`
	} `json:"meta"`
}

func postBatch(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestBatchEndpoint: a mixed batch comes back in input order with
// per-item envelopes — data and cache meta for the good items, typed
// errors for the broken ones — and a second identical batch is all
// cache hits.
func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"items": [
		{"analysis": "types", "params": {"group": "cs1", "k": "3"}},
		{"analysis": "agreement", "params": {"group": "cs1", "threshold": "2"}},
		{"analysis": "bogus"},
		{"analysis": "types", "params": {"k": "banana"}},
		{"analysis": "anchors", "params": {"course": "vcu-cmsc256-duke"}}
	]}`
	resp, raw := postBatch(t, ts, body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d\n%s", resp.StatusCode, raw)
	}
	var e batchEnv
	decode(t, raw, &e)
	if len(e.Data) != 5 || e.Meta.Items != 5 || e.Meta.Workers < 1 {
		t.Fatalf("%d results, meta = %+v", len(e.Data), e.Meta)
	}

	if r := e.Data[0]; r.Error != nil || r.Key != "types|cs1|3" || r.Cache != "miss" || r.Data == nil {
		t.Fatalf("types item = %+v", r)
	}
	if r := e.Data[1]; r.Error != nil || r.Key != "agreement|cs1|2" || r.Data == nil {
		t.Fatalf("agreement item = %+v", r)
	}
	if r := e.Data[2]; r.Error == nil || r.Error.Status != 404 || r.Error.Code != "not_found" || r.Data != nil {
		t.Fatalf("bogus item = %+v", r)
	}
	if r := e.Data[3]; r.Error == nil || r.Error.Status != 400 || r.Error.Code != "bad_request" {
		t.Fatalf("bad-params item = %+v", r)
	}
	if r := e.Data[4]; r.Error != nil || r.Key != "anchors|vcu-cmsc256-duke" {
		t.Fatalf("anchors item = %+v", r)
	}

	// Replay: every good item is a hit now; the batch shares the same
	// cache the GET endpoints use.
	_, raw = postBatch(t, ts, body)
	decode(t, raw, &e)
	for _, i := range []int{0, 1, 4} {
		if e.Data[i].Cache != "hit" {
			t.Fatalf("replayed item %d cache = %q, want hit", i, e.Data[i].Cache)
		}
	}
	ge := getEnvelope(t, ts, "/api/v1/types?group=cs1&k=3", 200)
	if ge.Meta.Cache != "hit" {
		t.Fatalf("GET after batch = %+v, want shared cache hit", ge.Meta)
	}
}

// TestBatchValidation: malformed bodies, empty batches, and oversized
// batches are rejected up front with the JSON error envelope.
func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t)
	var big bytes.Buffer
	big.WriteString(`{"items": [`)
	for i := 0; i < 65; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		fmt.Fprintf(&big, `{"analysis": "types"}`)
	}
	big.WriteString(`]}`)

	cases := []struct {
		name, body string
	}{
		{"malformed json", `{"items": [`},
		{"unknown field", `{"itemz": []}`},
		{"empty items", `{"items": []}`},
		{"no items", `{}`},
		{"oversized", big.String()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postBatch(t, ts, tc.body)
			if resp.StatusCode != 400 {
				t.Fatalf("status %d\n%s", resp.StatusCode, raw)
			}
			var e errEnv
			decode(t, raw, &e)
			if e.Error.Code != "bad_request" || e.Error.Message == "" {
				t.Fatalf("error envelope = %+v", e)
			}
		})
	}

	// The batch route is POST-only: GET gets a 405 pointing at POST.
	resp, raw := get(t, ts, "/api/v1/batch")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /api/v1/batch status %d\n%s", resp.StatusCode, raw)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow = %q, want POST", allow)
	}
}

// TestBatchWorkersOption: the configured pool size is reported in the
// batch meta.
func TestBatchWorkersOption(t *testing.T) {
	s, err := NewWithOptions(Options{BatchWorkers: 2, disableWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	_, raw := postBatch(t, ts, `{"items": [{"analysis": "agreement", "params": {"group": "cs1"}}]}`)
	var e batchEnv
	decode(t, raw, &e)
	if e.Meta.Workers != 2 {
		t.Fatalf("meta = %+v, want workers 2", e.Meta)
	}
}
