package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"

	"csmaterials/internal/dataset"
	"csmaterials/internal/engine"
	"csmaterials/internal/fleet"
	"csmaterials/internal/obs"
)

// Fleet routing. When Options.Fleet is set, every analysis request is
// resolved to its owning replica on the consistent-hash ring before it
// touches the local serving ladder:
//
//   - we own the key           → serve locally (the normal ladder)
//   - a peer owns it           → forward one hop, relay the response
//   - the forward fails        → compute locally (degrade, don't fail)
//   - the request WAS a hop    → serve as owner; never re-forward
//
// Ownership is cache locality: with every replica agreeing on the
// owner, a key's cache entry and singleflight group live on exactly
// one node, so the owner's per-key dedup is cluster-wide dedup. The
// fallback arm means a broken fleet only costs that dedup — each
// replica still serves everything from its own ladder.

// fleetAnalysis applies ownership routing to one analysis request.
// It reports true when it wrote the response (forwarded and relayed,
// served as owner, or refused a misrouted/draining hop); false means
// the caller should run the normal local path — either this replica
// owns the key, or the fleet layer is degrading to local compute.
func (s *Server) fleetAnalysis(w http.ResponseWriter, r *http.Request, name string, values url.Values) bool {
	ds, _ := requestDataset(r)
	key, err := s.exec.FleetKeyOn(ds, name, values)
	if err != nil {
		// Unknown analysis or bad params: the local path produces the
		// canonical error envelope without a wasted hop.
		return false
	}
	owner := s.fleet.Owner(key)
	if r.Header.Get(fleet.ForwardedHeader) != "" {
		return s.fleetServeForwarded(w, r, owner, name, values)
	}
	if owner == s.fleet.Self() {
		return false // ours; plain local serve
	}
	return s.fleetForward(w, r, owner)
}

// fleetServeForwarded handles a request another replica routed here.
// Forwarded requests are never re-forwarded: whatever happens next
// happens on this node, so a membership disagreement can bounce a
// request at most once.
func (s *Server) fleetServeForwarded(w http.ResponseWriter, r *http.Request, owner, name string, values url.Values) bool {
	if s.fleet.Draining() {
		s.fleet.CountDrainRefused()
		writeError(w, http.StatusServiceUnavailable, "node_draining",
			"node %s is draining; compute locally or retry another replica", s.fleet.Self())
		return true
	}
	if !s.fleet.VersionMatches(r) {
		// The sender routed under a different membership (ring split /
		// mid-rollout). Refuse rather than serve a key this replica may
		// not own under its own ring — the sender falls back locally.
		s.fleet.CountNotOwner()
		writeError(w, http.StatusMisdirectedRequest, "not_owner",
			"node %s runs ring version %s, not the sender's %s",
			s.fleet.Self(), s.fleet.RingVersion(), r.Header.Get(fleet.RingVersionHeader))
		return true
	}
	if owner != s.fleet.Self() {
		// Same ring version yet we disagree about the owner — should be
		// impossible (the ring is deterministic); serve locally rather
		// than bounce the request around the fleet.
		s.fleet.CountLoopPrevented()
		return false
	}
	s.fleet.CountOwnerCompute()
	w.Header().Set(fleet.OwnerHeader, s.fleet.Self())
	sp := obs.StartSpan(r.Context(), "fleet-owner-compute")
	sp.SetAnalysis(name)
	sp.SetDataset(requestDatasetID(r))
	v, meta, ok := s.runAnalysis(w, r, name, values)
	if !ok {
		sp.EndAs("fleet-owner-compute-error")
		return true
	}
	sp.End()
	writeData(w, http.StatusOK, v, meta)
	return true
}

// fleetForward sends the request one hop to its owner and relays the
// answer. Any owner-side or transport trouble degrades to local
// compute (return false) — forwarding is an optimization, never a
// dependency.
func (s *Server) fleetForward(w http.ResponseWriter, r *http.Request, owner string) bool {
	sp := obs.StartSpan(r.Context(), "fleet-forward")
	path := r.URL.Path
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	resp, err := s.fleet.Forward(r.Context(), owner, http.MethodGet, path, nil)
	if fleet.ShouldFallback(resp, err) {
		if resp != nil {
			_ = resp.Body.Close()
		}
		sp.EndAs("fleet-forward-fallback")
		s.fleet.CountLocalFallback()
		return false
	}
	defer resp.Body.Close()
	sp.End()
	w.Header().Set(fleet.OwnerHeader, owner)
	for _, h := range []string{"Content-Type", "X-Served-Stale", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// requestDatasetID is requestDataset without the scoped flag, for
// span labels.
func requestDatasetID(r *http.Request) string {
	ds, _ := requestDataset(r)
	return ds
}

// --- Distributed batch ---------------------------------------------------

// batchGroup is the slice of a distributed batch bound for one node.
type batchGroup struct {
	items   []engine.BatchItem
	indices []int // positions in the original request
}

// fleetBatch runs a batch in distributed mode: items partition by the
// owner of their (dataset, analysis, paramKey) ownership key,
// sub-batches fan out to their owners concurrently, the local group
// runs on the local ladder, and results reassemble positionally.
// Per-item error envelopes survive unchanged: a peer's item errors are
// relayed verbatim, a failed sub-batch forward falls back to computing
// those items locally, and items whose params don't even yield a key
// run locally so the normal per-item error shape reports them.
//
// Byte-identity with single-node batches is load-bearing (and tested):
// locally computed results are marshaled per item with the same
// encoder the single-node path uses, peer results are relayed as raw
// message bytes (themselves marshaled from the same struct by the
// peer), and the envelope encoder compacts and re-indents both
// identically.
func (s *Server) fleetBatch(w http.ResponseWriter, r *http.Request, items []engine.BatchItem) {
	s.fleet.CountBatchFanout()
	local := batchGroup{}
	remote := map[string]*batchGroup{}
	for i, it := range items {
		ds := it.Dataset
		if ds == "" {
			ds = dataset.DefaultID
		}
		key, err := s.exec.FleetKeyOn(ds, it.Analysis, it.Values())
		owner := ""
		if err == nil {
			owner = s.fleet.Owner(key)
		}
		if err != nil || owner == s.fleet.Self() || s.fleet.PeerURL(owner) == "" {
			local.items = append(local.items, it)
			local.indices = append(local.indices, i)
			continue
		}
		g := remote[owner]
		if g == nil {
			g = &batchGroup{}
			remote[owner] = g
		}
		g.items = append(g.items, it)
		g.indices = append(g.indices, i)
	}

	out := make([]json.RawMessage, len(items))
	var (
		wg       sync.WaitGroup
		fellBack []batchGroup // groups whose forward failed; run locally after
		fbMu     sync.Mutex
	)
	for owner, g := range remote {
		wg.Add(1)
		go func(owner string, g *batchGroup) {
			defer wg.Done()
			if results, ok := s.forwardSubBatch(r, owner, g.items); ok {
				for j, raw := range results {
					out[g.indices[j]] = raw
				}
				return
			}
			s.fleet.CountLocalFallback()
			fbMu.Lock()
			fellBack = append(fellBack, *g)
			fbMu.Unlock()
		}(owner, g)
	}
	s.runBatchGroupLocally(r, local, out)
	wg.Wait()
	for _, g := range fellBack {
		s.runBatchGroupLocally(r, g, out)
	}
	if r.Context().Err() != nil {
		return // client gone; nothing to write
	}
	writeData(w, http.StatusOK, out, BatchMeta{Items: len(out), Workers: s.exec.BatchWorkers()})
}

// runBatchGroupLocally executes one group on the local ladder and
// marshals each result into its original position.
func (s *Server) runBatchGroupLocally(r *http.Request, g batchGroup, out []json.RawMessage) {
	if len(g.items) == 0 {
		return
	}
	results := s.exec.RunBatch(r.Context(), g.items)
	for j, res := range results {
		raw, err := json.Marshal(res)
		if err != nil {
			raw = []byte(`{"error":"encode failure"}`)
		}
		out[g.indices[j]] = raw
	}
}

// forwardSubBatch POSTs one owner's items to it and splits the
// response's data array back into positional raw results. Any shape
// surprise (transport error, refusal, length mismatch) reports !ok and
// the caller computes the group locally.
func (s *Server) forwardSubBatch(r *http.Request, owner string, items []engine.BatchItem) ([]json.RawMessage, bool) {
	sp := obs.StartSpan(r.Context(), "fleet-forward")
	body, err := json.Marshal(BatchRequest{Items: items})
	if err != nil {
		sp.EndAs("fleet-forward-fallback")
		return nil, false
	}
	s.fleet.CountBatchForward(owner)
	resp, err := s.fleet.Forward(r.Context(), owner, http.MethodPost, "/api/v1/batch", body)
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			_ = resp.Body.Close()
		}
		sp.EndAs("fleet-forward-fallback")
		return nil, false
	}
	defer resp.Body.Close()
	var env struct {
		Data []json.RawMessage `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || len(env.Data) != len(items) {
		sp.EndAs("fleet-forward-fallback")
		return nil, false
	}
	sp.End()
	return env.Data, true
}

// --- Invalidation broadcast ----------------------------------------------

// broadcastInvalidate tells the rest of the fleet that dataset changed
// here (PUT/PATCH/DELETE ingest), so every replica sweeps its
// revisioned cache keys for the dataset. Skipped for requests that
// arrived as a broadcast (loop guard) and when no fleet is configured.
func (s *Server) broadcastInvalidate(r *http.Request, ds string) {
	if s.fleet == nil || r.Header.Get(fleet.ForwardedHeader) != "" {
		return
	}
	s.fleet.BroadcastInvalidate(r.Context(), ds)
}

// FleetInvalidation is the POST /api/v1/fleet/invalidate body and data
// payload.
type FleetInvalidation struct {
	Dataset string `json:"dataset"`
	// Invalidated counts the cache entries dropped (response only).
	Invalidated int `json:"invalidated,omitempty"`
}

// handleFleetInvalidate applies a peer's ingest notification: sweep
// every cached revision of the named dataset locally. The local corpus
// is not replaced — datasets are ingested per replica (see
// docs/cluster.md) — so only derived serving state is dropped; the
// search index keys by revision and ages out on its own.
func (s *Server) handleFleetInvalidate(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeError(w, http.StatusNotFound, "not_found", "this replica is not part of a fleet")
		return
	}
	var req FleetInvalidation
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad invalidation body: %v", err)
		return
	}
	if err := dataset.ValidateID(req.Dataset); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%s", err.Error())
		return
	}
	n := s.exec.InvalidateDataset(req.Dataset, 0)
	s.fleet.CountInvalidationReceived()
	writeData(w, http.StatusOK, FleetInvalidation{Dataset: req.Dataset, Invalidated: n}, nil)
}

// --- Fleet introspection --------------------------------------------------

// FleetInfo is the GET /api/v1/fleet data payload.
type FleetInfo struct {
	Self        string       `json:"self"`
	RingVersion string       `json:"ring_version"`
	Draining    bool         `json:"draining"`
	Peers       []fleet.Peer `json:"peers"`
	Stats       fleet.Stats  `json:"stats"`
}

// handleFleet serves GET /api/v1/fleet: membership, ring version,
// drain state, and the forwarding counters, so an operator can ask any
// replica how the fleet looks from where it stands.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeError(w, http.StatusNotFound, "not_found", "this replica is not part of a fleet")
		return
	}
	writeData(w, http.StatusOK, FleetInfo{
		Self:        s.fleet.Self(),
		RingVersion: s.fleet.RingVersion(),
		Draining:    s.fleet.Draining(),
		Peers:       s.fleet.Peers(),
		Stats:       s.fleet.Stats(),
	}, nil)
}

// StartDraining latches the fleet layer into drain mode (SIGTERM):
// in-flight work finishes, direct client traffic keeps being served,
// newly forwarded computes are refused with 503 node_draining so peers
// shift to local compute, and /readyz reports "draining" so load
// balancers stop routing here. A no-op without a fleet.
func (s *Server) StartDraining() {
	if s.fleet != nil {
		s.fleet.StartDraining()
	}
}

// Fleet exposes the fleet layer (nil in single-process mode).
func (s *Server) Fleet() *fleet.Fleet { return s.fleet }

// --- Metrics --------------------------------------------------------------

// promFleetFamilies assembles the csm_fleet_* families. Only called
// when a fleet is configured, so single-process deployments keep the
// legacy exposition byte-for-byte. Per-peer families emit one sample
// per peer (zeros included) for a stable scrape shape; the label is
// "peer", not "dataset" — peer IDs are membership-bounded, and mixing
// them into dataset-labelled families would break the label contract.
func (s *Server) promFleetFamilies() []obs.Family {
	st := s.fleet.Stats()
	peerIDs := make([]string, 0, len(st.Forwards))
	for _, p := range s.fleet.Peers() {
		if p.ID != st.Self {
			peerIDs = append(peerIDs, p.ID)
		}
	}
	sort.Strings(peerIDs)
	forwards := obs.Family{Name: "csm_fleet_forwards_total", Help: "Requests forwarded to each owning peer.", Type: obs.Counter}
	failures := obs.Family{Name: "csm_fleet_forward_failures_total", Help: "Forwards that failed in transport or were breaker-rejected, per peer.", Type: obs.Counter}
	batchFwd := obs.Family{Name: "csm_fleet_batch_forwards_total", Help: "Batch sub-requests fanned out to each owning peer.", Type: obs.Counter}
	for _, id := range peerIDs {
		l := []obs.Label{{Name: "peer", Value: id}}
		forwards.Samples = append(forwards.Samples, obs.Sample{Labels: l, Value: float64(st.Forwards[id])})
		failures.Samples = append(failures.Samples, obs.Sample{Labels: l, Value: float64(st.ForwardFailures[id])})
		batchFwd.Samples = append(batchFwd.Samples, obs.Sample{Labels: l, Value: float64(st.BatchForwards[id])})
	}
	draining := float64(0)
	if st.Draining {
		draining = 1
	}
	return []obs.Family{
		gaugeFam("csm_fleet_peers", "Fleet membership size, including this replica.", float64(st.Peers)),
		gaugeFam("csm_fleet_ring_version", "Numeric fingerprint of the consistent-hash ring membership; replicas disagreeing on this value are split.", float64(s.fleet.RingVersionValue())),
		gaugeFam("csm_fleet_draining", "1 while this replica is draining (refusing newly forwarded computes).", draining),
		forwards, failures, batchFwd,
		counterFam("csm_fleet_owner_computes_total", "Forwarded requests served here as the key's owner.", st.OwnerComputes),
		counterFam("csm_fleet_local_fallbacks_total", "Computes run locally because the owner was unreachable, draining, or disagreed about ownership.", st.LocalFallbacks),
		counterFam("csm_fleet_loops_prevented_total", "Forwarded requests that would have re-forwarded but were computed locally by the loop guard.", st.LoopsPrevented),
		counterFam("csm_fleet_not_owner_total", "Forwarded computes refused with 421 not_owner (ring-version mismatch).", st.NotOwner),
		counterFam("csm_fleet_drain_refused_total", "Forwarded computes refused with 503 node_draining.", st.DrainRefused),
		counterFam("csm_fleet_invalidations_sent_total", "Ingest invalidation broadcasts acknowledged by peers.", st.InvalSent),
		counterFam("csm_fleet_invalidations_received_total", "Peer ingest invalidations applied to the local cache.", st.InvalReceived),
		counterFam("csm_fleet_batch_fanouts_total", "Batch requests partitioned across the fleet.", st.BatchFanouts),
	}
}
