package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"csmaterials/internal/engine"
	"csmaterials/internal/materials"
	"csmaterials/internal/serving"
)

// fakeCompute swaps the registered analysis's Compute for fn while
// keeping its Name/Parse (and so its routes, cache keys, and breaker),
// exercising the identical dispatch path real analyses take. This is
// the registry-level test seam: no server internals, just Replace.
type fakeCompute struct {
	engine.Analysis
	fn func(ctx context.Context, repo *materials.Repository, p engine.Params) (interface{}, error)
}

func (f fakeCompute) Compute(ctx context.Context, repo *materials.Repository, p engine.Params) (interface{}, error) {
	return f.fn(ctx, repo, p)
}

// replaceCompute installs fn as name's Compute and returns the original
// analysis (for delegating fakes).
func replaceCompute(t *testing.T, s *Server, name string,
	fn func(ctx context.Context, repo *materials.Repository, p engine.Params) (interface{}, error)) engine.Analysis {
	t.Helper()
	reg := s.Engine().Registry()
	orig, ok := reg.Get(name)
	if !ok {
		t.Fatalf("analysis %q not registered", name)
	}
	reg.Replace(fakeCompute{Analysis: orig, fn: fn})
	return orig
}

// countCompute wraps name's registered Compute with a call counter.
func countCompute(t *testing.T, s *Server, name string, calls *int32) {
	t.Helper()
	var orig engine.Analysis
	orig = replaceCompute(t, s, name, func(ctx context.Context, repo *materials.Repository, p engine.Params) (interface{}, error) {
		atomic.AddInt32(calls, 1)
		return orig.Compute(ctx, repo, p)
	})
}

// TestSingleflightCollapsesConcurrentTypes fires N parallel identical
// /api/v1/types requests at a fresh server and proves exactly one
// underlying Compute call happened: concurrent arrivals share the
// in-flight computation, later ones hit the completed cache entry.
func TestSingleflightCollapsesConcurrentTypes(t *testing.T) {
	s, ts := newTestServer(t)
	var calls int32
	countCompute(t, s, "types", &calls)

	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/api/v1/types?group=cs1&k=3")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var e env
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != 200 {
				errs <- &httpStatusError{resp.StatusCode}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("types Compute ran %d times for %d concurrent identical requests, want 1", got, n)
	}
	st := s.Cache().Stats()
	if st.Hits+st.Shared != n-1 {
		t.Fatalf("cache stats = %+v, want hits+shared = %d", st, n-1)
	}
}

type httpStatusError struct{ status int }

func (e *httpStatusError) Error() string { return http.StatusText(e.status) }

// TestCacheMetaAndMetrics walks the miss→hit transition and checks that
// /debug/metrics reports route counts, latency buckets, and cache
// accounting for it.
func TestCacheMetaAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	e := getEnvelope(t, ts, "/api/v1/types?group=cs1&k=3", 200)
	if e.Meta.Cache != "miss" || e.Meta.Key != "types|cs1|3" {
		t.Fatalf("first request meta = %+v", e.Meta)
	}
	e = getEnvelope(t, ts, "/api/v1/types?group=cs1&k=3", 200)
	if e.Meta.Cache != "hit" {
		t.Fatalf("second request meta = %+v", e.Meta)
	}

	resp, body := get(t, ts, "/debug/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var snap serving.Snapshot
	decode(t, body, &snap)
	rs, ok := snap.Routes["GET /api/v1/types"]
	if !ok {
		t.Fatalf("types route missing from metrics: %v", snap.Routes)
	}
	if rs.Count != 2 || rs.ByStatus["200"] != 2 {
		t.Fatalf("types route stats = %+v", rs)
	}
	bucketTotal := uint64(0)
	for _, n := range rs.Buckets {
		bucketTotal += n
	}
	if bucketTotal != 2 {
		t.Fatalf("latency buckets sum to %d, want 2: %+v", bucketTotal, rs.Buckets)
	}
	if rs.P99MS < rs.P50MS {
		t.Fatalf("quantiles out of order: %+v", rs)
	}
	if snap.Cache == nil || snap.Cache.Hits < 1 || snap.Cache.Misses < 1 {
		t.Fatalf("cache stats = %+v", snap.Cache)
	}
}

// TestDefaultGroupAndKSharing: group= and group=all normalize to the
// same cache key, so the second spelling is a hit.
func TestDefaultGroupAndKSharing(t *testing.T) {
	_, ts := newTestServer(t)
	e := getEnvelope(t, ts, "/api/v1/cluster?group=all&k=4", 200)
	if e.Meta.Cache != "miss" {
		t.Fatalf("first = %+v", e.Meta)
	}
	e = getEnvelope(t, ts, "/api/v1/cluster", 200)
	if e.Meta.Cache != "hit" || e.Meta.Key != "cluster|all|4" {
		t.Fatalf("normalized spelling did not share cache: %+v", e.Meta)
	}
}

// TestCacheDisabledServer: a negative cache size retains nothing but
// the API still works.
func TestCacheDisabledServer(t *testing.T) {
	s, err := NewWithOptions(Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	for i := 0; i < 2; i++ {
		e := getEnvelope(t, ts, "/api/v1/agreement?group=cs1&threshold=2", 200)
		if e.Meta.Cache != "miss" {
			t.Fatalf("request %d cache = %q, want miss", i, e.Meta.Cache)
		}
	}
	if st := s.Cache().Stats(); st.Size != 0 {
		t.Fatalf("disabled cache retained %d entries", st.Size)
	}
}
