package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"csmaterials/internal/resilience/faultinject"
)

// doKey is do with an API key attached via X-API-Key.
func doKey(t *testing.T, s *Server, method, path, body, key string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	if key != "" {
		r.Header.Set("X-API-Key", key)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

func wantErrCode(t *testing.T, w *httptest.ResponseRecorder, status int, code string) {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status %d, want %d\n%s", w.Code, status, w.Body.Bytes())
	}
	var e errEnv
	decode(t, w.Body.Bytes(), &e)
	if e.Error.Code != code {
		t.Fatalf("error code %q, want %q", e.Error.Code, code)
	}
}

// keyedServer builds a server with alice/bob tenant keys, a root admin
// key, and a pre-declared grant making "preowned" alice's dataset.
func keyedServer(t *testing.T) *Server {
	t.Helper()
	return newObsServer(t, Options{APIKeys: &KeysFile{
		Keys: []APIKey{
			{Key: "alice-secret", Name: "alice"},
			{Key: "bob-secret", Name: "bob"},
			{Key: "root-secret", Name: "root", Admin: true},
		},
		Datasets: map[string]DatasetGrant{
			"preowned": {Owner: "alice"},
		},
	}})
}

// TestIngestAuth covers the keyed mutation surface end to end:
// 401 without/with an unknown key, first-writer ownership claim,
// 403 for the wrong tenant, admin override, ownership declared in the
// keys file before any ingest, and ownership surviving DELETE so a
// deleted name cannot be taken over.
func TestIngestAuth(t *testing.T) {
	s := keyedServer(t)
	doc := corpusDoc(t, 3)

	// Reads need no key even when the keyring is configured.
	if w := do(t, s, http.MethodGet, "/api/v1/courses", ""); w.Code != 200 {
		t.Fatalf("unauthenticated read: status %d", w.Code)
	}

	// No key and unknown key are both 401 with a challenge; the body is
	// never decoded (the rejection happens before ingest starts).
	w := doKey(t, s, http.MethodPut, "/api/v1/datasets/mine", doc, "")
	wantErrCode(t, w, http.StatusUnauthorized, "unauthorized")
	if w.Header().Get("WWW-Authenticate") != "Bearer" {
		t.Fatal("401 without WWW-Authenticate challenge")
	}
	w = doKey(t, s, http.MethodPut, "/api/v1/datasets/mine", doc, "wrong")
	wantErrCode(t, w, http.StatusUnauthorized, "unauthorized")

	// The Authorization: Bearer form works too.
	r := httptest.NewRequest(http.MethodPut, "/api/v1/datasets/mine", strings.NewReader(doc))
	r.Header.Set("Authorization", "Bearer alice-secret")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, r)
	if rec.Code != 200 {
		t.Fatalf("bearer ingest: status %d\n%s", rec.Code, rec.Body.Bytes())
	}

	// First keyed writer claimed the unowned name.
	if owner := s.Datasets().Attrs("mine").Owner; owner != "alice" {
		t.Fatalf("owner after first ingest = %q, want alice", owner)
	}
	w = do(t, s, http.MethodGet, "/api/v1/datasets/mine", "")
	var ce struct {
		Data struct {
			Owner string `json:"owner"`
		} `json:"data"`
	}
	decode(t, w.Body.Bytes(), &ce)
	if ce.Data.Owner != "alice" {
		t.Fatalf("catalog owner = %q, want alice: %s", ce.Data.Owner, w.Body.Bytes())
	}

	// Another tenant can neither re-ingest nor delete alice's dataset.
	wantErrCode(t, doKey(t, s, http.MethodPut, "/api/v1/datasets/mine", doc, "bob-secret"),
		http.StatusForbidden, "forbidden")
	wantErrCode(t, doKey(t, s, http.MethodDelete, "/api/v1/datasets/mine", "", "bob-secret"),
		http.StatusForbidden, "forbidden")

	// Ownership can be declared in the keys file before any ingest:
	// bob cannot create "preowned", alice can.
	wantErrCode(t, doKey(t, s, http.MethodPut, "/api/v1/datasets/preowned", doc, "bob-secret"),
		http.StatusForbidden, "forbidden")
	if w := doKey(t, s, http.MethodPut, "/api/v1/datasets/preowned", doc, "alice-secret"); w.Code != 200 {
		t.Fatalf("owner ingest of pre-granted dataset: status %d\n%s", w.Code, w.Body.Bytes())
	}

	// Admin keys override ownership; ownership survives the delete, so
	// bob still cannot take the vacated name but alice can recreate it.
	if w := doKey(t, s, http.MethodDelete, "/api/v1/datasets/mine", "", "root-secret"); w.Code != 200 {
		t.Fatalf("admin delete: status %d\n%s", w.Code, w.Body.Bytes())
	}
	wantErrCode(t, doKey(t, s, http.MethodPut, "/api/v1/datasets/mine", doc, "bob-secret"),
		http.StatusForbidden, "forbidden")
	if w := doKey(t, s, http.MethodPut, "/api/v1/datasets/mine", doc, "alice-secret"); w.Code != 200 {
		t.Fatalf("owner re-create after delete: status %d\n%s", w.Code, w.Body.Bytes())
	}
}

// TestOpenModeKeepsLegacySurface pins the single-tenant compatibility
// contract: with no keys configured, mutations need no credentials,
// the resilience snapshot keeps its legacy shape (no "tenants" key),
// and no csm_tenant_* families appear in the Prometheus text.
func TestOpenModeKeepsLegacySurface(t *testing.T) {
	s := newObsServer(t, Options{})
	if w := do(t, s, http.MethodPut, "/api/v1/datasets/free", corpusDoc(t, 2)); w.Code != 200 {
		t.Fatalf("open-mode ingest: status %d\n%s", w.Code, w.Body.Bytes())
	}
	if w := do(t, s, http.MethodDelete, "/api/v1/datasets/free", ""); w.Code != 200 {
		t.Fatalf("open-mode delete: status %d\n%s", w.Code, w.Body.Bytes())
	}

	// Back to a single tenant: the /debug/metrics resilience section
	// must not grow a tenants map, and /metrics no tenant families.
	w := do(t, s, http.MethodGet, "/debug/metrics", "")
	if strings.Contains(w.Body.String(), `"tenants"`) {
		t.Fatalf("single-tenant /debug/metrics leaked a tenants key:\n%s", w.Body.Bytes())
	}
	w = do(t, s, http.MethodGet, "/metrics", "")
	for _, fam := range []string{"csm_tenant_", "csm_dataset_cache_"} {
		if strings.Contains(w.Body.String(), fam) {
			t.Fatalf("single-tenant /metrics exposes %s* families", fam)
		}
	}
}

// TestIdleReclamation drives the idle reaper with a fake clock: a
// dataset unqueried past the TTL loses its search index and cache
// entries (counters survive), /readyz reports it "idle", the reclaim
// is counted in csm_dataset_idle_reclaims_total, and the next query
// revives it.
func TestIdleReclamation(t *testing.T) {
	clk := newFakeClock()
	s := newObsServer(t, Options{CacheSize: 16, IdleTTL: time.Minute, clock: clk.Now})
	putDataset(t, s, "batch", 3)

	// Build the dataset's warm state: a search index and a cache entry.
	if w := do(t, s, http.MethodGet, "/api/v1/datasets/batch/search?text=recursion", ""); w.Code != 200 {
		t.Fatalf("search: status %d\n%s", w.Code, w.Body.Bytes())
	}
	var e dsEnv
	decode(t, do(t, s, http.MethodGet, "/api/v1/datasets/batch/agreement", "").Body.Bytes(), &e)
	if e.Meta.Cache != "miss" {
		t.Fatalf("prime meta = %+v", e.Meta)
	}

	// Still warm: a sweep before the TTL reclaims nothing.
	if got := s.reclaimIdle(clk.Now()); len(got) != 0 {
		t.Fatalf("premature reclaim of %v", got)
	}

	clk.Advance(time.Minute + time.Second)
	if got := s.reclaimIdle(clk.Now()); len(got) != 1 || got[0] != "batch" {
		t.Fatalf("reclaimed %v, want [batch]", got)
	}

	// The search index is gone, the cache scope is empty, but the
	// scope's counters survived — the dataset exists, it just went cold.
	s.searcherMu.Lock()
	_, hasSearcher := s.searchers["batch"]
	s.searcherMu.Unlock()
	if hasSearcher {
		t.Fatal("search index survived reclamation")
	}
	sc := s.Cache().Stats().Scopes["batch"]
	if sc.Size != 0 || sc.Misses == 0 {
		t.Fatalf("reclaimed scope stats = %+v, want empty with history", sc)
	}

	// /readyz reports the dataset idle, and the Prometheus counter
	// records the reclaim.
	datasetStatus := func() map[string]string {
		t.Helper()
		re := do(t, s, http.MethodGet, "/readyz", "")
		var e env
		decode(t, re.Body.Bytes(), &e)
		var ready struct {
			Datasets map[string]DatasetReady `json:"datasets"`
		}
		decode(t, e.Data, &ready)
		out := map[string]string{}
		for id, st := range ready.Datasets {
			out[id] = st.Status
		}
		return out
	}
	if st := datasetStatus()["batch"]; st != "idle" {
		t.Fatalf("readyz after reclaim: batch = %q, want idle", st)
	}
	pm := do(t, s, http.MethodGet, "/metrics", "")
	if !strings.Contains(pm.Body.String(), `csm_dataset_idle_reclaims_total{dataset="batch"} 1`) {
		t.Fatal("/metrics missing the idle reclaim counter")
	}

	// A sweep right after reclaiming does not double-count.
	if got := s.reclaimIdle(clk.Now()); len(got) != 0 {
		t.Fatalf("idle dataset reclaimed twice: %v", got)
	}

	// The next query revives the dataset: recomputed (miss), "ready".
	decode(t, do(t, s, http.MethodGet, "/api/v1/datasets/batch/agreement", "").Body.Bytes(), &e)
	if e.Meta.Cache != "miss" {
		t.Fatalf("post-reclaim meta = %+v, want a recompute", e.Meta)
	}
	if st := datasetStatus()["batch"]; st != "ready" {
		t.Fatalf("readyz after revival: batch = %q, want ready", st)
	}

	// The default dataset is exempt however long it idles.
	do(t, s, http.MethodGet, "/api/v1/agreement", "")
	clk.Advance(time.Hour)
	for _, id := range s.reclaimIdle(clk.Now()) {
		if id == "default" {
			t.Fatal("default dataset reclaimed")
		}
	}

	// A dataset the server has never seen queried (data-dir loads)
	// starts its idle clock at first sighting, not at zero.
	putDataset(t, s, "stale2", 2)
	s.idleMu.Lock()
	delete(s.lastAccess, "stale2") // simulate a startup load, never queried
	s.idleMu.Unlock()
	if got := s.reclaimIdle(clk.Now()); len(got) != 0 {
		t.Fatalf("first sighting must only start the clock, reclaimed %v", got)
	}
	clk.Advance(time.Minute + time.Second)
	got := s.reclaimIdle(clk.Now())
	if len(got) != 1 || got[0] != "stale2" {
		t.Fatalf("second sweep reclaimed %v, want [stale2]", got)
	}
}

// TestMetricsDropDeletedDataset is the counter-hygiene check: after a
// dataset is deleted, no per-dataset family (cache, tenant, registry,
// idle) still reports it, and csm_datasets matches the catalog.
func TestMetricsDropDeletedDataset(t *testing.T) {
	s := newObsServer(t, Options{CacheSize: 12, MaxInFlight: 8})
	putDataset(t, s, "doomed", 3)
	putDataset(t, s, "keeper", 2)

	// Generate per-dataset cache and tenant samples for both.
	for _, ds := range []string{"doomed", "keeper"} {
		if w := do(t, s, http.MethodGet, "/api/v1/datasets/"+ds+"/agreement", ""); w.Code != 200 {
			t.Fatalf("query %s: status %d", ds, w.Code)
		}
	}
	body := do(t, s, http.MethodGet, "/metrics", "").Body.String()
	for _, fam := range []string{"csm_dataset_cache_size", "csm_tenant_quota", "csm_dataset_revision"} {
		if !strings.Contains(body, fam+`{dataset="doomed"}`) {
			t.Fatalf("pre-delete /metrics missing %s for doomed:\n%s", fam, body)
		}
	}

	if w := do(t, s, http.MethodDelete, "/api/v1/datasets/doomed", ""); w.Code != 200 {
		t.Fatalf("delete: status %d\n%s", w.Code, w.Body.Bytes())
	}

	body = do(t, s, http.MethodGet, "/metrics", "").Body.String()
	if strings.Contains(body, `dataset="doomed"`) {
		for _, line := range strings.Split(body, "\n") {
			if strings.Contains(line, "doomed") {
				t.Errorf("stale sample after delete: %s", line)
			}
		}
		t.FailNow()
	}
	want := fmt.Sprintf("csm_datasets %d", len(s.Datasets().IDs()))
	if !strings.Contains(body, want) {
		t.Fatalf("/metrics missing %q after delete", want)
	}
	// The survivors still report.
	if !strings.Contains(body, `csm_dataset_cache_size{dataset="keeper"}`) {
		t.Fatal("keeper's samples vanished with doomed's")
	}
}

// TestNoisyNeighborChaos is the isolation proof from the issue: tenant
// "noisy" floods at 4x its admission quota while every one of its
// in-flight requests is held open by the fault injector. Tenant
// "quiet", already warm, must keep a >=95% hit rate with zero 429s and
// zero evictions of its entries — and afterwards, noisy's cold fill
// and re-ingest churn must stay inside noisy's own cache partition.
func TestNoisyNeighborChaos(t *testing.T) {
	inj := faultinject.New(7)
	s := newObsServer(t, Options{CacheSize: 12, MaxInFlight: 24, Faults: inj})
	putDataset(t, s, "noisy", 3)
	putDataset(t, s, "quiet", 3)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Three tenants (default, noisy, quiet): fair shares are 8 in-flight
	// slots and 4 cache entries each.
	if q := s.limiter.Quota("noisy"); q != 8 {
		t.Fatalf("noisy quota = %d, want 8", q)
	}
	if b := s.Cache().ScopeBudget("quiet"); b != 4 {
		t.Fatalf("quiet cache budget = %d, want 4", b)
	}

	// Warm quiet's working set: two agreement thresholds.
	for _, th := range []int{1, 2} {
		e := getEnvelope(t, ts, fmt.Sprintf("/api/v1/datasets/quiet/agreement?threshold=%d", th), 200)
		if e.Meta.Cache != "miss" {
			t.Fatalf("warm threshold %d meta = %+v", th, e.Meta)
		}
	}

	// Every admitted noisy request now blocks on the hold channel. The
	// trailing slash keeps PUT /api/v1/datasets/noisy out of the rule.
	hold := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(hold)
		}
	}()
	inj.SetRules(faultinject.Rule{Match: "/api/v1/datasets/noisy/", Probability: 1, Hold: hold})

	// Flood: 32 concurrent requests, 4x noisy's quota of 8.
	const flood = 32
	type floodResult struct {
		status     int
		code       string
		retryAfter string
	}
	results := make(chan floodResult, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/api/v1/datasets/noisy/agreement?threshold=2")
			if err != nil {
				results <- floodResult{status: -1}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			fr := floodResult{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
			if resp.StatusCode != 200 {
				var e errEnv
				decode(t, body, &e)
				fr.code = e.Error.Code
			}
			results <- fr
		}()
	}

	// The flood settles: quota admitted-and-held, the rest shed as
	// quota rejections even though the global cap has 16 free slots.
	waitFor(t, "noisy at quota with the overflow shed", func() bool {
		_, tenants := s.limiter.Stats()
		n := tenants["noisy"]
		return n.InFlight == 8 && n.ShedQuota == flood-8
	})

	// Tenant isolation under fire: quiet's warm working set answers
	// every request from cache, with no shedding.
	hits := 0
	for i := 0; i < 50; i++ {
		resp, body := get(t, ts, fmt.Sprintf("/api/v1/datasets/quiet/agreement?threshold=%d", i%2+1))
		if resp.StatusCode != 200 {
			t.Fatalf("quiet request %d: status %d during flood\n%s", i, resp.StatusCode, body)
		}
		var e dsEnv
		decode(t, body, &e)
		if e.Meta.Cache == "hit" {
			hits++
		}
	}
	if hits < 48 { // >= 95% of 50
		t.Fatalf("quiet hit rate %d/50 during flood, want >= 48", hits)
	}
	_, tenants := s.limiter.Stats()
	if q := tenants["quiet"]; q.Shed != 0 {
		t.Fatalf("quiet was shed during noisy's flood: %+v", q)
	}
	if sc := s.Cache().Stats().Scopes["quiet"]; sc.Evictions != 0 || sc.Size != 2 {
		t.Fatalf("quiet scope disturbed by flood: %+v", sc)
	}

	// Release the held requests and account for the whole flood: 8
	// admitted 200s (collapsed by singleflight), 24 tenant_quota 429s
	// carrying Retry-After.
	released = true
	close(hold)
	wg.Wait()
	close(results)
	var ok200, shed429 int
	for fr := range results {
		switch fr.status {
		case 200:
			ok200++
		case http.StatusTooManyRequests:
			shed429++
			if fr.code != "tenant_quota" {
				t.Fatalf("shed error code = %q, want tenant_quota", fr.code)
			}
			if fr.retryAfter == "" {
				t.Fatal("tenant_quota 429 without Retry-After")
			}
		default:
			t.Fatalf("flood request finished with %d", fr.status)
		}
	}
	if ok200 != 8 || shed429 != flood-8 {
		t.Fatalf("flood outcome = %d admitted / %d shed, want 8 / %d", ok200, shed429, flood-8)
	}

	// Noisy's cold fill stays inside its own partition: ten distinct
	// keys evict only noisy's entries, never quiet's.
	inj.SetRules()
	for th := 10; th < 20; th++ {
		getEnvelope(t, ts, fmt.Sprintf("/api/v1/datasets/noisy/agreement?threshold=%d", th), 200)
	}
	scopes := s.Cache().Stats().Scopes
	if n := scopes["noisy"]; n.Size > 4 || n.Evictions == 0 {
		t.Fatalf("noisy scope after cold fill = %+v, want <= budget with evictions", n)
	}
	if q := scopes["quiet"]; q.Evictions != 0 || q.Size != 2 {
		t.Fatalf("quiet scope after noisy cold fill = %+v", q)
	}

	// Re-ingest churn on noisy invalidates only noisy's entries; quiet
	// is still warm.
	putDataset(t, s, "noisy", 2)
	if n := s.Cache().Stats().Scopes["noisy"]; n.Size != 0 {
		t.Fatalf("noisy scope after re-ingest = %+v, want empty", n)
	}
	e := getEnvelope(t, ts, "/api/v1/datasets/quiet/agreement?threshold=1", 200)
	if e.Meta.Cache != "hit" {
		t.Fatalf("quiet went cold after noisy's re-ingest: %+v", e.Meta)
	}
}
