package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/engine"
)

// corpusDoc serializes the first n seed courses as an ingestable
// dataset document ({"courses": [...]}). Marshalling round-trips the
// courses, so the registry builds fresh objects — the seed corpus is
// never aliased.
func corpusDoc(t *testing.T, n int) string {
	t.Helper()
	doc := dataset.Document{Courses: dataset.Courses()[:n]}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// dsEnv decodes an envelope whose meta carries dataset identity.
type dsEnv struct {
	Data json.RawMessage `json:"data"`
	Meta struct {
		Cache    string `json:"cache"`
		Key      string `json:"key"`
		Stale    bool   `json:"stale"`
		Dataset  string `json:"dataset"`
		Revision uint64 `json:"revision"`
	} `json:"meta"`
}

func putDataset(t *testing.T, s *Server, id string, n int) dsEnv {
	t.Helper()
	w := do(t, s, http.MethodPut, "/api/v1/datasets/"+id, corpusDoc(t, n))
	if w.Code != http.StatusOK {
		t.Fatalf("PUT dataset %s: status %d\n%s", id, w.Code, w.Body.Bytes())
	}
	var e dsEnv
	decode(t, w.Body.Bytes(), &e)
	return e
}

// agreementCourses fetches an agreement endpoint and returns the
// envelope plus the analysis's course roster length — the simplest
// corpus fingerprint.
func agreementCourses(t *testing.T, s *Server, path string) (dsEnv, int) {
	t.Helper()
	w := do(t, s, http.MethodGet, path, "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", path, w.Code, w.Body.Bytes())
	}
	var e dsEnv
	decode(t, w.Body.Bytes(), &e)
	var data struct {
		Courses []string `json:"courses"`
	}
	decode(t, e.Data, &data)
	return e, len(data.Courses)
}

// TestDatasetCatalog covers GET /api/v1/datasets and
// GET /api/v1/datasets/{id}: the default dataset is always first, PUT
// extends the catalog, and metadata carries revision and corpus size.
func TestDatasetCatalog(t *testing.T) {
	s := newObsServer(t, Options{})

	w := do(t, s, http.MethodGet, "/api/v1/datasets", "")
	if w.Code != http.StatusOK {
		t.Fatalf("catalog: status %d\n%s", w.Code, w.Body.Bytes())
	}
	var list env
	decode(t, w.Body.Bytes(), &list)
	var metas []dataset.Meta
	decode(t, list.Data, &metas)
	if len(metas) != 1 || metas[0].ID != "default" || metas[0].Revision != 1 || metas[0].Courses != 20 {
		t.Fatalf("initial catalog = %+v", metas)
	}
	if list.Meta.Total != 1 || list.Meta.Limit != 20 {
		t.Errorf("catalog meta = %+v", list.Meta)
	}

	putDataset(t, s, "alt", 3)
	w = do(t, s, http.MethodGet, "/api/v1/datasets", "")
	decode(t, w.Body.Bytes(), &list)
	metas = nil
	decode(t, list.Data, &metas)
	if len(metas) != 2 || metas[1].ID != "alt" || metas[1].Courses != 3 {
		t.Fatalf("catalog after ingest = %+v", metas)
	}

	w = do(t, s, http.MethodGet, "/api/v1/datasets/alt", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET dataset meta: status %d", w.Code)
	}
	var one env
	decode(t, w.Body.Bytes(), &one)
	var m dataset.Meta
	decode(t, one.Data, &m)
	if m.ID != "alt" || m.Revision != 1 || m.Courses != 3 || m.Materials == 0 {
		t.Errorf("dataset meta = %+v", m)
	}

	for path, wantCode := range map[string]struct {
		status int
		code   string
	}{
		"/api/v1/datasets/ghost":           {http.StatusNotFound, "not_found"},
		"/api/v1/datasets/Bad%7C":          {http.StatusBadRequest, "bad_request"},
		"/api/v1/datasets/UPPER":           {http.StatusBadRequest, "bad_request"},
		"/api/v1/datasets/ghost/agreement": {http.StatusNotFound, "not_found"},
	} {
		w := do(t, s, http.MethodGet, path, "")
		if w.Code != wantCode.status {
			t.Errorf("GET %s: status %d, want %d", path, w.Code, wantCode.status)
			continue
		}
		var ee errEnv
		decode(t, w.Body.Bytes(), &ee)
		if ee.Error.Code != wantCode.code {
			t.Errorf("GET %s: code %q, want %q", path, ee.Error.Code, wantCode.code)
		}
	}
}

// TestDatasetIngestAnalyzeReingest is the lifecycle walk the API
// redesign exists for: ingest a dataset, analyze it (cold then warm),
// re-ingest a different corpus, and verify the revision bump precisely
// invalidated the dataset's cache — while the default dataset's cache
// stays warm throughout.
func TestDatasetIngestAnalyzeReingest(t *testing.T) {
	s := newObsServer(t, Options{})

	// Warm the default dataset's agreement entry and capture the warm
	// envelope bytes for the byte-identity check at the end.
	do(t, s, http.MethodGet, "/api/v1/agreement", "")
	legacyBefore := do(t, s, http.MethodGet, "/api/v1/agreement", "")
	var legacyEnv env
	decode(t, legacyBefore.Body.Bytes(), &legacyEnv)
	if legacyEnv.Meta.Cache != "hit" {
		t.Fatalf("warm legacy request = %q, want hit", legacyEnv.Meta.Cache)
	}

	// Ingest revision 1 (3 courses) and analyze it.
	ing := putDataset(t, s, "alt", 3)
	var meta1 dataset.Meta
	decode(t, ing.Data, &meta1)
	if meta1.Revision != 1 {
		t.Fatalf("first ingest revision = %d", meta1.Revision)
	}
	e, n := agreementCourses(t, s, "/api/v1/datasets/alt/agreement")
	if e.Meta.Cache != "miss" || e.Meta.Dataset != "alt" || e.Meta.Revision != 1 || n != 3 {
		t.Fatalf("cold scoped analyze = %+v over %d courses", e.Meta, n)
	}
	e, _ = agreementCourses(t, s, "/api/v1/datasets/alt/agreement")
	if e.Meta.Cache != "hit" {
		t.Fatalf("warm scoped analyze = %q, want hit", e.Meta.Cache)
	}

	// Re-ingest with a different corpus: revision 2, cache invalidated.
	w := do(t, s, http.MethodPut, "/api/v1/datasets/alt", corpusDoc(t, 2))
	if w.Code != http.StatusOK {
		t.Fatalf("re-ingest: status %d\n%s", w.Code, w.Body.Bytes())
	}
	var re struct {
		Data dataset.Meta `json:"data"`
		Meta IngestMeta   `json:"meta"`
	}
	decode(t, w.Body.Bytes(), &re)
	if re.Data.Revision != 2 || re.Data.Courses != 2 {
		t.Fatalf("re-ingest meta = %+v", re.Data)
	}
	if re.Meta.Invalidated == 0 {
		t.Error("re-ingest must report invalidated cache entries")
	}
	e, n = agreementCourses(t, s, "/api/v1/datasets/alt/agreement")
	if e.Meta.Cache != "miss" || e.Meta.Revision != 2 || n != 2 {
		t.Fatalf("post-reingest analyze = %+v over %d courses, want rev-2 miss over 2", e.Meta, n)
	}

	// The default dataset never noticed: same bytes, still a cache hit.
	legacyAfter := do(t, s, http.MethodGet, "/api/v1/agreement", "")
	if legacyAfter.Body.String() != legacyBefore.Body.String() {
		t.Errorf("legacy envelope changed across another dataset's ingest:\nbefore %s\nafter  %s",
			legacyBefore.Body.String(), legacyAfter.Body.String())
	}
}

// TestScopedMetaShape pins the envelope contract: scoped responses
// carry dataset identity in meta, un-scoped aliases keep the exact
// pre-datasets meta keys (no dataset leakage).
func TestScopedMetaShape(t *testing.T) {
	s := newObsServer(t, Options{})

	var raw struct {
		Meta map[string]json.RawMessage `json:"meta"`
	}
	w := do(t, s, http.MethodGet, "/api/v1/datasets/default/cluster", "")
	decode(t, w.Body.Bytes(), &raw)
	for _, key := range []string{"cache", "key", "dataset", "revision"} {
		if _, ok := raw.Meta[key]; !ok {
			t.Errorf("scoped meta missing %q: %s", key, w.Body.Bytes())
		}
	}

	w = do(t, s, http.MethodGet, "/api/v1/cluster", "")
	raw.Meta = nil
	decode(t, w.Body.Bytes(), &raw)
	if _, ok := raw.Meta["dataset"]; ok {
		t.Errorf("un-scoped meta must not carry dataset: %s", w.Body.Bytes())
	}
	if _, ok := raw.Meta["cache"]; !ok {
		t.Errorf("un-scoped meta missing cache: %s", w.Body.Bytes())
	}
}

// TestScopedQueryRoutes covers the non-analysis scoped families:
// courses, course detail, course views, search, and figures resolve
// against the scoped dataset's corpus.
func TestScopedQueryRoutes(t *testing.T) {
	s := newObsServer(t, Options{})
	putDataset(t, s, "alt", 2)

	w := do(t, s, http.MethodGet, "/api/v1/datasets/alt/courses", "")
	var list env
	decode(t, w.Body.Bytes(), &list)
	if list.Meta.Total != 2 {
		t.Errorf("scoped courses total = %d, want 2", list.Meta.Total)
	}

	// A course present in the scoped corpus, fetched scoped and via a view.
	var summaries []CourseSummary
	decode(t, list.Data, &summaries)
	id := summaries[0].ID
	if w := do(t, s, http.MethodGet, "/api/v1/datasets/alt/courses/"+id, ""); w.Code != http.StatusOK {
		t.Errorf("scoped course detail: status %d", w.Code)
	}
	if w := do(t, s, http.MethodGet, "/api/v1/datasets/alt/courses/"+id+"/materials", ""); w.Code != http.StatusOK {
		t.Errorf("scoped course materials: status %d", w.Code)
	}

	// A course outside the 2-course corpus 404s scoped, 200s un-scoped.
	outside := dataset.AllCourseIDs()[10]
	if w := do(t, s, http.MethodGet, "/api/v1/datasets/alt/courses/"+outside, ""); w.Code != http.StatusNotFound {
		t.Errorf("out-of-corpus course: status %d, want 404", w.Code)
	}
	if w := do(t, s, http.MethodGet, "/api/v1/courses/"+outside, ""); w.Code != http.StatusOK {
		t.Errorf("default course: status %d, want 200", w.Code)
	}

	// Scoped search ranks only the scoped corpus.
	wAlt := do(t, s, http.MethodGet, "/api/v1/datasets/alt/search?prefix=AL", "")
	wDef := do(t, s, http.MethodGet, "/api/v1/search?prefix=AL", "")
	var altHits, defHits env
	decode(t, wAlt.Body.Bytes(), &altHits)
	decode(t, wDef.Body.Bytes(), &defHits)
	if altHits.Meta.Total >= defHits.Meta.Total {
		t.Errorf("scoped search total %d, want fewer than default's %d", altHits.Meta.Total, defHits.Meta.Total)
	}

	// Scoped figures carry dataset meta too.
	w = do(t, s, http.MethodGet, "/api/v1/datasets/alt/figures/3a", "")
	if w.Code != http.StatusOK {
		t.Fatalf("scoped figure: status %d\n%s", w.Code, w.Body.Bytes())
	}
	var fe dsEnv
	decode(t, w.Body.Bytes(), &fe)
	if fe.Meta.Dataset != "alt" {
		t.Errorf("scoped figure meta dataset = %q", fe.Meta.Dataset)
	}
}

// TestDatasetDelete covers the delete taxonomy: default is protected
// (409 dataset_protected), unknown is 404, and a real delete removes
// the dataset from every surface.
func TestDatasetDelete(t *testing.T) {
	s := newObsServer(t, Options{})

	w := do(t, s, http.MethodDelete, "/api/v1/datasets/default", "")
	if w.Code != http.StatusConflict {
		t.Fatalf("DELETE default: status %d, want 409", w.Code)
	}
	var ee errEnv
	decode(t, w.Body.Bytes(), &ee)
	if ee.Error.Code != "dataset_protected" {
		t.Errorf("DELETE default code = %q, want dataset_protected", ee.Error.Code)
	}

	if w := do(t, s, http.MethodDelete, "/api/v1/datasets/ghost", ""); w.Code != http.StatusNotFound {
		t.Errorf("DELETE ghost: status %d, want 404", w.Code)
	}

	putDataset(t, s, "alt", 2)
	agreementCourses(t, s, "/api/v1/datasets/alt/agreement") // populate its cache
	w = do(t, s, http.MethodDelete, "/api/v1/datasets/alt", "")
	if w.Code != http.StatusOK {
		t.Fatalf("DELETE alt: status %d\n%s", w.Code, w.Body.Bytes())
	}
	var del struct {
		Data DatasetDeleted `json:"data"`
	}
	decode(t, w.Body.Bytes(), &del)
	if del.Data.ID != "alt" || del.Data.Invalidated == 0 {
		t.Errorf("delete payload = %+v, want invalidated entries reported", del.Data)
	}
	if w := do(t, s, http.MethodGet, "/api/v1/datasets/alt/agreement", ""); w.Code != http.StatusNotFound {
		t.Errorf("deleted dataset still analyzable: status %d", w.Code)
	}
	// Method probing on the dataset routes advertises the full set.
	w = do(t, s, http.MethodPost, "/api/v1/datasets/alt", "")
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST dataset: status %d, want 405", w.Code)
	}
	if allow := w.Header().Get("Allow"); !strings.Contains(allow, "PUT") || !strings.Contains(allow, "DELETE") {
		t.Errorf("Allow = %q, want PUT and DELETE advertised", allow)
	}
}

// TestBatchDatasetItems: batch items select datasets independently;
// malformed and unknown dataset IDs fail per-item without aborting the
// batch, and legacy items keep their exact envelope shape.
func TestBatchDatasetItems(t *testing.T) {
	s := newObsServer(t, Options{})
	putDataset(t, s, "alt", 3)

	body := `{"items":[
		{"analysis":"agreement"},
		{"analysis":"agreement","dataset":"alt"},
		{"analysis":"agreement","dataset":"No|Good"},
		{"analysis":"agreement","dataset":"ghost"}
	]}`
	w := do(t, s, http.MethodPost, "/api/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: status %d\n%s", w.Code, w.Body.Bytes())
	}
	var resp struct {
		Data []engine.BatchResult `json:"data"`
	}
	decode(t, w.Body.Bytes(), &resp)
	if len(resp.Data) != 4 {
		t.Fatalf("batch results = %d, want 4", len(resp.Data))
	}
	if r := resp.Data[0]; r.Error != nil || r.Dataset != "" {
		t.Errorf("legacy item = %+v, want success with no dataset echo", r)
	}
	if r := resp.Data[1]; r.Error != nil || r.Dataset != "alt" {
		t.Errorf("scoped item = %+v, want success echoing alt", r)
	}
	if r := resp.Data[2]; r.Error == nil || r.Error.Status != http.StatusBadRequest {
		t.Errorf("malformed dataset item = %+v, want per-item 400", r)
	}
	if r := resp.Data[3]; r.Error == nil || r.Error.Status != http.StatusNotFound {
		t.Errorf("unknown dataset item = %+v, want per-item 404", r)
	}
}

// TestMetricsDatasetIsolation is the acceptance walk: ingest a second
// dataset, run scoped and un-scoped requests, and verify /metrics
// separates the two datasets' serving stats under the dataset label.
func TestMetricsDatasetIsolation(t *testing.T) {
	s := newObsServer(t, Options{})
	putDataset(t, s, "alt", 3)

	do(t, s, http.MethodGet, "/api/v1/agreement", "")
	do(t, s, http.MethodGet, "/api/v1/datasets/alt/agreement", "")
	do(t, s, http.MethodGet, "/api/v1/datasets/alt/agreement", "")

	text := do(t, s, http.MethodGet, "/metrics", "").Body.String()
	for _, series := range []string{
		`csm_analysis_computes_total{analysis="agreement",dataset="default"} 1`,
		`csm_analysis_computes_total{analysis="agreement",dataset="alt"} 1`,
		`csm_analysis_cache_hits_total{analysis="agreement",dataset="alt"} 1`,
		`csm_breaker_state{analysis="agreement",dataset="alt"} 0`,
		`csm_breaker_state{analysis="agreement",dataset="default"} 0`,
		`csm_datasets 2`,
		`csm_dataset_revision{dataset="alt"} 1`,
		`csm_dataset_revision{dataset="default"} 1`,
		`csm_dataset_courses{dataset="alt"} 3`,
		`csm_stage_duration_seconds_count{analysis="agreement",dataset="alt",stage="compute"}`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %q", series)
		}
	}
}

// TestConcurrentIngestNoTornReads hammers a dataset with concurrent
// re-ingests while readers analyze it. Every response must reflect
// exactly one revision's corpus — the 3-course or the 2-course one,
// never a blend — because computes hold an immutable snapshot and
// store under revision-scoped keys.
func TestConcurrentIngestNoTornReads(t *testing.T) {
	s := newObsServer(t, Options{})
	putDataset(t, s, "alt", 3)

	const readers, writes = 4, 6
	var wg sync.WaitGroup
	errs := make(chan string, readers*64)
	stop := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := do(t, s, http.MethodGet, "/api/v1/datasets/alt/agreement", "")
				if w.Code != http.StatusOK {
					errs <- fmt.Sprintf("reader status %d: %s", w.Code, w.Body.Bytes())
					return
				}
				var e dsEnv
				if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
					errs <- err.Error()
					return
				}
				var data struct {
					Courses []string `json:"courses"`
				}
				if err := json.Unmarshal(e.Data, &data); err != nil {
					errs <- err.Error()
					return
				}
				n := len(data.Courses)
				if n != 2 && n != 3 {
					errs <- fmt.Sprintf("torn read: %d courses (rev %d)", n, e.Meta.Revision)
					return
				}
			}
		}()
	}
	for i := 0; i < writes; i++ {
		n := 2 + i%2 // alternate 2- and 3-course corpora
		w := do(t, s, http.MethodPut, "/api/v1/datasets/alt", corpusDoc(t, n))
		if w.Code != http.StatusOK {
			t.Errorf("ingest %d: status %d", i, w.Code)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}

	// Sequential epilogue: the final revision serves its own corpus cold
	// (every earlier revision's entries were invalidated or unreachable).
	e, n := agreementCourses(t, s, "/api/v1/datasets/alt/agreement")
	if e.Meta.Revision != writes+1 {
		t.Errorf("final revision = %d, want %d", e.Meta.Revision, writes+1)
	}
	wantCourses := 2 + (writes-1)%2
	if n != wantCourses {
		t.Errorf("final corpus = %d courses, want %d", n, wantCourses)
	}
}

// TestDataDirOption: Options.DataDir registers *.json documents at
// startup and they serve scoped immediately; a broken directory fails
// construction instead of serving partially.
func TestDataDirOption(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "boot.json"), []byte(corpusDoc(t, 2)), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newObsServer(t, Options{DataDir: dir})
	e, n := agreementCourses(t, s, "/api/v1/datasets/boot/agreement")
	if e.Meta.Dataset != "boot" || n != 2 {
		t.Fatalf("data-dir dataset analyze = %+v over %d courses", e.Meta, n)
	}

	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWithOptions(Options{DataDir: dir, disableWarmup: true}); err == nil {
		t.Error("broken data-dir must fail construction")
	}
}

// TestReadyzDatasets: /readyz reports per-dataset warmup state — the
// default gates overall readiness, ingested datasets report their own.
func TestReadyzDatasets(t *testing.T) {
	s := newObsServer(t, Options{})

	w := do(t, s, http.MethodGet, "/readyz", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-warmup readyz: status %d", w.Code)
	}
	var ready struct {
		Data ReadyResponse `json:"data"`
	}
	decode(t, w.Body.Bytes(), &ready)
	if ready.Data.Datasets["default"].Status != "starting" {
		t.Errorf("pre-warmup default state = %+v", ready.Data.Datasets)
	}

	s.warmup(context.Background())
	w = do(t, s, http.MethodGet, "/readyz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("post-warmup readyz: status %d\n%s", w.Code, w.Body.Bytes())
	}
	decode(t, w.Body.Bytes(), &ready)
	if ready.Data.Datasets["default"].Status != "ready" {
		t.Errorf("post-warmup default state = %+v", ready.Data.Datasets)
	}

	putDataset(t, s, "alt", 2)
	w = do(t, s, http.MethodGet, "/readyz", "")
	decode(t, w.Body.Bytes(), &ready)
	// disableWarmup servers mark ingests ready synchronously.
	if ready.Data.Datasets["alt"].Status != "ready" {
		t.Errorf("ingested dataset state = %+v", ready.Data.Datasets)
	}
}
