package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"csmaterials/internal/engine"
	"csmaterials/internal/materials"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// env is the generic decoded v1 envelope.
type env struct {
	Data json.RawMessage `json:"data"`
	Meta struct {
		Total  int    `json:"total"`
		Limit  int    `json:"limit"`
		Offset int    `json:"offset"`
		Cache  string `json:"cache"`
		Key    string `json:"key"`
		Stale  bool   `json:"stale"`
	} `json:"meta"`
}

type errEnv struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func decode(t *testing.T, data []byte, v interface{}) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
}

// getEnvelope fetches path and decodes the success envelope, failing on
// anything but wantStatus.
func getEnvelope(t *testing.T, ts *httptest.Server, path string, wantStatus int) env {
	t.Helper()
	resp, body := get(t, ts, path)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d\n%s", path, resp.StatusCode, wantStatus, body)
	}
	var e env
	decode(t, body, &e)
	if e.Data == nil {
		t.Fatalf("GET %s: no data field in envelope\n%s", path, body)
	}
	return e
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	e := getEnvelope(t, ts, "/healthz", 200)
	var out struct {
		Status    string `json:"status"`
		Courses   int    `json:"courses"`
		Materials int    `json:"materials"`
	}
	decode(t, e.Data, &out)
	if out.Status != "ok" || out.Courses != 20 || out.Materials < 400 {
		t.Fatalf("health = %+v", out)
	}
}

func TestListCoursesPagination(t *testing.T) {
	_, ts := newTestServer(t)
	e := getEnvelope(t, ts, "/api/v1/courses", 200)
	var out []struct {
		ID    string `json:"id"`
		Group string `json:"group"`
		Tags  int    `json:"tags"`
	}
	decode(t, e.Data, &out)
	if len(out) != 20 || e.Meta.Total != 20 || e.Meta.Limit != 20 || e.Meta.Offset != 0 {
		t.Fatalf("%d courses, meta = %+v", len(out), e.Meta)
	}
	if out[0].ID != "uncc-2214-krs" || out[0].Tags == 0 {
		t.Fatalf("first course = %+v", out[0])
	}

	// Pagination edges: a window, the tail, and past-the-end.
	e = getEnvelope(t, ts, "/api/v1/courses?limit=5&offset=18", 200)
	decode(t, e.Data, &out)
	if len(out) != 2 || e.Meta.Total != 20 || e.Meta.Limit != 5 || e.Meta.Offset != 18 {
		t.Fatalf("tail page: %d courses, meta = %+v", len(out), e.Meta)
	}
	e = getEnvelope(t, ts, "/api/v1/courses?limit=5&offset=100", 200)
	if string(e.Data) != "[]" {
		t.Fatalf("past-the-end page data = %s, want []", e.Data)
	}
	first := getEnvelope(t, ts, "/api/v1/courses?limit=1", 200)
	second := getEnvelope(t, ts, "/api/v1/courses?limit=1&offset=1", 200)
	if string(first.Data) == string(second.Data) {
		t.Fatal("offset=1 returned the same course as offset=0")
	}
}

// TestBadQueryParams: malformed limit/offset/k/threshold are 400s with
// the error envelope, not silently defaulted.
func TestBadQueryParams(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, path string
	}{
		{"courses bad limit", "/api/v1/courses?limit=banana"},
		{"courses zero limit", "/api/v1/courses?limit=0"},
		{"courses negative offset", "/api/v1/courses?offset=-1"},
		{"courses float limit", "/api/v1/courses?limit=1.5"},
		{"search bad limit", "/api/v1/search?prefix=AL/&limit=nope"},
		{"search bad offset", "/api/v1/search?prefix=AL/&offset=x"},
		{"types bad k", "/api/v1/types?group=cs1&k=banana"},
		{"types zero k", "/api/v1/types?group=cs1&k=0"},
		{"agreement bad threshold", "/api/v1/agreement?group=cs1&threshold=banana"},
		{"agreement zero threshold", "/api/v1/agreement?group=cs1&threshold=0"},
		{"cluster zero k", "/api/v1/cluster?group=all&k=0"},
		{"pdcmaterials bad limit", "/api/v1/courses/vcu-cmsc256-duke/pdcmaterials?limit=-3"},
		{"types bad group", "/api/v1/types?group=bogus"},
		{"agreement bad group", "/api/v1/agreement?group=bogus"},
		{"cluster bad group", "/api/v1/cluster?group=bogus"},
		{"search empty query", "/api/v1/search"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := get(t, ts, tc.path)
			if resp.StatusCode != 400 {
				t.Fatalf("status %d, want 400\n%s", resp.StatusCode, body)
			}
			var e errEnv
			decode(t, body, &e)
			if e.Error.Code != "bad_request" || e.Error.Message == "" {
				t.Fatalf("error envelope = %+v", e)
			}
		})
	}
}

func TestCourseDetailAndViews(t *testing.T) {
	_, ts := newTestServer(t)
	e := getEnvelope(t, ts, "/api/v1/courses/vcu-cmsc256-duke", 200)
	var detail struct {
		Course struct {
			ID string `json:"id"`
		} `json:"course"`
		Tags []string `json:"tags"`
	}
	decode(t, e.Data, &detail)
	if detail.Course.ID != "vcu-cmsc256-duke" || len(detail.Tags) < 50 {
		t.Fatalf("detail = %+v (%d tags)", detail.Course, len(detail.Tags))
	}

	e = getEnvelope(t, ts, "/api/v1/courses/vcu-cmsc256-duke/anchors", 200)
	var recs []struct {
		Rule  string  `json:"rule"`
		Score float64 `json:"score"`
	}
	decode(t, e.Data, &recs)
	found := false
	for _, r := range recs {
		if r.Rule == "thread-safe-types" {
			found = true
		}
	}
	if !found {
		t.Fatalf("thread-safe-types not in VCU anchors: %+v", recs)
	}

	e = getEnvelope(t, ts, "/api/v1/courses/vcu-cmsc256-duke/audit", 200)
	var aud struct {
		Core1 float64 `json:"core1_coverage"`
		Units []struct {
			Unit string `json:"unit"`
		} `json:"units"`
	}
	decode(t, e.Data, &aud)
	if aud.Core1 <= 0 || len(aud.Units) == 0 {
		t.Fatalf("audit = %+v", aud)
	}

	e = getEnvelope(t, ts, "/api/v1/courses/vcu-cmsc256-duke/pdcmaterials?limit=3", 200)
	var pdcm []struct {
		ID string `json:"id"`
	}
	decode(t, e.Data, &pdcm)
	if len(pdcm) == 0 || len(pdcm) > 3 {
		t.Fatalf("pdcmaterials = %d entries", len(pdcm))
	}

	e = getEnvelope(t, ts, "/api/v1/courses/vcu-cmsc256-duke/materials", 200)
	var ms []struct {
		ID string `json:"id"`
	}
	decode(t, e.Data, &ms)
	if len(ms) < 10 || e.Meta.Total != len(ms) {
		t.Fatalf("materials = %d, meta = %+v", len(ms), e.Meta)
	}
}

func TestNotFoundJSON(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, path string
	}{
		{"unknown course", "/api/v1/courses/ghost"},
		{"unknown view", "/api/v1/courses/vcu-cmsc256-duke/bogus"},
		{"unknown figure", "/api/v1/figures/99"},
		{"unknown endpoint", "/api/v1/bogus"},
		{"unregistered path", "/nope"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := get(t, ts, tc.path)
			if resp.StatusCode != 404 {
				t.Fatalf("status %d, want 404\n%s", resp.StatusCode, body)
			}
			var e errEnv
			decode(t, body, &e)
			if e.Error.Code != "not_found" || e.Error.Message == "" {
				t.Fatalf("error envelope = %+v", e)
			}
		})
	}
}

func TestSearchPagination(t *testing.T) {
	_, ts := newTestServer(t)
	e := getEnvelope(t, ts, "/api/v1/search?prefix=AL/basic-analysis/&limit=5", 200)
	var hits []struct {
		ID    string  `json:"id"`
		Score float64 `json:"score"`
	}
	decode(t, e.Data, &hits)
	if len(hits) == 0 || len(hits) > 5 {
		t.Fatalf("hits = %d", len(hits))
	}
	if e.Meta.Total < len(hits) || e.Meta.Limit != 5 {
		t.Fatalf("meta = %+v", e.Meta)
	}
	// Offset walks the ranked list: page 2 starts where page 1 ended.
	all := getEnvelope(t, ts, "/api/v1/search?prefix=AL/basic-analysis/&limit=4&offset=0", 200)
	var page1 []struct {
		ID string `json:"id"`
	}
	decode(t, all.Data, &page1)
	next := getEnvelope(t, ts, "/api/v1/search?prefix=AL/basic-analysis/&limit=4&offset=2", 200)
	var page2 []struct {
		ID string `json:"id"`
	}
	decode(t, next.Data, &page2)
	if len(page1) < 4 || len(page2) < 1 || page1[2].ID != page2[0].ID {
		t.Fatalf("offset window mismatch: page1=%+v page2=%+v", page1, page2)
	}
	// Past-the-end offsets return an empty array, never null.
	e = getEnvelope(t, ts, "/api/v1/search?prefix=AL/basic-analysis/&offset=100000", 200)
	if string(e.Data) != "[]" {
		t.Fatalf("past-the-end data = %s, want []", e.Data)
	}
}

func TestAgreementEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	e := getEnvelope(t, ts, "/api/v1/agreement?group=CS1&threshold=4", 200)
	var out struct {
		Tags    int            `json:"tags"`
		AtLeast map[string]int `json:"at_least"`
		KASpan  []string       `json:"ka_span"`
	}
	decode(t, e.Data, &out)
	if out.Tags < 200 {
		t.Fatalf("CS1 tags = %d", out.Tags)
	}
	if len(out.KASpan) != 1 || out.KASpan[0] != "SDF" {
		t.Fatalf("KA span at threshold 4 = %v, want [SDF]", out.KASpan)
	}
	if e.Meta.Cache != "miss" {
		t.Fatalf("first request cache = %q", e.Meta.Cache)
	}
	e = getEnvelope(t, ts, "/api/v1/agreement?group=CS1&threshold=4", 200)
	if e.Meta.Cache != "hit" {
		t.Fatalf("second request cache = %q", e.Meta.Cache)
	}
}

func TestTypesEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	e := getEnvelope(t, ts, "/api/v1/types?group=cs1&k=3", 200)
	var out struct {
		K       int `json:"k"`
		Courses []struct {
			Course   string `json:"course"`
			Dominant int    `json:"dominant_type"`
		} `json:"courses"`
		Types []struct {
			Label string `json:"label"`
		} `json:"types"`
	}
	decode(t, e.Data, &out)
	if out.K != 3 || len(out.Courses) != 6 || len(out.Types) != 3 {
		t.Fatalf("types = %+v", out)
	}
	// Oversized k is a factorization error surfaced as 400.
	resp, body := get(t, ts, "/api/v1/types?group=cs1&k=99")
	if resp.StatusCode != 400 {
		t.Fatalf("oversized k status %d\n%s", resp.StatusCode, body)
	}
	var ee errEnv
	decode(t, body, &ee)
	if ee.Error.Code != "bad_request" {
		t.Fatalf("oversized k error = %+v", ee)
	}
}

func TestFigureEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	e := getEnvelope(t, ts, "/api/v1/figures/3a", 200)
	var out struct {
		ID   string   `json:"id"`
		Text string   `json:"text"`
		SVGs []string `json:"svgs"`
	}
	decode(t, e.Data, &out)
	if !strings.Contains(out.Text, "CS1: 6 courses") || len(out.SVGs) != 1 {
		t.Fatalf("figure = %+v", out)
	}
	// SVG served directly, from the cached artifact.
	resp, svg := get(t, ts, "/api/v1/figures/3a?svg="+out.SVGs[0])
	if resp.StatusCode != 200 {
		t.Fatalf("svg status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Fatal("not an SVG body")
	}
	resp, _ = get(t, ts, "/api/v1/figures/3a?svg=nope.svg")
	if resp.StatusCode != 404 {
		t.Fatalf("unknown svg status %d", resp.StatusCode)
	}
}

func TestClusterEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	e := getEnvelope(t, ts, "/api/v1/cluster?group=all&k=6", 200)
	var out struct {
		K        int        `json:"k"`
		Clusters [][]string `json:"clusters"`
	}
	decode(t, e.Data, &out)
	if out.K != 6 || len(out.Clusters) != 6 {
		t.Fatalf("cluster response = %+v", out)
	}
	total := 0
	for _, cl := range out.Clusters {
		total += len(cl)
	}
	if total != 20 {
		t.Fatalf("clusters cover %d courses", total)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/api/v1/courses", "/api/v1/types", "/healthz"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s status %d", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Fatalf("POST %s Allow = %q", path, allow)
		}
		var e errEnv
		decode(t, body, &e)
		if e.Error.Code != "method_not_allowed" {
			t.Fatalf("POST %s error envelope = %+v", path, e)
		}
	}
}

// TestLegacyRedirects: pre-v1 paths 308 to their v1 equivalents with
// the query string intact, and clients that follow redirects see the
// v1 envelope.
func TestLegacyRedirects(t *testing.T) {
	_, ts := newTestServer(t)
	noFollow := &http.Client{
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	cases := []struct{ from, to string }{
		{"/api/courses", "/api/v1/courses"},
		{"/api/courses/vcu-cmsc256-duke/anchors", "/api/v1/courses/vcu-cmsc256-duke/anchors"},
		{"/api/search?prefix=AL/&limit=5", "/api/v1/search?prefix=AL/&limit=5"},
		{"/api/types?group=cs1&k=3", "/api/v1/types?group=cs1&k=3"},
		{"/api/figures/3a", "/api/v1/figures/3a"},
	}
	for _, tc := range cases {
		resp, err := noFollow.Get(ts.URL + tc.from)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Fatalf("GET %s status %d, want 308", tc.from, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != tc.to {
			t.Fatalf("GET %s Location = %q, want %q", tc.from, loc, tc.to)
		}
	}
	// A default client lands on the v1 payload.
	e := getEnvelope(t, ts, "/api/agreement?group=CS1&threshold=4", 200)
	var out struct {
		KASpan []string `json:"ka_span"`
	}
	decode(t, e.Data, &out)
	if len(out.KASpan) != 1 || out.KASpan[0] != "SDF" {
		t.Fatalf("redirected agreement = %+v", out)
	}
}

// TestPanicReturns500Envelope: a handler panic becomes a JSON 500, not
// a dropped connection.
func TestPanicReturns500Envelope(t *testing.T) {
	s, ts := newTestServer(t)
	replaceCompute(t, s, "types", func(context.Context, *materials.Repository, engine.Params) (interface{}, error) {
		panic("injected analysis panic")
	})
	resp, body := get(t, ts, "/api/v1/types?group=cs1&k=2")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d\n%s", resp.StatusCode, body)
	}
	var e errEnv
	decode(t, body, &e)
	if e.Error.Code != "internal" || e.Error.Message == "" {
		t.Fatalf("error envelope = %+v", e)
	}
	// The server is still alive afterwards.
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz after panic: %d", resp.StatusCode)
	}
}
