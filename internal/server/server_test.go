package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func decode(t *testing.T, data []byte, v interface{}) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Status    string `json:"status"`
		Courses   int    `json:"courses"`
		Materials int    `json:"materials"`
	}
	decode(t, body, &out)
	if out.Status != "ok" || out.Courses != 20 || out.Materials < 400 {
		t.Fatalf("health = %+v", out)
	}
}

func TestListCourses(t *testing.T) {
	ts := newTestServer(t)
	resp, body := get(t, ts, "/api/courses")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out []struct {
		ID    string `json:"id"`
		Group string `json:"group"`
		Tags  int    `json:"tags"`
	}
	decode(t, body, &out)
	if len(out) != 20 {
		t.Fatalf("%d courses", len(out))
	}
	if out[0].ID != "uncc-2214-krs" || out[0].Tags == 0 {
		t.Fatalf("first course = %+v", out[0])
	}
}

func TestCourseDetailAndSubresources(t *testing.T) {
	ts := newTestServer(t)
	resp, body := get(t, ts, "/api/courses/vcu-cmsc256-duke")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var detail struct {
		Course struct {
			ID string `json:"id"`
		} `json:"course"`
		Tags []string `json:"tags"`
	}
	decode(t, body, &detail)
	if detail.Course.ID != "vcu-cmsc256-duke" || len(detail.Tags) < 50 {
		t.Fatalf("detail = %+v (%d tags)", detail.Course, len(detail.Tags))
	}

	resp, body = get(t, ts, "/api/courses/vcu-cmsc256-duke/anchors")
	if resp.StatusCode != 200 {
		t.Fatalf("anchors status %d", resp.StatusCode)
	}
	var recs []struct {
		Rule  string  `json:"rule"`
		Score float64 `json:"score"`
	}
	decode(t, body, &recs)
	found := false
	for _, r := range recs {
		if r.Rule == "thread-safe-types" {
			found = true
		}
	}
	if !found {
		t.Fatalf("thread-safe-types not in VCU anchors: %+v", recs)
	}

	resp, body = get(t, ts, "/api/courses/vcu-cmsc256-duke/audit")
	if resp.StatusCode != 200 {
		t.Fatalf("audit status %d", resp.StatusCode)
	}
	var aud struct {
		Core1 float64 `json:"core1_coverage"`
		Units []struct {
			Unit string `json:"unit"`
		} `json:"units"`
	}
	decode(t, body, &aud)
	if aud.Core1 <= 0 || len(aud.Units) == 0 {
		t.Fatalf("audit = %+v", aud)
	}

	resp, body = get(t, ts, "/api/courses/vcu-cmsc256-duke/pdcmaterials?limit=3")
	if resp.StatusCode != 200 {
		t.Fatalf("pdcmaterials status %d", resp.StatusCode)
	}
	var pdcm []struct {
		ID string `json:"id"`
	}
	decode(t, body, &pdcm)
	if len(pdcm) == 0 || len(pdcm) > 3 {
		t.Fatalf("pdcmaterials = %d entries", len(pdcm))
	}

	resp, body = get(t, ts, "/api/courses/vcu-cmsc256-duke/materials")
	if resp.StatusCode != 200 {
		t.Fatalf("materials status %d", resp.StatusCode)
	}
	var ms []struct {
		ID string `json:"id"`
	}
	decode(t, body, &ms)
	if len(ms) < 10 {
		t.Fatalf("materials = %d", len(ms))
	}
}

func TestCourseNotFound(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := get(t, ts, "/api/courses/ghost")
	if resp.StatusCode != 404 {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, ts, "/api/courses/vcu-cmsc256-duke/bogus")
	if resp.StatusCode != 404 {
		t.Fatalf("bad subresource status %d", resp.StatusCode)
	}
}

func TestSearchEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := get(t, ts, "/api/search?prefix=AL/basic-analysis/&limit=5")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var hits []struct {
		ID    string  `json:"id"`
		Score float64 `json:"score"`
	}
	decode(t, body, &hits)
	if len(hits) == 0 || len(hits) > 5 {
		t.Fatalf("hits = %d", len(hits))
	}
	// Empty query rejected.
	resp, _ = get(t, ts, "/api/search")
	if resp.StatusCode != 400 {
		t.Fatalf("empty query status %d, want 400", resp.StatusCode)
	}
}

func TestAgreementEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := get(t, ts, "/api/agreement?group=CS1&threshold=4")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Tags    int            `json:"tags"`
		AtLeast map[string]int `json:"at_least"`
		KASpan  []string       `json:"ka_span"`
	}
	decode(t, body, &out)
	if out.Tags < 200 {
		t.Fatalf("CS1 tags = %d", out.Tags)
	}
	if len(out.KASpan) != 1 || out.KASpan[0] != "SDF" {
		t.Fatalf("KA span at threshold 4 = %v, want [SDF]", out.KASpan)
	}
	resp, _ = get(t, ts, "/api/agreement?group=bogus")
	if resp.StatusCode != 400 {
		t.Fatalf("bad group status %d", resp.StatusCode)
	}
}

func TestTypesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := get(t, ts, "/api/types?group=cs1&k=3")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		K       int `json:"k"`
		Courses []struct {
			Course   string `json:"course"`
			Dominant int    `json:"dominant_type"`
		} `json:"courses"`
		Types []struct {
			Label string `json:"label"`
		} `json:"types"`
	}
	decode(t, body, &out)
	if out.K != 3 || len(out.Courses) != 6 || len(out.Types) != 3 {
		t.Fatalf("types = %+v", out)
	}
	resp, _ = get(t, ts, "/api/types?group=cs1&k=banana")
	if resp.StatusCode != 400 {
		t.Fatalf("bad k status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts, "/api/types?group=cs1&k=99")
	if resp.StatusCode != 400 {
		t.Fatalf("oversized k status %d", resp.StatusCode)
	}
}

func TestFigureEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := get(t, ts, "/api/figures/3a")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		ID   string   `json:"id"`
		Text string   `json:"text"`
		SVGs []string `json:"svgs"`
	}
	decode(t, body, &out)
	if !strings.Contains(out.Text, "CS1: 6 courses") || len(out.SVGs) != 1 {
		t.Fatalf("figure = %+v", out)
	}
	// SVG served directly.
	resp, svg := get(t, ts, "/api/figures/3a?svg="+out.SVGs[0])
	if resp.StatusCode != 200 {
		t.Fatalf("svg status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Fatal("not an SVG body")
	}
	resp, _ = get(t, ts, "/api/figures/99")
	if resp.StatusCode != 404 {
		t.Fatalf("unknown figure status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts, "/api/figures/3a?svg=nope.svg")
	if resp.StatusCode != 404 {
		t.Fatalf("unknown svg status %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/api/courses", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
}

func TestClusterEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := get(t, ts, "/api/cluster?group=all&k=6")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		K        int        `json:"k"`
		Clusters [][]string `json:"clusters"`
	}
	decode(t, body, &out)
	if out.K != 6 || len(out.Clusters) != 6 {
		t.Fatalf("cluster response = %+v", out)
	}
	total := 0
	for _, cl := range out.Clusters {
		total += len(cl)
	}
	if total != 20 {
		t.Fatalf("clusters cover %d courses", total)
	}
	resp, _ = get(t, ts, "/api/cluster?group=all&k=0")
	if resp.StatusCode != 400 {
		t.Fatalf("k=0 status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts, "/api/cluster?group=bogus")
	if resp.StatusCode != 400 {
		t.Fatalf("bad group status %d", resp.StatusCode)
	}
}
