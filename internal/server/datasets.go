package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"csmaterials/internal/dataset"
	"csmaterials/internal/engine"
)

// Dataset lifecycle endpoints: the catalog (GET /api/v1/datasets),
// per-dataset metadata (GET /api/v1/datasets/{ds}), live ingest
// (PUT /api/v1/datasets/{ds}), incremental deltas
// (PATCH /api/v1/datasets/{ds}), and deletion
// (DELETE /api/v1/datasets/{ds}). Ingest is a full-document replace:
// the body is the same {"courses": [...]} document
// materials.Repository.SaveJSON writes and -data-dir loads, validated
// in full (every tag against CS2013/PDC12, material IDs globally
// unique) before the registry's snapshot pointer swaps. Requests
// in flight across the swap finish against the snapshot they resolved;
// the old revision's cache entries are precisely invalidated, touching
// no other dataset.

// MaxDatasetBody bounds a PUT /api/v1/datasets/{ds} body.
const MaxDatasetBody = 4 << 20

// MaxPatchBody bounds a PATCH /api/v1/datasets/{ds} body. Deltas are
// small by nature — a few events, not a corpus.
const MaxPatchBody = 1 << 20

// IngestMeta is the meta block of PUT /api/v1/datasets/{ds} responses.
type IngestMeta struct {
	// Invalidated counts the cache entries (fresh + stale) of the
	// dataset's previous revisions dropped by this ingest.
	Invalidated int `json:"invalidated"`
}

// PatchRequest is the PATCH /api/v1/datasets/{ds} body: an ordered
// list of classification events applied atomically on top of the
// dataset's current revision.
type PatchRequest struct {
	Events []dataset.Event `json:"events"`
}

// PatchMeta is the meta block of PATCH /api/v1/datasets/{ds}
// responses: what the delta touched and what the serving layer did
// about it.
type PatchMeta struct {
	// Delta summarizes the applied events (courses, tags, groups
	// touched; add/remove/retag counts).
	Delta *dataset.Delta `json:"delta"`
	// Refresh reports the delta-driven cache reconciliation: entries
	// migrated to the new revision, dropped, and retained as warm-start
	// priors.
	Refresh engine.DeltaOutcome `json:"refresh"`
}

// DatasetDeleted is the DELETE /api/v1/datasets/{ds} data payload.
type DatasetDeleted struct {
	ID string `json:"id"`
	// Invalidated counts the dataset's cache entries (fresh + stale)
	// dropped with it.
	Invalidated int `json:"invalidated"`
}

// handleDatasetList serves the paginated dataset catalog in
// registration order (the default dataset is always first).
func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := parsePage(r, 20)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	metas := s.datasets.List()
	lo, hi := pageBounds(len(metas), limit, offset)
	writeData(w, http.StatusOK, metas[lo:hi], ListMeta{Total: len(metas), Limit: limit, Offset: offset})
}

// handleDatasetGet serves one dataset's metadata (with ownership).
func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot(w, r)
	if snap == nil {
		return
	}
	meta, ok := s.datasets.MetaOf(snap.ID())
	if !ok { // deleted since the snapshot resolved; serve what it saw
		meta = snap.Meta()
	}
	writeData(w, http.StatusOK, meta, nil)
}

// handleDatasetPut ingests (or replaces) a named dataset. The document
// is validated in full before anything is published; a failed ingest
// leaves the previous revision serving. On success the new snapshot is
// live for every subsequent request, the previous revisions' cache
// entries are dropped (including any stored by computes that were in
// flight across the swap — their keys carry old revisions and are
// unreachable), and the dataset's warmup re-runs in the background.
func (s *Server) handleDatasetPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("ds")
	keyName, ok := s.authorizeMutation(w, r, id)
	if !ok {
		return
	}
	var doc dataset.Document
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxDatasetBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad dataset document: %v", err)
		return
	}
	snap, err := s.datasets.Put(id, doc.Courses)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	if keyName != "" && s.datasets.Attrs(id).Owner == "" {
		// First keyed ingest of an unowned dataset claims it; the owner
		// survives re-ingest revisions and Delete.
		s.datasets.SetOwner(id, keyName)
	}
	s.retuneTenancy()
	s.touchDataset(id)
	// A full re-ingest carries no delta, so ApplyDelta degrades to the
	// whole-dataset refresh this handler always did.
	outcome := s.exec.ApplyDelta(r.Context(), id, snap)
	if s.noWarmup {
		s.setDatasetState(id, DatasetReady{Status: "ready"})
	} else {
		s.setDatasetState(id, DatasetReady{Status: "warming"})
		s.spawnBackground(func(ctx context.Context) { _ = s.warmDataset(ctx, id) })
	}
	s.broadcastInvalidate(r, id)
	meta, ok := s.datasets.MetaOf(id)
	if !ok { // deleted in the same instant; report the revision ingested
		meta = snap.Meta()
	}
	writeData(w, http.StatusOK, meta, IngestMeta{Invalidated: outcome.Invalidated()})
}

// handleDatasetPatch applies a delta — an ordered event list — on top
// of the dataset's current revision, behind the same auth/ownership
// gates as PUT. Unlike PUT, the serving layer is reconciled
// incrementally: cache entries whose analyses prove themselves
// unaffected by the delta migrate to the new revision (staying warm),
// affected entries drop, and droppable results of warm-startable
// analyses are retained as priors so the recompute converges in a
// fraction of the cold iteration budget. Concurrent PATCHes race on
// the revision; the loser retries inside Registry.Apply and, if the
// dataset keeps moving, answers 409 dataset_conflict.
func (s *Server) handleDatasetPatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("ds")
	keyName, ok := s.authorizeMutation(w, r, id)
	if !ok {
		return
	}
	var req PatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxPatchBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad delta body: %v", err)
		return
	}
	if len(req.Events) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty delta: pass events")
		return
	}
	snap, err := s.datasets.Apply(id, req.Events)
	if err != nil {
		switch {
		case errors.Is(err, dataset.ErrNotFound):
			writeError(w, http.StatusNotFound, "not_found", "unknown dataset %q", id)
		case errors.Is(err, dataset.ErrConflict):
			writeError(w, http.StatusConflict, "dataset_conflict", "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		}
		return
	}
	if keyName != "" && s.datasets.Attrs(id).Owner == "" {
		s.datasets.SetOwner(id, keyName)
	}
	s.touchDataset(id)
	outcome := s.exec.ApplyDelta(r.Context(), id, snap)
	if s.noWarmup {
		s.setDatasetState(id, DatasetReady{Status: "ready"})
	} else {
		s.setDatasetState(id, DatasetReady{Status: "warming"})
		s.spawnBackground(func(ctx context.Context) { _ = s.warmDataset(ctx, id) })
	}
	s.broadcastInvalidate(r, id)
	meta, ok := s.datasets.MetaOf(id)
	if !ok {
		meta = snap.Meta()
	}
	writeData(w, http.StatusOK, meta, PatchMeta{Delta: snap.Delta(), Refresh: outcome})
}

// handleDatasetDelete removes a dataset and every trace of its serving
// state: cache entries (all revisions), search index, and readiness
// entry. The default dataset is protected (409 dataset_protected); its
// revision counter — like every deleted dataset's — survives, so a
// re-ingest under the same name can never resurrect old cache entries.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("ds")
	if _, ok := s.authorizeMutation(w, r, id); !ok {
		return
	}
	if err := s.datasets.Delete(id); err != nil {
		switch {
		case errors.Is(err, dataset.ErrProtected):
			writeError(w, http.StatusConflict, "dataset_protected", "%v", err)
		case errors.Is(err, dataset.ErrNotFound):
			writeError(w, http.StatusNotFound, "not_found", "unknown dataset %q", id)
		default:
			writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		}
		return
	}
	invalidated := s.exec.DropDatasetServingState(id)
	s.dropSearcher(id)
	s.dropDatasetState(id)
	s.dropIdleTracking(id)
	s.limiter.DropTenant(id)
	s.tracer.DropDataset(id)
	s.retuneTenancy()
	s.broadcastInvalidate(r, id)
	writeData(w, http.StatusOK, DatasetDeleted{ID: id, Invalidated: invalidated}, nil)
}
