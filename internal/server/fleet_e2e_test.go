package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"csmaterials/internal/fleet"
)

// The multi-replica end-to-end suite: three full servers wired into one
// fleet over real loopback HTTP, exercised through the same handlers a
// production replica serves. These tests are the proof obligations of
// docs/cluster.md — ownership routing gives cluster-wide cache reuse,
// distributed batches are byte-identical to single-node ones, ingest
// invalidations sweep every replica, and drains/ring splits degrade to
// local compute instead of failing.

// newFleetCluster builds one in-process replica per ID, all members of
// the same fleet. The fleet config needs every peer's URL before the
// servers exist, so each httptest server late-binds its handler through
// an atomic slot.
func newFleetCluster(t testing.TB, ids []string) (map[string]*Server, map[string]*httptest.Server) {
	t.Helper()
	slots := make([]atomic.Value, len(ids))
	tss := make(map[string]*httptest.Server, len(ids))
	peers := make([]fleet.Peer, 0, len(ids))
	for i, id := range ids {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h, _ := slots[i].Load().(http.Handler)
			if h == nil {
				http.Error(w, "replica not ready", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		tss[id] = ts
		peers = append(peers, fleet.Peer{ID: id, URL: ts.URL})
	}
	servers := make(map[string]*Server, len(ids))
	for i, id := range ids {
		fl, err := fleet.New(fleet.Config{Self: id, Peers: peers}, fleet.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewWithOptions(Options{Fleet: fl, disableWarmup: true})
		if err != nil {
			t.Fatal(err)
		}
		servers[id] = s
		slots[i].Store(http.Handler(s))
	}
	return servers, tss
}

// agreementPathOwnedBy probes agreement thresholds until the ownership
// key lands on the wanted node; every replica computes the same owner,
// so probing any one of them stands for all.
func agreementPathOwnedBy(t testing.TB, s *Server, owner string) string {
	t.Helper()
	for th := 1; th < 100; th++ {
		v := url.Values{"group": {"cs1"}, "threshold": {strconv.Itoa(th)}}
		key, err := s.exec.FleetKeyOn("default", "agreement", v)
		if err != nil {
			t.Fatal(err)
		}
		if s.fleet.Owner(key) == owner {
			return "/api/v1/agreement?group=cs1&threshold=" + strconv.Itoa(th)
		}
	}
	t.Fatalf("no agreement threshold in 1..99 is owned by %s", owner)
	return ""
}

// TestFleetForwardSharedCache is the core ownership-routing claim: a
// request hitting a non-owner replica is forwarded, the owner computes
// and caches it, and a later request through ANY replica is a warm hit
// on that one cache entry — exactly one compute fleet-wide.
func TestFleetForwardSharedCache(t *testing.T) {
	servers, tss := newFleetCluster(t, []string{"a", "b", "c"})
	owner := "c"
	path := agreementPathOwnedBy(t, servers["a"], owner)

	e := getEnvelope(t, tss["a"], path, 200)
	if e.Meta.Cache != "miss" {
		t.Fatalf("first request cache = %q, want miss (owner computes)", e.Meta.Cache)
	}
	resp, _ := get(t, tss["a"], path)
	if got := resp.Header.Get(fleet.OwnerHeader); got != owner {
		t.Fatalf("X-CSM-Owner = %q, want %q", got, owner)
	}

	// Second distinct replica: forwarded to the same owner, warm hit.
	e = getEnvelope(t, tss["b"], path, 200)
	if e.Meta.Cache != "hit" {
		t.Fatalf("cross-replica cache = %q, want hit from the owner's cache", e.Meta.Cache)
	}
	// The owner itself serves locally from the same entry.
	e = getEnvelope(t, tss[owner], path, 200)
	if e.Meta.Cache != "hit" {
		t.Fatalf("owner-local cache = %q, want hit", e.Meta.Cache)
	}

	st := servers[owner].Fleet().Stats()
	if st.OwnerComputes < 2 {
		t.Errorf("owner computes = %d, want >= 2 forwarded serves", st.OwnerComputes)
	}
	if sa := servers["a"].Fleet().Stats(); sa.Forwards[owner] == 0 {
		t.Errorf("replica a recorded no forwards to %s: %+v", owner, sa.Forwards)
	}
	if sa := servers["a"].Fleet().Stats(); sa.LocalFallbacks != 0 {
		t.Errorf("local fallbacks on a = %d, want 0 on a healthy fleet", sa.LocalFallbacks)
	}
}

// TestFleetDistributedBatchByteIdentical: the same batch, once through
// a fleet replica (fanned out by owner) and once through a standalone
// no-fleet server, yields byte-for-byte identical response bodies —
// including per-item error envelopes and input ordering.
func TestFleetDistributedBatchByteIdentical(t *testing.T) {
	servers, tss := newFleetCluster(t, []string{"a", "b", "c"})
	solo, err := NewWithOptions(Options{disableWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	soloTS := httptest.NewServer(solo)
	t.Cleanup(soloTS.Close)

	var items []string
	for k := 2; k <= 7; k++ {
		items = append(items, fmt.Sprintf(`{"analysis": "types", "params": {"group": "cs1", "k": "%d"}}`, k))
		items = append(items, fmt.Sprintf(`{"analysis": "agreement", "params": {"group": "ds", "threshold": "%d"}}`, k))
	}
	items = append(items,
		`{"analysis": "bogus"}`,
		`{"analysis": "types", "params": {"k": "banana"}}`,
	)
	body := `{"items": [` + strings.Join(items, ",") + `]}`

	resp, fleetRaw := postBatch(t, tss["a"], body)
	if resp.StatusCode != 200 {
		t.Fatalf("fleet batch status %d\n%s", resp.StatusCode, fleetRaw)
	}
	resp, soloRaw := postBatch(t, soloTS, body)
	if resp.StatusCode != 200 {
		t.Fatalf("solo batch status %d\n%s", resp.StatusCode, soloRaw)
	}
	if string(fleetRaw) != string(soloRaw) {
		t.Fatalf("distributed batch diverges from single-node bytes:\nfleet: %s\nsolo:  %s", fleetRaw, soloRaw)
	}
	if st := servers["a"].Fleet().Stats(); st.BatchFanouts == 0 {
		t.Error("batch was not partitioned across the fleet")
	}

	// With >= 12 spread-out keys, at least one sub-batch must have left
	// replica a — otherwise the test proves nothing about forwarding.
	total := uint64(0)
	for _, n := range servers["a"].Fleet().Stats().BatchForwards {
		total += n
	}
	if total == 0 {
		t.Fatal("no sub-batch was forwarded; every key landed on replica a")
	}

	// Replay through a different replica: every good item is now a warm
	// hit on its owner — batches fill the same cluster-wide cache.
	_, raw := postBatch(t, tss["b"], body)
	var e batchEnv
	decode(t, raw, &e)
	for i, r := range e.Data {
		if r.Error == nil && r.Cache != "hit" {
			t.Errorf("replayed item %d cache = %q, want cluster-wide hit", i, r.Cache)
		}
	}
}

// TestFleetIngestBroadcastInvalidation: a dataset write on one replica
// sweeps the dataset's cache entries on every other replica, so no node
// keeps serving results computed over a corpus its peer has replaced.
func TestFleetIngestBroadcastInvalidation(t *testing.T) {
	servers, _ := newFleetCluster(t, []string{"a", "b", "c"})
	for _, id := range []string{"a", "b", "c"} {
		putDataset(t, servers[id], "alt", 3)
	}
	values := url.Values{"threshold": {"2"}} // all-groups agreement, valid on any corpus
	ctx := context.Background()

	// Seed b's and c's local caches for the dataset (bypassing ownership
	// routing on purpose: the broadcast must reach entries wherever a
	// forwarded compute or warmup left them).
	for _, id := range []string{"b", "c"} {
		if _, out, err := servers[id].exec.RunOn(ctx, "alt", "agreement", values); err != nil || out.Cache != "miss" {
			t.Fatalf("seed compute on %s: cache=%q err=%v", id, out.Cache, err)
		}
		if _, out, err := servers[id].exec.RunOn(ctx, "alt", "agreement", values); err != nil || out.Cache != "hit" {
			t.Fatalf("warm check on %s: cache=%q err=%v", id, out.Cache, err)
		}
	}

	// Re-ingest on a: the broadcast sweeps b and c.
	putDataset(t, servers["a"], "alt", 2)
	if st := servers["a"].Fleet().Stats(); st.InvalSent < 2 {
		t.Errorf("invalidations acked to a = %d, want 2 (b and c)", st.InvalSent)
	}
	for _, id := range []string{"b", "c"} {
		if st := servers[id].Fleet().Stats(); st.InvalReceived == 0 {
			t.Errorf("replica %s never applied the invalidation", id)
		}
		if _, out, err := servers[id].exec.RunOn(ctx, "alt", "agreement", values); err != nil || out.Cache != "miss" {
			t.Errorf("post-invalidation compute on %s: cache=%q err=%v, want miss (entry swept)", id, out.Cache, err)
		}
	}
}

// TestFleetDrainFallback: a draining owner refuses forwarded computes
// with 503 node_draining and the origin degrades to local compute — the
// client sees 200 throughout, including under concurrent load while the
// drain latches.
func TestFleetDrainFallback(t *testing.T) {
	servers, tss := newFleetCluster(t, []string{"a", "b", "c"})
	owner := "b"
	path := agreementPathOwnedBy(t, servers["a"], owner)

	servers[owner].StartDraining()

	e := getEnvelope(t, tss["a"], path, 200)
	if e.Meta.Cache != "miss" {
		t.Fatalf("fallback cache = %q, want local miss", e.Meta.Cache)
	}
	if st := servers[owner].Fleet().Stats(); st.DrainRefused == 0 {
		t.Error("draining owner refused nothing")
	}
	if st := servers["a"].Fleet().Stats(); st.LocalFallbacks == 0 {
		t.Error("origin recorded no local fallback")
	}

	// The draining replica leaves rotation but keeps answering direct
	// traffic.
	resp, body := get(t, tss[owner], "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), `"draining"`) {
		t.Errorf("draining /readyz = %d %s, want 503 draining", resp.StatusCode, body)
	}
	if e := getEnvelope(t, tss[owner], path, 200); e.Meta.Cache == "" {
		t.Error("draining replica stopped serving direct traffic")
	}

	// Drain under load: another owner latches mid-flight; every request
	// through a still answers 200.
	owner2 := "c"
	paths := make([]string, 0, 8)
	for th := 1; len(paths) < 8 && th < 100; th++ {
		p := "/api/v1/agreement?group=ds&threshold=" + strconv.Itoa(th)
		v := url.Values{"group": {"ds"}, "threshold": {strconv.Itoa(th)}}
		key, err := servers["a"].exec.FleetKeyOn("default", "agreement", v)
		if err != nil {
			t.Fatal(err)
		}
		if servers["a"].fleet.Owner(key) == owner2 {
			paths = append(paths, p)
		}
	}
	var wg sync.WaitGroup
	for i, p := range paths {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			if i == len(paths)/2 {
				servers[owner2].StartDraining()
			}
			resp, body := get(t, tss["a"], p)
			if resp.StatusCode != 200 {
				t.Errorf("GET %s during drain: %d\n%s", p, resp.StatusCode, body)
			}
		}(i, p)
	}
	wg.Wait()
}

// TestFleetRingVersionMismatch: a replica started with a divergent
// membership refuses forwarded computes with 421 not_owner instead of
// serving keys it may not own, and the origin falls back locally.
func TestFleetRingVersionMismatch(t *testing.T) {
	slots := make([]atomic.Value, 2)
	var tss []*httptest.Server
	for i := range slots {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h, _ := slots[i].Load().(http.Handler)
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		tss = append(tss, ts)
	}
	peersA := []fleet.Peer{{ID: "a", URL: tss[0].URL}, {ID: "b", URL: tss[1].URL}}
	// b was (mis)started with a third member a does not know about.
	peersB := append([]fleet.Peer{{ID: "ghost", URL: "http://127.0.0.1:1"}}, peersA...)
	newReplica := func(self string, peers []fleet.Peer, slot int) *Server {
		fl, err := fleet.New(fleet.Config{Self: self, Peers: peers}, fleet.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewWithOptions(Options{Fleet: fl, disableWarmup: true})
		if err != nil {
			t.Fatal(err)
		}
		slots[slot].Store(http.Handler(s))
		return s
	}
	a := newReplica("a", peersA, 0)
	b := newReplica("b", peersB, 1)
	if a.fleet.RingVersion() == b.fleet.RingVersion() {
		t.Fatal("test setup broken: rings agree")
	}

	path := agreementPathOwnedBy(t, a, "b")
	tsA := httptest.NewServer(a) // direct front door to a
	t.Cleanup(tsA.Close)
	e := getEnvelope(t, tsA, path, 200)
	if e.Meta.Cache != "miss" {
		t.Fatalf("split-ring fallback cache = %q, want local miss", e.Meta.Cache)
	}
	if st := b.Fleet().Stats(); st.NotOwner == 0 {
		t.Error("divergent owner never refused with not_owner")
	}
	if st := a.Fleet().Stats(); st.LocalFallbacks == 0 {
		t.Error("origin recorded no local fallback after 421")
	}
}

// TestFleetLoopGuard: a request already carrying the forwarded header
// is never re-forwarded, even when this replica disagrees that it owns
// the key — one hop is the hard ceiling.
func TestFleetLoopGuard(t *testing.T) {
	servers, tss := newFleetCluster(t, []string{"a", "b", "c"})
	path := agreementPathOwnedBy(t, servers["a"], "b") // owned by b, asked of a

	req, err := http.NewRequest(http.MethodGet, tss["a"].URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(fleet.ForwardedHeader, "c")
	req.Header.Set(fleet.RingVersionHeader, servers["a"].fleet.RingVersion())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("forwarded-but-not-owner status = %d, want 200 local compute", resp.StatusCode)
	}
	st := servers["a"].Fleet().Stats()
	if st.LoopsPrevented != 1 {
		t.Errorf("loops prevented = %d, want 1", st.LoopsPrevented)
	}
	if len(st.Forwards) != 0 {
		t.Errorf("replica a re-forwarded a forwarded request: %+v", st.Forwards)
	}
}

// TestFleetEndpointAndMetrics: GET /api/v1/fleet reports membership and
// counters from any replica, the csm_fleet_* families are exposed with
// one sample per peer, and a single-process server exposes none of them
// (the legacy exposition is preserved byte-for-byte).
func TestFleetEndpointAndMetrics(t *testing.T) {
	servers, tss := newFleetCluster(t, []string{"a", "b", "c"})
	path := agreementPathOwnedBy(t, servers["a"], "b")
	getEnvelope(t, tss["a"], path, 200) // one forward to give counters a pulse

	var info struct {
		Data FleetInfo `json:"data"`
	}
	_, raw := get(t, tss["a"], "/api/v1/fleet")
	decode(t, raw, &info)
	if info.Data.Self != "a" || len(info.Data.Peers) != 3 || info.Data.RingVersion == "" {
		t.Fatalf("fleet info = %+v", info.Data)
	}
	if info.Data.Stats.Forwards["b"] == 0 {
		t.Errorf("fleet info counters missing the forward: %+v", info.Data.Stats)
	}

	_, prom := get(t, tss["a"], "/metrics")
	for _, want := range []string{
		"csm_fleet_peers 3",
		`csm_fleet_forwards_total{peer="b"}`,
		`csm_fleet_forwards_total{peer="c"}`,
		"csm_fleet_owner_computes_total",
		"csm_fleet_ring_version",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	solo, err := NewWithOptions(Options{disableWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	soloTS := httptest.NewServer(solo)
	t.Cleanup(soloTS.Close)
	_, prom = get(t, soloTS, "/metrics")
	if strings.Contains(string(prom), "csm_fleet_") {
		t.Error("single-process /metrics leaks csm_fleet_* families")
	}
	resp, _ := get(t, soloTS, "/api/v1/fleet")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("single-process GET /api/v1/fleet = %d, want 404", resp.StatusCode)
	}
}
