package server

import (
	"net/http"
	"strings"

	"csmaterials/internal/obs"
	"csmaterials/internal/serving"
)

// DefaultTraceBuffer is the trace ring-buffer capacity when Options
// does not provide a tracer.
const DefaultTraceBuffer = obs.DefaultTraceBuffer

// traced wraps an API route with request tracing: every request gets a
// trace (advertised in the X-Trace response header and queryable at
// GET /debug/trace/{id} while it remains in the ring buffer), the
// ladder below records its spans into it, and on completion the trace
// is sealed, aggregated into the per-stage histograms, and — when a
// wide-event logger is configured — emitted as one structured JSON
// line carrying the request outcome and stage timings.
func (s *Server) traced(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, tr := s.tracer.Start(r.Context(), route)
		sw := serving.Wrap(w)
		if tr != nil {
			// Sampled out (-trace-sample below 1): no trace, no X-Trace
			// header; the ladder's StartSpan calls all no-op on the
			// untraced context, and the wide event below still fires.
			sw.Header().Set("X-Trace", tr.ID())
		}
		next.ServeHTTP(sw, r.WithContext(ctx))
		s.tracer.Finish(tr)
		s.logWideEvent(route, r, sw, tr)
	})
}

// logWideEvent emits the one-line-per-request access event: route,
// status, duration, trace ID, per-stage timings, and the serving
// outcome derived from the span record.
func (s *Server) logWideEvent(route string, r *http.Request, sw *serving.StatusWriter, tr *obs.Trace) {
	if s.events == nil {
		return
	}
	status := sw.Status
	if !sw.Wrote() {
		status = http.StatusOK
	}
	if tr == nil {
		// Sampled-out request: no spans or stage timings, but the access
		// log stays complete — every request still emits one line.
		fields := map[string]interface{}{
			"route":   route,
			"method":  r.Method,
			"path":    r.URL.Path,
			"status":  status,
			"bytes":   sw.Bytes,
			"sampled": false,
		}
		if r.URL.RawQuery != "" {
			fields["query"] = r.URL.RawQuery
		}
		s.events.Event("request", fields)
		return
	}
	rec := tr.Record()
	spans := make([]map[string]interface{}, 0, len(rec.Spans))
	var eventDataset string
	for _, sp := range rec.Spans {
		m := map[string]interface{}{"name": sp.Name, "ms": sp.DurationMS}
		if sp.Analysis != "" {
			m["analysis"] = sp.Analysis
		}
		if sp.Dataset != "" {
			m["dataset"] = sp.Dataset
			if eventDataset == "" {
				eventDataset = sp.Dataset
			}
		}
		spans = append(spans, m)
	}
	fields := map[string]interface{}{
		"trace":  rec.ID,
		"route":  route,
		"method": r.Method,
		"path":   r.URL.Path,
		"status": status,
		"bytes":  sw.Bytes,
		"dur_ms": rec.DurationMS,
		"spans":  spans,
	}
	if eventDataset != "" {
		fields["dataset"] = eventDataset
	}
	if r.URL.RawQuery != "" {
		fields["query"] = r.URL.RawQuery
	}
	if outcome := traceOutcome(rec); outcome != "" {
		fields["cache"] = outcome
	}
	if hasSpan(rec, "breaker-open") {
		fields["breaker"] = "open"
	}
	if hasSpan(rec, "stale-serve") {
		fields["stale"] = true
	}
	s.events.Event("request", fields)
}

// traceOutcome classifies how the ladder answered: "stale" dominates,
// then "hit" (fresh cache or shared flight), then "miss" (computed
// here); "" when the request never touched the cache (lists, health).
func traceOutcome(rec obs.TraceRecord) string {
	switch {
	case hasSpan(rec, "stale-serve"):
		return "stale"
	case hasSpan(rec, "cache-hit"), hasSpan(rec, "singleflight-join"):
		return "hit"
	case hasSpan(rec, "cache-miss"):
		return "miss"
	}
	return ""
}

func hasSpan(rec obs.TraceRecord, name string) bool {
	for _, sp := range rec.Spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}

// handleTraceList serves GET /debug/trace: the retained trace IDs
// (most recent first) plus the tracer counters, so an operator can
// find a trace without knowing its ID.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	serving.WriteJSON(w, http.StatusOK, struct {
		Tracer obs.TracerStats `json:"tracer"`
		Traces []string        `json:"traces"`
	}{Tracer: s.tracer.Stats(), Traces: s.tracer.IDs()})
}

// handleTrace serves GET /debug/trace/{id}: the full span record of
// one retained trace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSpace(r.PathValue("id"))
	rec, ok := s.tracer.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found",
			"no trace %q in the ring buffer (capacity %d; traces are evicted oldest-first)",
			id, s.tracer.Stats().Capacity)
		return
	}
	serving.WriteJSON(w, http.StatusOK, rec)
}
