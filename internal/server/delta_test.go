package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/engine"
)

// patchEnv decodes a PATCH /api/v1/datasets/{ds} envelope.
type patchEnv struct {
	Data json.RawMessage `json:"data"`
	Meta struct {
		Delta   dataset.Delta       `json:"delta"`
		Refresh engine.DeltaOutcome `json:"refresh"`
	} `json:"meta"`
}

// retagBody builds the smallest valid delta for a dataset: retag the
// first course's first material with its current tags. The revision
// bumps and the delta is non-empty, but no tag set changes.
func retagBody(t *testing.T, s *Server, id string) string {
	t.Helper()
	snap, ok := s.Datasets().Get(id)
	if !ok {
		t.Fatalf("unknown dataset %q", id)
	}
	c := snap.Repo().Courses()[0]
	m := c.Materials[0]
	raw, err := json.Marshal(PatchRequest{Events: []dataset.Event{{
		Op: dataset.OpRetag, Course: c.ID, MaterialID: m.ID,
		Tags: append([]string(nil), m.Tags...),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestDatasetPatch covers the happy path of the delta ingest route:
// the revision bumps, the envelope reports the delta summary and the
// refresh outcome, and the serving layer refreshed delta-wise (not a
// full invalidation).
func TestDatasetPatch(t *testing.T) {
	s := newObsServer(t, Options{})
	putDataset(t, s, "alt", 3)

	// Warm one scoped entry so the refresh has something to reconcile.
	if e, _ := agreementCourses(t, s, "/api/v1/datasets/alt/agreement"); e.Meta.Revision != 1 {
		t.Fatalf("pre-patch revision = %d, want 1", e.Meta.Revision)
	}

	w := do(t, s, http.MethodPatch, "/api/v1/datasets/alt", retagBody(t, s, "alt"))
	if w.Code != http.StatusOK {
		t.Fatalf("PATCH: status %d\n%s", w.Code, w.Body.Bytes())
	}
	var pe patchEnv
	decode(t, w.Body.Bytes(), &pe)
	var m dataset.Meta
	decode(t, pe.Data, &m)
	if m.Revision != 2 {
		t.Errorf("patched revision = %d, want 2", m.Revision)
	}
	if pe.Meta.Delta.Events != 1 || pe.Meta.Delta.Retagged != 1 || len(pe.Meta.Delta.Courses) != 1 {
		t.Errorf("delta summary = %+v", pe.Meta.Delta)
	}
	if pe.Meta.Refresh.Full {
		t.Error("patch refresh reported full invalidation; want delta-driven")
	}

	// The dataset serves the new revision; the engine counted one delta
	// refresh for the patch (the initial PUT was the lone full one).
	if e, n := agreementCourses(t, s, "/api/v1/datasets/alt/agreement"); e.Meta.Revision != 2 || n != 3 {
		t.Errorf("post-patch agreement = rev %d, %d courses; want rev 2, 3", e.Meta.Revision, n)
	}
	st := s.Engine().Stats().Refresh["alt"]
	if st.Delta != 1 || st.Full != 1 {
		t.Errorf("refresh counts = (%d delta, %d full), want (1, 1)", st.Delta, st.Full)
	}

	// A PUT re-ingest of the same dataset refreshes full, not delta.
	putDataset(t, s, "alt", 3)
	st = s.Engine().Stats().Refresh["alt"]
	if st.Delta != 1 || st.Full != 2 {
		t.Errorf("refresh counts after re-ingest = (%d delta, %d full), want (1, 2)", st.Delta, st.Full)
	}
}

// TestDatasetPatchErrors pins the delta route's error envelope:
// malformed bodies and unknown targets map onto the API's uniform
// codes.
func TestDatasetPatchErrors(t *testing.T) {
	s := newObsServer(t, Options{})
	putDataset(t, s, "alt", 3)

	wantErrCode(t, do(t, s, http.MethodPatch, "/api/v1/datasets/alt", `{"events":[]}`),
		http.StatusBadRequest, "bad_request")
	wantErrCode(t, do(t, s, http.MethodPatch, "/api/v1/datasets/alt", `{"nope":1}`),
		http.StatusBadRequest, "bad_request")
	wantErrCode(t, do(t, s, http.MethodPatch, "/api/v1/datasets/ghost", retagBody(t, s, "alt")),
		http.StatusNotFound, "not_found")
	wantErrCode(t, do(t, s, http.MethodPatch, "/api/v1/datasets/alt",
		`{"events":[{"op":"retag","course":"no-such-course","material_id":"x","tags":["AL/Basic Analysis"]}]}`),
		http.StatusBadRequest, "bad_request")
	// A failed delta leaves the revision untouched.
	if snap, _ := s.Datasets().Get("alt"); snap.Revision() != 1 {
		t.Errorf("revision after failed patches = %d, want 1", snap.Revision())
	}
}

// TestDatasetPatchAuth proves PATCH sits behind the same gates as PUT:
// 401 without a key, 403 for the wrong tenant, and a first keyed patch
// claims an unowned dataset.
func TestDatasetPatchAuth(t *testing.T) {
	s := keyedServer(t)
	if w := doKey(t, s, http.MethodPut, "/api/v1/datasets/mine", corpusDoc(t, 3), "alice-secret"); w.Code != 200 {
		t.Fatalf("seed ingest: status %d\n%s", w.Code, w.Body.Bytes())
	}
	body := retagBody(t, s, "mine")
	wantErrCode(t, doKey(t, s, http.MethodPatch, "/api/v1/datasets/mine", body, ""),
		http.StatusUnauthorized, "unauthorized")
	wantErrCode(t, doKey(t, s, http.MethodPatch, "/api/v1/datasets/mine", body, "bob-secret"),
		http.StatusForbidden, "forbidden")
	if w := doKey(t, s, http.MethodPatch, "/api/v1/datasets/mine", body, "alice-secret"); w.Code != 200 {
		t.Fatalf("owner patch: status %d\n%s", w.Code, w.Body.Bytes())
	}
	if w := doKey(t, s, http.MethodPatch, "/api/v1/datasets/mine", retagBody(t, s, "mine"), "root-secret"); w.Code != 200 {
		t.Fatalf("admin patch: status %d\n%s", w.Code, w.Body.Bytes())
	}
}

// TestKeysRotation is the rotation-without-restart contract: after a
// reload, keys removed from the source stop authenticating, new keys
// start, and ownership claimed at runtime persists — revoking alice's
// secret must not orphan alice's dataset.
func TestKeysRotation(t *testing.T) {
	current := &KeysFile{Keys: []APIKey{
		{Key: "alice-secret", Name: "alice"},
		{Key: "root-secret", Name: "root", Admin: true},
	}}
	var mu sync.Mutex
	s := newObsServer(t, Options{
		APIKeys: current,
		ReloadKeys: func() (*KeysFile, error) {
			mu.Lock()
			defer mu.Unlock()
			return current, nil
		},
	})

	// alice ingests and thereby claims "mine" at runtime (no grant in
	// the keys file).
	if w := doKey(t, s, http.MethodPut, "/api/v1/datasets/mine", corpusDoc(t, 3), "alice-secret"); w.Code != 200 {
		t.Fatalf("alice ingest: status %d\n%s", w.Code, w.Body.Bytes())
	}
	if owner := s.Datasets().Attrs("mine").Owner; owner != "alice" {
		t.Fatalf("owner = %q, want alice", owner)
	}

	// Rotate: alice out, carol in; a grant pre-owns "granted" for carol.
	mu.Lock()
	current = &KeysFile{
		Keys: []APIKey{
			{Key: "carol-secret", Name: "carol"},
			{Key: "root-secret", Name: "root", Admin: true},
		},
		Datasets: map[string]DatasetGrant{"granted": {Owner: "carol"}},
	}
	mu.Unlock()

	// Only an admin key may reload.
	wantErrCode(t, doKey(t, s, http.MethodPost, "/api/v1/keys/reload", "", ""),
		http.StatusUnauthorized, "unauthorized")
	wantErrCode(t, doKey(t, s, http.MethodPost, "/api/v1/keys/reload", "", "alice-secret"),
		http.StatusForbidden, "forbidden")
	w := doKey(t, s, http.MethodPost, "/api/v1/keys/reload", "", "root-secret")
	if w.Code != http.StatusOK {
		t.Fatalf("reload: status %d\n%s", w.Code, w.Body.Bytes())
	}
	var re struct {
		Data KeysReloaded `json:"data"`
	}
	decode(t, w.Body.Bytes(), &re)
	if re.Data.Keys != 2 {
		t.Errorf("reloaded keyring size = %d, want 2", re.Data.Keys)
	}

	// The revoked key is dead on the very next request.
	wantErrCode(t, doKey(t, s, http.MethodPut, "/api/v1/datasets/mine", corpusDoc(t, 3), "alice-secret"),
		http.StatusUnauthorized, "unauthorized")
	// alice's runtime claim survived the rotation: carol cannot take the
	// dataset over, an admin still can mutate it.
	if owner := s.Datasets().Attrs("mine").Owner; owner != "alice" {
		t.Fatalf("owner after rotation = %q, want alice", owner)
	}
	wantErrCode(t, doKey(t, s, http.MethodPut, "/api/v1/datasets/mine", corpusDoc(t, 2), "carol-secret"),
		http.StatusForbidden, "forbidden")
	if w := doKey(t, s, http.MethodPut, "/api/v1/datasets/mine", corpusDoc(t, 2), "root-secret"); w.Code != 200 {
		t.Fatalf("admin ingest after rotation: status %d\n%s", w.Code, w.Body.Bytes())
	}
	// The new key works, and the reloaded grant pre-owns its dataset.
	wantErrCode(t, doKey(t, s, http.MethodPut, "/api/v1/datasets/granted", corpusDoc(t, 2), "root2"),
		http.StatusUnauthorized, "unauthorized")
	if w := doKey(t, s, http.MethodPut, "/api/v1/datasets/granted", corpusDoc(t, 2), "carol-secret"); w.Code != 200 {
		t.Fatalf("carol ingest of granted dataset: status %d\n%s", w.Code, w.Body.Bytes())
	}
}

// TestKeysReloadStatic pins the no-reload-source behavior: a keyring
// loaded once with no ReloadKeys answers 409 keys_static (after the
// admin gate), and an open-mode server without a source does too.
func TestKeysReloadStatic(t *testing.T) {
	wantErrCode(t, doKey(t, keyedServer(t), http.MethodPost, "/api/v1/keys/reload", "", "root-secret"),
		http.StatusConflict, "keys_static")
	wantErrCode(t, do(t, newObsServer(t, Options{}), http.MethodPost, "/api/v1/keys/reload", ""),
		http.StatusConflict, "keys_static")
}

// TestConcurrentPatchVsReadersVsRefresh extends the PR 6 torn-read
// test to the delta path: PATCH deltas land while readers hammer a
// scoped analysis and background warmups (spawned by each patch)
// recompute — all under -race. Readers must always see a complete
// 3-course corpus from exactly one revision.
func TestConcurrentPatchVsReadersVsRefresh(t *testing.T) {
	// Warmup stays enabled: every patch spawns a background warmDataset,
	// which is exactly the delta-refresh / reader / warmer interleaving
	// the race detector should chew on.
	s, err := NewWithOptions(Options{})
	if err != nil {
		t.Fatal(err)
	}
	putDataset(t, s, "alt", 3)

	const readers, patches = 4, 6
	var wg sync.WaitGroup
	errs := make(chan string, readers*64)
	stop := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := do(t, s, http.MethodGet, "/api/v1/datasets/alt/agreement", "")
				if w.Code != http.StatusOK {
					errs <- fmt.Sprintf("reader status %d: %s", w.Code, w.Body.Bytes())
					return
				}
				var e dsEnv
				if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
					errs <- err.Error()
					return
				}
				var data struct {
					Courses []string `json:"courses"`
				}
				if err := json.Unmarshal(e.Data, &data); err != nil {
					errs <- err.Error()
					return
				}
				if len(data.Courses) != 3 {
					errs <- fmt.Sprintf("torn read: %d courses (rev %d)", len(data.Courses), e.Meta.Revision)
					return
				}
			}
		}()
	}
	for i := 0; i < patches; i++ {
		w := do(t, s, http.MethodPatch, "/api/v1/datasets/alt", retagBody(t, s, "alt"))
		if w.Code != http.StatusOK {
			t.Errorf("patch %d: status %d\n%s", i, w.Code, w.Body.Bytes())
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	s.DrainBackground()

	// Epilogue: the final revision serves, and every refresh was
	// delta-driven (the initial PUT is the lone full refresh).
	e, n := agreementCourses(t, s, "/api/v1/datasets/alt/agreement")
	if e.Meta.Revision != uint64(patches)+1 || n != 3 {
		t.Errorf("final agreement = rev %d, %d courses; want rev %d, 3", e.Meta.Revision, n, patches+1)
	}
	st := s.Engine().Stats().Refresh["alt"]
	if st.Delta != patches {
		t.Errorf("delta refreshes = %d, want %d", st.Delta, patches)
	}
}
