package server

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// fleetBenchRecorder accumulates fleet-serving results across b.Run
// invocations so TestMain can fold them into BENCH_datasets.json after
// the run. Keyed by scenario so only the final (highest-N) sample
// survives, mirroring internal/engine's recorder.
var fleetBenchRecorder = struct {
	sync.Mutex
	scenarios map[string]fleetBenchScenario
}{scenarios: map[string]fleetBenchScenario{}}

type fleetBenchScenario struct {
	Dataset    string `json:"dataset"`
	Mode       string `json:"mode"`
	NsPerOp    int64  `json:"ns_per_op"`
	Iterations int    `json:"iterations"`
}

func recordFleetBench(dataset, mode string, b *testing.B) {
	fleetBenchRecorder.Lock()
	defer fleetBenchRecorder.Unlock()
	fleetBenchRecorder.scenarios[dataset+"/"+mode] = fleetBenchScenario{
		Dataset:    dataset,
		Mode:       mode,
		NsPerOp:    b.Elapsed().Nanoseconds() / int64(b.N),
		Iterations: b.N,
	}
}

// benchSnapshot mirrors the BENCH_datasets.json shape owned by
// internal/engine's TestMain.
type benchSnapshot struct {
	Benchmark string               `json:"benchmark"`
	GoOS      string               `json:"goos"`
	GoArch    string               `json:"goarch"`
	CPUs      int                  `json:"cpus"`
	Scenarios []fleetBenchScenario `json:"scenarios"`
}

// TestMain merges the fleet serving scenarios into the snapshot named
// by BENCH_JSON. Unlike internal/engine (which owns the file and
// rewrites it wholesale), this package runs second in `make
// bench-datasets` and must preserve the engine's scenarios — so it
// reads the existing snapshot, replaces only its own fleet/* entries,
// and writes the merge back. Plain `go test` runs write nothing.
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_JSON"); path != "" && len(fleetBenchRecorder.scenarios) > 0 {
		if err := mergeBenchSnapshot(path); err != nil {
			os.Stderr.WriteString("bench snapshot: " + err.Error() + "\n")
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

func mergeBenchSnapshot(path string) error {
	snap := benchSnapshot{
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &snap); err != nil {
			return err
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	merged := map[string]fleetBenchScenario{}
	for _, sc := range snap.Scenarios {
		merged[sc.Dataset+"/"+sc.Mode] = sc
	}
	fleetBenchRecorder.Lock()
	for k, sc := range fleetBenchRecorder.scenarios {
		merged[k] = sc
	}
	fleetBenchRecorder.Unlock()
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap.Scenarios = snap.Scenarios[:0]
	for _, k := range keys {
		snap.Scenarios = append(snap.Scenarios, merged[k])
	}
	if snap.Benchmark == "" {
		snap.Benchmark = "BenchmarkFleetServing"
	} else if !containsBench(snap.Benchmark, "BenchmarkFleetServing") {
		snap.Benchmark += ",BenchmarkFleetServing"
	}
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func containsBench(list, name string) bool {
	for i := 0; i+len(name) <= len(list); i++ {
		if list[i:i+len(name)] == name &&
			(i == 0 || list[i-1] == ',') &&
			(i+len(name) == len(list) || list[i+len(name)] == ',') {
			return true
		}
	}
	return false
}

// BenchmarkFleetServing measures the warm serving path through a
// 2-replica fleet over real loopback HTTP, in the two shapes a request
// can take: "local" (the front door IS the key's owner — one HTTP hop,
// then a cache hit on the local ladder) and "forwarded" (the front
// door is a non-owner — one extra owner hop before the same cache
// hit). The forwarded/local gap is the fleet layer's per-request
// routing tax; cmd/benchcheck gates the ratio so a forwarding
// regression (lost keep-alives, double reads, chatty handshake) fails
// CI even though absolute loopback latencies drift with the runner.
func BenchmarkFleetServing(b *testing.B) {
	servers, tss := newFleetCluster(b, []string{"a", "b"})
	path := agreementPathOwnedBy(b, servers["a"], "a")
	client := &http.Client{}

	// One request through the owner populates its cache; everything
	// measured after this is a warm hit.
	warm := func(front string, wantOwnerHeader bool) {
		resp, err := client.Get(tss[front].URL + path)
		if err != nil {
			b.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("GET via %s: status %d\n%s", front, resp.StatusCode, body)
		}
		if wantOwnerHeader && resp.Header.Get("X-CSM-Owner") != "a" {
			b.Fatalf("GET via %s: X-CSM-Owner = %q, want a", front, resp.Header.Get("X-CSM-Owner"))
		}
	}
	warm("a", false)

	for _, bc := range []struct {
		mode  string
		front string
	}{
		{"local", "a"},     // front door owns the key
		{"forwarded", "b"}, // front door forwards to the owner
	} {
		b.Run("fleet/"+bc.mode, func(b *testing.B) {
			warm(bc.front, bc.mode == "forwarded") // prove the route before timing it
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Get(tss[bc.front].URL + path)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
			b.StopTimer()
			recordFleetBench("fleet", bc.mode, b)
		})
	}

	if st := servers["b"].Fleet().Stats(); st.LocalFallbacks != 0 {
		b.Fatalf("forwarded mode fell back locally %d times; the benchmark measured the wrong path", st.LocalFallbacks)
	}
}
