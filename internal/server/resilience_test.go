package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csmaterials/internal/resilience/faultinject"
	"csmaterials/internal/serving"
)

// waitFor polls cond until true or a 5s budget runs out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("never happened: %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// fakeClock is a manually advanced time source for breaker cooldowns.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestShedderRejects429UnderOverload is degradation stage 1: the fault
// injector holds one in-flight request on a channel, and with
// MaxInFlight 1 the next request is shed immediately with 429 and a
// Retry-After hint instead of queueing behind the slow one.
func TestShedderRejects429UnderOverload(t *testing.T) {
	hold := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(hold)
		}
	}()
	inj := faultinject.New(1, faultinject.Rule{Match: "/api/v1/courses", Probability: 1, Hold: hold})
	s, err := NewWithOptions(Options{MaxInFlight: 1, Faults: inj, disableWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	firstStatus := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/api/v1/courses")
		if err != nil {
			firstStatus <- -1
			return
		}
		resp.Body.Close()
		firstStatus <- resp.StatusCode
	}()
	waitFor(t, "held request admitted", func() bool { return s.limiter.InFlight() == 1 })

	// The server is at capacity: this request is rejected before any
	// work happens on its behalf.
	resp, body := get(t, ts, "/api/v1/courses")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429\n%s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var e errEnv
	decode(t, body, &e)
	if e.Error.Code != "capacity" {
		t.Fatalf("error envelope = %+v", e)
	}

	// Liveness and observability stay reachable while the API sheds.
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != 200 {
		t.Fatal("healthz shed under load")
	}

	released = true
	close(hold)
	if got := <-firstStatus; got != 200 {
		t.Fatalf("held request finished with %d", got)
	}

	// The shed shows up in /debug/metrics' resilience section and in
	// the per-route 429 accounting.
	var snap serving.Snapshot
	_, mbody := get(t, ts, "/debug/metrics")
	decode(t, mbody, &snap)
	if snap.Resilience == nil || snap.Resilience.Shedder.Shed < 1 {
		t.Fatalf("resilience snapshot = %+v", snap.Resilience)
	}
	if snap.Routes["GET /api/v1/courses"].ByStatus["429"] != 1 {
		t.Fatalf("route stats = %+v", snap.Routes["GET /api/v1/courses"])
	}
}

// TestBreakerAndStaleDegradation walks stages 2 and 3 of the ladder
// end to end under injected compute failures: stale serving while the
// compute path fails, the circuit opening after the failure threshold,
// fail-fast 503s for keys with no stale fallback, and half-open probe
// recovery once the faults clear and the cooldown elapses.
func TestBreakerAndStaleDegradation(t *testing.T) {
	clk := newFakeClock()
	inj := faultinject.New(1)
	s, err := NewWithOptions(Options{
		CacheSize:        8,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
		Faults:           inj,
		disableWarmup:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.breakers.SetClock(clk.Now)
	var calls int32
	countCompute(t, s, "types", &calls)
	s.warmup(context.Background()) // synchronous: /readyz is usable for breaker reporting
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Healthy: prime the cache, then wipe the fresh entries so the
	// only remaining copy is the stale last-known-good one.
	e := getEnvelope(t, ts, "/api/v1/types?group=cs1&k=3", 200)
	if e.Meta.Cache != "miss" || e.Meta.Stale {
		t.Fatalf("prime meta = %+v", e.Meta)
	}
	s.Cache().Reset()

	// Stage: compute failures. Every types compute now fails before
	// reaching factorize.Analyze.
	inj.SetRules(faultinject.Rule{Match: "compute/types", Probability: 1, Status: 500})

	// Failing computes degrade to the stale copy instead of erroring.
	for i := 0; i < 3; i++ {
		resp, body := get(t, ts, "/api/v1/types?group=cs1&k=3")
		if resp.StatusCode != 200 {
			t.Fatalf("request %d during failures: status %d\n%s", i, resp.StatusCode, body)
		}
		if resp.Header.Get("X-Served-Stale") != "true" {
			t.Fatalf("request %d: no X-Served-Stale header", i)
		}
		var se env
		decode(t, body, &se)
		if se.Meta.Cache != "stale" || !se.Meta.Stale {
			t.Fatalf("request %d meta = %+v", i, se.Meta)
		}
	}

	// Three consecutive failures: the types circuit is open, and
	// /readyz reports it.
	waitFor(t, "types breaker open", func() bool {
		return s.breakers.Get("types").Stats().State == "open"
	})
	re := getEnvelope(t, ts, "/readyz", 200)
	var ready struct {
		Status   string `json:"status"`
		Breakers map[string]struct {
			State string `json:"state"`
		} `json:"breakers"`
	}
	decode(t, re.Data, &ready)
	if ready.Status != "ready" || ready.Breakers["types"].State != "open" {
		t.Fatalf("readyz = %+v", ready)
	}

	// Open circuit, no stale fallback for this key: fail fast with 503
	// + Retry-After, without attempting the compute.
	resp, body := get(t, ts, "/api/v1/types?group=cs1&k=5")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("uncached key under open circuit: status %d\n%s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("circuit_open 503 without Retry-After")
	}
	var ee errEnv
	decode(t, body, &ee)
	if ee.Error.Code != "circuit_open" {
		t.Fatalf("error envelope = %+v", ee)
	}

	// The stale key still serves while open; other analyses' breakers
	// are untouched (independent circuits).
	resp, _ = get(t, ts, "/api/v1/types?group=cs1&k=3")
	if resp.StatusCode != 200 || resp.Header.Get("X-Served-Stale") != "true" {
		t.Fatalf("stale serve under open circuit: status %d stale=%q", resp.StatusCode, resp.Header.Get("X-Served-Stale"))
	}
	if getEnvelope(t, ts, "/api/v1/cluster?group=cs1&k=2", 200); s.breakers.Get("cluster").Stats().State != "closed" {
		t.Fatal("cluster breaker affected by types failures")
	}
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("types Compute ran %d times; the breaker/injector should have kept it at the 1 priming call", n)
	}

	// /debug/metrics exposes breaker state and the stale-served count.
	var snap serving.Snapshot
	_, mbody := get(t, ts, "/debug/metrics")
	decode(t, mbody, &snap)
	if snap.Resilience == nil || snap.Resilience.Breakers["types"].State != "open" {
		t.Fatalf("metrics breakers = %+v", snap.Resilience)
	}
	if snap.Cache == nil || snap.Cache.StaleServed < 4 {
		t.Fatalf("metrics cache = %+v", snap.Cache)
	}

	// Recovery: faults clear and the cooldown elapses. The next
	// request is admitted as the half-open probe, succeeds, and closes
	// the circuit; responses are fresh again.
	inj.SetRules()
	clk.Advance(time.Minute + time.Second)
	waitFor(t, "fresh non-stale response after recovery", func() bool {
		resp, body := get(t, ts, "/api/v1/types?group=cs1&k=3")
		if resp.StatusCode != 200 || resp.Header.Get("X-Served-Stale") == "true" {
			return false
		}
		var fe env
		decode(t, body, &fe)
		return !fe.Meta.Stale
	})
	if st := s.breakers.Get("types").Stats(); st.State != "closed" {
		t.Fatalf("breaker after successful probe = %+v", st)
	}
	if n := atomic.LoadInt32(&calls); n != 2 {
		t.Fatalf("types Compute ran %d times, want 2 (prime + recovery probe)", n)
	}
}

// TestStaleServeDisabled: with DisableStaleServe the same failure
// surfaces as an error instead of a degraded 200.
func TestStaleServeDisabled(t *testing.T) {
	inj := faultinject.New(1)
	s, err := NewWithOptions(Options{DisableStaleServe: true, Faults: inj, disableWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	getEnvelope(t, ts, "/api/v1/cluster?group=cs1&k=2", 200)
	s.Cache().Reset()
	inj.SetRules(faultinject.Rule{Match: "compute/cluster", Probability: 1, Status: 500})
	resp, body := get(t, ts, "/api/v1/cluster?group=cs1&k=2")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 with stale serving disabled\n%s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Served-Stale") != "" {
		t.Fatal("X-Served-Stale set on an error response")
	}
}

// TestReadyzFlips: /readyz is 503 before the warmup completes and 200
// after, while /healthz is 200 throughout (liveness != readiness).
func TestReadyzFlips(t *testing.T) {
	s, err := NewWithOptions(Options{disableWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, body := get(t, ts, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-warmup readyz = %d\n%s", resp.StatusCode, body)
	}
	var e env
	decode(t, body, &e)
	var ready struct {
		Status string `json:"status"`
	}
	decode(t, e.Data, &ready)
	if ready.Status != "starting" {
		t.Fatalf("pre-warmup status = %q", ready.Status)
	}
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != 200 {
		t.Fatal("healthz not 200 while starting")
	}

	s.warmup(context.Background())
	e = getEnvelope(t, ts, "/readyz", 200)
	decode(t, e.Data, &ready)
	if ready.Status != "ready" {
		t.Fatalf("post-warmup status = %q", ready.Status)
	}

	// The warmup populated the agreement cache: the first real request
	// for the warmed key is already a hit.
	ae := getEnvelope(t, ts, "/api/v1/agreement?group=all&threshold=2", 200)
	if ae.Meta.Cache != "hit" {
		t.Fatalf("warmed agreement request meta = %+v", ae.Meta)
	}
}

// TestReadyzDefaultWarmup: the default constructor warms up on its own
// and becomes ready without manual intervention.
func TestReadyzDefaultWarmup(t *testing.T) {
	_, ts := newTestServer(t)
	waitFor(t, "server became ready", func() bool {
		resp, _ := get(t, ts, "/readyz")
		return resp.StatusCode == 200
	})
}
