package server

import (
	"context"
	"time"

	"csmaterials/internal/dataset"
)

// Idle reclamation. A tenant that stops querying still pins a lazy
// search index and warm cache entries. When Options.IdleTTL is
// positive, datasets (except the default — it backs the un-scoped
// aliases and gates /readyz) that have gone unqueried for the TTL have
// both reclaimed: the search index is dropped, the dataset's cache
// entries (fresh + stale, all revisions) are invalidated, and /readyz
// reports the dataset "idle". Per-scope cache counters survive — the
// dataset still exists; only its warm state is released. The next
// query rebuilds lazily and flips the state back to "ready". The clock
// is injectable (Options.clock) so tests drive reclamation
// deterministically; the background reaper only runs when cmd/serve
// starts it via StartIdleReaper.

// touchDataset records query activity on id and, if the dataset had
// been idle-reclaimed, marks it live again.
func (s *Server) touchDataset(id string) {
	if s.idleTTL <= 0 {
		return
	}
	s.idleMu.Lock()
	s.lastAccess[id] = s.clock()
	wasReclaimed := s.reclaimed[id]
	if wasReclaimed {
		delete(s.reclaimed, id)
	}
	s.idleMu.Unlock()
	if wasReclaimed {
		s.setDatasetState(id, DatasetReady{Status: "ready"})
	}
}

// dropIdleTracking forgets a deleted dataset's idle accounting.
func (s *Server) dropIdleTracking(id string) {
	s.idleMu.Lock()
	delete(s.lastAccess, id)
	delete(s.reclaimed, id)
	delete(s.idleReclaims, id)
	s.idleMu.Unlock()
}

// reclaimIdle sweeps every non-default dataset idle at now and
// reclaims its warm state, returning the IDs reclaimed this pass.
func (s *Server) reclaimIdle(now time.Time) []string {
	if s.idleTTL <= 0 {
		return nil
	}
	var idle []string
	s.idleMu.Lock()
	for _, id := range s.datasets.IDs() {
		if id == dataset.DefaultID || s.reclaimed[id] {
			continue
		}
		last, touched := s.lastAccess[id]
		if !touched {
			// Never queried: start the idle clock at first sight so a
			// dataset ingested and abandoned is still reclaimed.
			s.lastAccess[id] = now
			continue
		}
		if now.Sub(last) >= s.idleTTL {
			s.reclaimed[id] = true
			s.idleReclaims[id]++
			idle = append(idle, id)
		}
	}
	s.idleMu.Unlock()
	for _, id := range idle {
		s.dropSearcher(id)
		s.exec.InvalidateDataset(id, 0)
		s.setDatasetState(id, DatasetReady{Status: "idle"})
	}
	return idle
}

// idleReclaimTotals snapshots the per-dataset reclaim counters for the
// csm_dataset_idle_reclaims_total family.
func (s *Server) idleReclaimTotals() map[string]uint64 {
	s.idleMu.Lock()
	defer s.idleMu.Unlock()
	out := make(map[string]uint64, len(s.idleReclaims))
	for id, n := range s.idleReclaims {
		out[id] = n
	}
	return out
}

// StartIdleReaper launches the background sweep (every IdleTTL/4,
// bounded to [1s, 1m]) until ctx is done. cmd/serve calls this;
// servers built without it never start the goroutine, so tests and
// libraries stay leak-free and drive reclaimIdle directly.
func (s *Server) StartIdleReaper(ctx context.Context) {
	if s.idleTTL <= 0 {
		return
	}
	interval := s.idleTTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				s.reclaimIdle(s.clock())
			}
		}
	}()
}
