package server

import (
	"net/http"
	"sort"
	"strconv"

	"csmaterials/internal/dataset"
	"csmaterials/internal/engine"
	"csmaterials/internal/obs"
	"csmaterials/internal/resilience"
	"csmaterials/internal/serving"
)

// handleProm serves GET /metrics in Prometheus text exposition format:
// the per-route HTTP histograms, the cache/shedder/breaker/engine
// counters that /debug/metrics serves as JSON, and the per-analysis
// per-stage latency histograms aggregated from request traces.
func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	fams := s.promFamilies()
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	w.WriteHeader(http.StatusOK)
	_ = obs.WriteExposition(w, fams)
}

// promFamilies assembles every metric family in fixed family order
// with sorted label sets, so the exposition shape (names, types,
// label keys) is stable across runs and scrape-diffable.
func (s *Server) promFamilies() []obs.Family {
	var fams []obs.Family

	// HTTP layer: uptime, in-flight, per-route counters + histograms.
	ex := s.metrics.Export()
	fams = append(fams,
		obs.Family{Name: "csm_uptime_seconds", Help: "Seconds since the metrics registry was created.", Type: obs.Gauge,
			Samples: []obs.Sample{{Value: ex.UptimeSeconds}}},
		obs.Family{Name: "csm_http_in_flight", Help: "Requests currently being served.", Type: obs.Gauge,
			Samples: []obs.Sample{{Value: float64(ex.InFlight)}}},
	)
	reqs := obs.Family{Name: "csm_http_requests_total", Help: "Completed requests by route pattern and status code.", Type: obs.Counter}
	for _, rt := range ex.Routes {
		for _, sc := range rt.ByStatus {
			reqs.Samples = append(reqs.Samples, obs.Sample{
				Labels: []obs.Label{{Name: "route", Value: rt.Route}, {Name: "status", Value: strconv.Itoa(sc.Status)}},
				Value:  float64(sc.Count),
			})
		}
	}
	fams = append(fams, reqs)

	boundsMS := serving.LatencyBoundsMS()
	boundsSec := make([]float64, len(boundsMS))
	for i, b := range boundsMS {
		boundsSec[i] = b / 1000
	}
	durs := obs.Family{Name: "csm_http_request_duration_seconds", Help: "Request latency by route pattern.", Type: obs.Histogram}
	for _, rt := range ex.Routes {
		durs.Samples = append(durs.Samples, obs.HistogramSamples(
			[]obs.Label{{Name: "route", Value: rt.Route}},
			boundsSec, rt.BucketCounts, rt.TotalMS/1000, rt.Count)...)
	}
	fams = append(fams, durs)

	// Cache: global aggregates, then the per-dataset partition so one
	// tenant's budget pressure is visible in isolation.
	cs := s.cache.Stats()
	fams = append(fams,
		counterFam("csm_cache_hits_total", "Fresh-cache hits.", cs.Hits),
		counterFam("csm_cache_misses_total", "Fresh-cache misses.", cs.Misses),
		counterFam("csm_cache_shared_flights_total", "Requests answered by another caller's singleflight.", cs.Shared),
		counterFam("csm_cache_evictions_total", "Fresh-cache LRU evictions.", cs.Evictions),
		counterFam("csm_cache_stale_served_total", "Degraded last-known-good serves.", cs.StaleServed),
		gaugeFam("csm_cache_size", "Fresh entries currently retained.", float64(cs.Size)),
		gaugeFam("csm_cache_capacity", "Fresh-cache capacity.", float64(cs.Capacity)),
		gaugeFam("csm_cache_stale_size", "Stale last-known-good entries retained.", float64(cs.StaleSize)),
	)
	// As with the tenant families below, a single-tenant deployment
	// (only the default dataset's scope) keeps the legacy exposition.
	_, cacheOnlyDefault := cs.Scopes[dataset.DefaultID]
	if len(cs.Scopes) > 1 || (len(cs.Scopes) == 1 && !cacheOnlyDefault) {
		scopes := make([]string, 0, len(cs.Scopes))
		for scope := range cs.Scopes {
			scopes = append(scopes, scope)
		}
		sort.Strings(scopes)
		dcBudget := obs.Family{Name: "csm_dataset_cache_budget", Help: "Fresh-entry cache budget per dataset.", Type: obs.Gauge}
		dcSize := obs.Family{Name: "csm_dataset_cache_size", Help: "Fresh entries retained per dataset.", Type: obs.Gauge}
		dcStale := obs.Family{Name: "csm_dataset_cache_stale_size", Help: "Stale entries retained per dataset.", Type: obs.Gauge}
		dcHits := obs.Family{Name: "csm_dataset_cache_hits_total", Help: "Fresh-cache hits per dataset.", Type: obs.Counter}
		dcMisses := obs.Family{Name: "csm_dataset_cache_misses_total", Help: "Fresh-cache misses per dataset.", Type: obs.Counter}
		dcEvict := obs.Family{Name: "csm_dataset_cache_evictions_total", Help: "Budget-scoped LRU evictions per dataset.", Type: obs.Counter}
		dcStaleServed := obs.Family{Name: "csm_dataset_cache_stale_served_total", Help: "Degraded stale serves per dataset.", Type: obs.Counter}
		for _, scope := range scopes {
			sc := cs.Scopes[scope]
			l := []obs.Label{{Name: "dataset", Value: scope}}
			dcBudget.Samples = append(dcBudget.Samples, obs.Sample{Labels: l, Value: float64(sc.Budget)})
			dcSize.Samples = append(dcSize.Samples, obs.Sample{Labels: l, Value: float64(sc.Size)})
			dcStale.Samples = append(dcStale.Samples, obs.Sample{Labels: l, Value: float64(sc.StaleSize)})
			dcHits.Samples = append(dcHits.Samples, obs.Sample{Labels: l, Value: float64(sc.Hits)})
			dcMisses.Samples = append(dcMisses.Samples, obs.Sample{Labels: l, Value: float64(sc.Misses)})
			dcEvict.Samples = append(dcEvict.Samples, obs.Sample{Labels: l, Value: float64(sc.Evictions)})
			dcStaleServed.Samples = append(dcStaleServed.Samples, obs.Sample{Labels: l, Value: float64(sc.StaleServed)})
		}
		fams = append(fams, dcBudget, dcSize, dcStale, dcHits, dcMisses, dcEvict, dcStaleServed)
	}

	// Resilience: two-level admission limiter (global + per-tenant
	// quotas) + per-analysis breakers.
	sh, tenants := s.limiter.Stats()
	fams = append(fams,
		gaugeFam("csm_shed_max_in_flight", "In-flight bound before shedding (0 = unlimited).", float64(sh.MaxInFlight)),
		gaugeFam("csm_shed_in_flight", "Requests currently inside the shedder.", float64(sh.InFlight)),
		counterFam("csm_shed_admitted_total", "Requests admitted by the load shedder.", sh.Admitted),
		counterFam("csm_shed_rejected_total", "Requests shed with 429 (capacity + quota).", sh.Shed),
	)
	// Single-tenant deployments (only the default dataset) keep the
	// legacy exposition: no per-tenant admission families.
	_, onlyDefault := tenants[dataset.DefaultID]
	multiTenant := len(tenants) > 1 || (len(tenants) == 1 && !onlyDefault)
	if multiTenant {
		ids := make([]string, 0, len(tenants))
		for id := range tenants {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		tQuota := obs.Family{Name: "csm_tenant_quota", Help: "In-flight admission quota per dataset (0 = unlimited).", Type: obs.Gauge}
		tInFlight := obs.Family{Name: "csm_tenant_in_flight", Help: "Requests currently admitted per dataset.", Type: obs.Gauge}
		tAdmitted := obs.Family{Name: "csm_tenant_admitted_total", Help: "Requests admitted per dataset.", Type: obs.Counter}
		tShed := obs.Family{Name: "csm_tenant_shed_total", Help: "Requests shed per dataset (capacity + quota).", Type: obs.Counter}
		tShedQuota := obs.Family{Name: "csm_tenant_shed_quota_total", Help: "Requests shed per dataset for exceeding its own quota.", Type: obs.Counter}
		for _, id := range ids {
			tn := tenants[id]
			l := []obs.Label{{Name: "dataset", Value: id}}
			tQuota.Samples = append(tQuota.Samples, obs.Sample{Labels: l, Value: float64(tn.Quota)})
			tInFlight.Samples = append(tInFlight.Samples, obs.Sample{Labels: l, Value: float64(tn.InFlight)})
			tAdmitted.Samples = append(tAdmitted.Samples, obs.Sample{Labels: l, Value: float64(tn.Admitted)})
			tShed.Samples = append(tShed.Samples, obs.Sample{Labels: l, Value: float64(tn.Shed)})
			tShedQuota.Samples = append(tShedQuota.Samples, obs.Sample{Labels: l, Value: float64(tn.ShedQuota)})
		}
		fams = append(fams, tQuota, tInFlight, tAdmitted, tShed, tShedQuota)
	}
	if s.breakers != nil {
		bs := s.breakers.Stats()
		names := make([]string, 0, len(bs))
		for name := range bs {
			names = append(names, name)
		}
		sort.Strings(names)
		state := obs.Family{Name: "csm_breaker_state", Help: "Circuit state per (dataset, analysis): 0 closed, 1 half-open, 2 open.", Type: obs.Gauge}
		var succ, fail, rej, opens obs.Family
		succ = obs.Family{Name: "csm_breaker_successes_total", Help: "Recorded successes per (dataset, analysis) breaker.", Type: obs.Counter}
		fail = obs.Family{Name: "csm_breaker_failures_total", Help: "Recorded failures per (dataset, analysis) breaker.", Type: obs.Counter}
		rej = obs.Family{Name: "csm_breaker_rejected_total", Help: "Requests rejected by an open circuit per (dataset, analysis).", Type: obs.Counter}
		opens = obs.Family{Name: "csm_breaker_opens_total", Help: "Times each (dataset, analysis) circuit opened.", Type: obs.Counter}
		for _, name := range names {
			b := bs[name]
			l := scopeLabels(name)
			state.Samples = append(state.Samples, obs.Sample{Labels: l, Value: breakerStateValue(b.State)})
			succ.Samples = append(succ.Samples, obs.Sample{Labels: l, Value: float64(b.Successes)})
			fail.Samples = append(fail.Samples, obs.Sample{Labels: l, Value: float64(b.Failures)})
			rej.Samples = append(rej.Samples, obs.Sample{Labels: l, Value: float64(b.Rejected)})
			opens.Samples = append(opens.Samples, obs.Sample{Labels: l, Value: float64(b.Opens)})
		}
		fams = append(fams, state, succ, fail, rej, opens)
	}

	// Engine executor: per-(dataset, analysis) compute accounting +
	// batch totals. Scope keys sort before splitting, so the sample
	// order is deterministic even though it is not label-lexicographic.
	es := s.exec.Stats()
	names := make([]string, 0, len(es.Analyses))
	for name := range es.Analyses {
		names = append(names, name)
	}
	sort.Strings(names)
	computes := obs.Family{Name: "csm_analysis_computes_total", Help: "Computes started per (dataset, analysis).", Type: obs.Counter}
	failures := obs.Family{Name: "csm_analysis_failures_total", Help: "Compute failures per (dataset, analysis).", Type: obs.Counter}
	stale := obs.Family{Name: "csm_analysis_stale_served_total", Help: "Stale serves per (dataset, analysis).", Type: obs.Counter}
	hits := obs.Family{Name: "csm_analysis_cache_hits_total", Help: "Requests served from cache or a shared flight per (dataset, analysis).", Type: obs.Counter}
	misses := obs.Family{Name: "csm_analysis_cache_misses_total", Help: "Requests that computed per (dataset, analysis).", Type: obs.Counter}
	for _, name := range names {
		a := es.Analyses[name]
		l := scopeLabels(name)
		computes.Samples = append(computes.Samples, obs.Sample{Labels: l, Value: float64(a.Computes)})
		failures.Samples = append(failures.Samples, obs.Sample{Labels: l, Value: float64(a.Failures)})
		stale.Samples = append(stale.Samples, obs.Sample{Labels: l, Value: float64(a.StaleServed)})
		hits.Samples = append(hits.Samples, obs.Sample{Labels: l, Value: float64(a.CacheHits)})
		misses.Samples = append(misses.Samples, obs.Sample{Labels: l, Value: float64(a.CacheMisses)})
	}
	fams = append(fams, computes, failures, stale, hits, misses,
		counterFam("csm_batch_calls_total", "Batch requests served.", es.BatchCalls),
		counterFam("csm_batch_items_total", "Batch items executed.", es.BatchItems),
		gaugeFam("csm_batch_workers", "Configured batch worker-pool size.", float64(es.BatchWorkers)),
	)

	// Incremental refresh: per-dataset delta/full refresh accounting,
	// invalidation precision, and warm-start convergence. Emitted only
	// once a dataset has refreshed, so cold single-tenant scrapes keep
	// the legacy exposition.
	if len(es.Refresh) > 0 {
		refreshIDs := make([]string, 0, len(es.Refresh))
		for id := range es.Refresh {
			refreshIDs = append(refreshIDs, id)
		}
		sort.Strings(refreshIDs)
		rfTotal := obs.Family{Name: "csm_refresh_total", Help: "Serving-layer refreshes per dataset by kind (delta = event-driven, full = whole-dataset invalidation).", Type: obs.Counter}
		rfInval := obs.Family{Name: "csm_refresh_invalidated_total", Help: "Cache entries dropped by refreshes per dataset, by store.", Type: obs.Counter}
		rfMigrated := obs.Family{Name: "csm_refresh_migrated_total", Help: "Cache entries migrated to a new revision unchanged per dataset.", Type: obs.Counter}
		rfSeeded := obs.Family{Name: "csm_refresh_seeded_total", Help: "Warm-start priors retained from dropped entries per dataset.", Type: obs.Counter}
		rfWarm := obs.Family{Name: "csm_refresh_warm_starts_total", Help: "Recomputes answered warm from a retained prior per dataset.", Type: obs.Counter}
		rfFallback := obs.Family{Name: "csm_refresh_warm_fallbacks_total", Help: "Warm-start priors declined (cold recompute ran) per dataset.", Type: obs.Counter}
		rfIters := obs.Family{Name: "csm_refresh_iterations_total", Help: "Iterations-to-converge accumulated per dataset by compute mode.", Type: obs.Counter}
		for _, id := range refreshIDs {
			rs := es.Refresh[id]
			l := []obs.Label{{Name: "dataset", Value: id}}
			rfTotal.Samples = append(rfTotal.Samples,
				obs.Sample{Labels: []obs.Label{{Name: "dataset", Value: id}, {Name: "kind", Value: "delta"}}, Value: float64(rs.Delta)},
				obs.Sample{Labels: []obs.Label{{Name: "dataset", Value: id}, {Name: "kind", Value: "full"}}, Value: float64(rs.Full)})
			rfInval.Samples = append(rfInval.Samples,
				obs.Sample{Labels: []obs.Label{{Name: "dataset", Value: id}, {Name: "store", Value: "fresh"}}, Value: float64(rs.InvalidatedFresh)},
				obs.Sample{Labels: []obs.Label{{Name: "dataset", Value: id}, {Name: "store", Value: "stale"}}, Value: float64(rs.InvalidatedStale)})
			rfMigrated.Samples = append(rfMigrated.Samples, obs.Sample{Labels: l, Value: float64(rs.Migrated)})
			rfSeeded.Samples = append(rfSeeded.Samples, obs.Sample{Labels: l, Value: float64(rs.Seeded)})
			rfWarm.Samples = append(rfWarm.Samples, obs.Sample{Labels: l, Value: float64(rs.WarmStarts)})
			rfFallback.Samples = append(rfFallback.Samples, obs.Sample{Labels: l, Value: float64(rs.WarmFallbacks)})
			rfIters.Samples = append(rfIters.Samples,
				obs.Sample{Labels: []obs.Label{{Name: "dataset", Value: id}, {Name: "mode", Value: "cold"}}, Value: float64(rs.ColdIterations)},
				obs.Sample{Labels: []obs.Label{{Name: "dataset", Value: id}, {Name: "mode", Value: "warm"}}, Value: float64(rs.WarmIterations)})
		}
		fams = append(fams, rfTotal, rfInval, rfMigrated, rfSeeded, rfWarm, rfFallback, rfIters)
	}

	// Dataset registry: one gauge set per registered dataset.
	metas := s.datasets.List()
	dsRev := obs.Family{Name: "csm_dataset_revision", Help: "Current revision per dataset.", Type: obs.Gauge}
	dsCourses := obs.Family{Name: "csm_dataset_courses", Help: "Courses per dataset.", Type: obs.Gauge}
	dsMaterials := obs.Family{Name: "csm_dataset_materials", Help: "Materials per dataset.", Type: obs.Gauge}
	sort.Slice(metas, func(i, j int) bool { return metas[i].ID < metas[j].ID })
	for _, m := range metas {
		l := []obs.Label{{Name: "dataset", Value: m.ID}}
		dsRev.Samples = append(dsRev.Samples, obs.Sample{Labels: l, Value: float64(m.Revision)})
		dsCourses.Samples = append(dsCourses.Samples, obs.Sample{Labels: l, Value: float64(m.Courses)})
		dsMaterials.Samples = append(dsMaterials.Samples, obs.Sample{Labels: l, Value: float64(m.Materials)})
	}
	idleFam := obs.Family{Name: "csm_dataset_idle_reclaims_total", Help: "Times each dataset's warm state (search index + cache entries) was reclaimed after idling past -idle-ttl.", Type: obs.Counter}
	reclaims := s.idleReclaimTotals()
	reclaimIDs := make([]string, 0, len(reclaims))
	for id := range reclaims {
		reclaimIDs = append(reclaimIDs, id)
	}
	sort.Strings(reclaimIDs)
	for _, id := range reclaimIDs {
		idleFam.Samples = append(idleFam.Samples, obs.Sample{
			Labels: []obs.Label{{Name: "dataset", Value: id}},
			Value:  float64(reclaims[id]),
		})
	}
	fams = append(fams,
		gaugeFam("csm_datasets", "Registered datasets.", float64(len(metas))),
		dsRev, dsCourses, dsMaterials, idleFam,
	)

	// Tracing: per-(dataset, analysis, stage) latency histograms + ring
	// counters. Spans recorded outside any dataset scope fall back to
	// the default dataset label.
	stageFam := obs.Family{Name: "csm_stage_duration_seconds", Help: "Ladder stage latency from request traces, by dataset, analysis, and stage.", Type: obs.Histogram}
	for _, st := range s.tracer.StageSnapshot() {
		ds := st.Dataset
		if ds == "" {
			ds = dataset.DefaultID
		}
		labels := []obs.Label{{Name: "analysis", Value: st.Analysis}, {Name: "dataset", Value: ds}, {Name: "stage", Value: st.Stage}}
		stageFam.Samples = append(stageFam.Samples, obs.HistogramSamples(
			labels, obs.StageBucketsSeconds, st.Buckets, st.SumSeconds, st.Count)...)
	}
	ts := s.tracer.Stats()
	fams = append(fams, stageFam,
		counterFam("csm_traces_total", "Traces finished.", ts.Finished),
		counterFam("csm_traces_sampled_out_total", "Requests that ran untraced under -trace-sample.", ts.SampledOut),
		gaugeFam("csm_trace_sample_rate", "Probability a request is traced (-trace-sample).", ts.SampleRate),
		gaugeFam("csm_trace_ring_size", "Finished traces retained for /debug/trace.", float64(ts.RingSize)),
		gaugeFam("csm_trace_ring_capacity", "Trace ring-buffer capacity.", float64(ts.Capacity)),
		counterFam("csm_log_dropped_total", "Wide-event log lines lost to encode/write failures.", s.events.Drops()),
	)

	// Fleet: only in multi-replica mode, so single-process deployments
	// keep the legacy exposition.
	if s.fleet != nil {
		fams = append(fams, s.promFleetFamilies()...)
	}
	return fams
}

// scopeLabels expands an executor/breaker scope name into its
// {analysis, dataset} label pair (alphabetical label order, per the
// exposition's stable-shape contract).
func scopeLabels(scope string) []obs.Label {
	ds, analysis := engine.SplitScope(scope)
	return []obs.Label{{Name: "analysis", Value: analysis}, {Name: "dataset", Value: ds}}
}

func breakerStateValue(state string) float64 {
	switch state {
	case resilience.Open.String():
		return 2
	case resilience.HalfOpen.String():
		return 1
	}
	return 0
}

func counterFam(name, help string, v uint64) obs.Family {
	return obs.Family{Name: name, Help: help, Type: obs.Counter, Samples: []obs.Sample{{Value: float64(v)}}}
}

func gaugeFam(name, help string, v float64) obs.Family {
	return obs.Family{Name: name, Help: help, Type: obs.Gauge, Samples: []obs.Sample{{Value: v}}}
}
