// Package server exposes the CS Materials reproduction as a versioned
// JSON HTTP API, mirroring the fact that CS Materials itself is a
// public web resource (§3.1): course listings and details, material
// search, the agreement and factorization analyses, anchor-point
// recommendations, audits, and the regenerated paper figures.
//
// The v1 API lives under /api/v1/ and answers every request with a
// {"data": ..., "meta": {...}} envelope; errors use
// {"error": {"code", "message"}}. Legacy /api/... paths permanently
// redirect to their /api/v1/... equivalents.
//
// The server is read-only and the dataset deterministic, so analysis
// results are cached forever (bounded by size) in internal/serving's
// LRU cache; concurrent identical requests collapse into a single
// computation via singleflight. Per-route metrics are served at
// GET /debug/metrics. Built on net/http only.
//
// Every analysis request walks internal/resilience's degradation
// ladder: a load shedder rejects work beyond -max-inflight with 429 +
// Retry-After before it costs anything; a per-analysis circuit breaker
// opens after repeated compute failures so a broken path fails fast
// (503 circuit_open + Retry-After); and when a compute fails, times
// out, or is circuit-broken, the last-known-good cached value is
// served instead with meta.stale: true and an X-Served-Stale header
// while a breaker-gated refresh runs in the background. GET /readyz is
// the readiness probe (distinct from the /healthz liveness probe): it
// stays 503 until the dataset is loaded and the all-group agreement
// analysis has been warmed, and always reports breaker states.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"csmaterials/internal/agreement"
	"csmaterials/internal/anchor"
	"csmaterials/internal/audit"
	"csmaterials/internal/catalog"
	"csmaterials/internal/cluster"
	"csmaterials/internal/core"
	"csmaterials/internal/dataset"
	"csmaterials/internal/factorize"
	"csmaterials/internal/materials"
	"csmaterials/internal/nnmf"
	"csmaterials/internal/ontology"
	"csmaterials/internal/resilience"
	"csmaterials/internal/resilience/faultinject"
	"csmaterials/internal/search"
	"csmaterials/internal/serving"
)

// DefaultCacheSize bounds the analysis result cache when Options does
// not say otherwise.
const DefaultCacheSize = 256

// DefaultMaxInFlight bounds concurrently served API requests when
// Options does not say otherwise.
const DefaultMaxInFlight = 256

// Options configures a Server.
type Options struct {
	// CacheSize bounds the analysis result cache in entries. Zero
	// means DefaultCacheSize; a negative value disables retention
	// (singleflight deduplication still applies).
	CacheSize int
	// Logger receives access logs and panic stacks; nil disables
	// logging (useful in tests and benchmarks).
	Logger *log.Logger
	// MaxInFlight bounds concurrently served /api/ requests; excess is
	// shed immediately with 429 + Retry-After. Zero means
	// DefaultMaxInFlight; a negative value disables shedding.
	MaxInFlight int
	// BreakerThreshold is the number of consecutive compute failures
	// that opens an analysis's circuit. Zero means
	// resilience.DefaultBreakerThreshold; a negative value disables
	// circuit breaking.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects before
	// half-opening for a probe. Zero means
	// resilience.DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// DisableStaleServe turns off last-known-good degradation: compute
	// failures become errors instead of stale responses.
	DisableStaleServe bool
	// Faults, when non-nil, injects chaos (latency, errors, panics)
	// into API routes and compute paths. Tests and demos only.
	Faults *faultinject.Injector

	// disableWarmup skips the background readiness warmup so tests can
	// drive the /readyz transition deterministically.
	disableWarmup bool
}

// Server holds the shared read-only state behind the handlers.
type Server struct {
	repo        *materials.Repository
	engine      *search.Engine
	recommender *anchor.Recommender
	mux         *http.ServeMux
	handler     http.Handler
	cache       *serving.Cache
	metrics     *serving.Metrics
	logger      *log.Logger

	shedder    *resilience.Shedder
	breakers   *resilience.BreakerSet // nil when circuit breaking is disabled
	faults     *faultinject.Injector  // nil when no chaos is injected
	staleServe bool

	readyMu  sync.Mutex
	ready    bool
	readyErr error

	// analyzeTypes is factorize.Analyze, injectable so tests can count
	// underlying calls through the cache/singleflight path.
	analyzeTypes func([]*materials.Course, int, nnmf.Options, ...*ontology.Guideline) (*factorize.Model, error)
}

// New builds a server over the synthesized dataset with defaults.
func New() (*Server, error) { return NewWithOptions(Options{}) }

// NewWithOptions builds a server with explicit serving options.
func NewWithOptions(o Options) (*Server, error) {
	rec, err := anchor.NewRecommender(ontology.CS2013(), ontology.PDC12())
	if err != nil {
		return nil, err
	}
	size := o.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	maxInFlight := o.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = DefaultMaxInFlight
	} else if maxInFlight < 0 {
		maxInFlight = 0 // shedder treats 0 as unlimited
	}
	s := &Server{
		repo:         dataset.Repository(),
		engine:       search.NewEngine(dataset.Repository()),
		recommender:  rec,
		mux:          http.NewServeMux(),
		cache:        serving.NewCache(size),
		metrics:      serving.NewMetrics(),
		logger:       o.Logger,
		shedder:      resilience.NewShedder(maxInFlight, 0),
		faults:       o.Faults,
		staleServe:   !o.DisableStaleServe,
		analyzeTypes: factorize.Analyze,
	}
	if o.BreakerThreshold >= 0 {
		s.breakers = resilience.NewBreakerSet(o.BreakerThreshold, o.BreakerCooldown)
	}
	s.metrics.ObserveCache(s.cache)
	s.metrics.ObserveResilience(func() resilience.Stats {
		st := resilience.Stats{Shedder: s.shedder.Stats()}
		if s.breakers != nil {
			st.Breakers = s.breakers.Stats()
		}
		return st
	})
	s.routes()
	s.handler = serving.Recover(s.logger, serving.AccessLog(s.logger, http.HandlerFunc(s.route)))
	if !o.disableWarmup {
		go s.warmup()
	}
	return s, nil
}

// Metrics exposes the metrics registry (for cmd/serve and tests).
func (s *Server) Metrics() *serving.Metrics { return s.metrics }

// Cache exposes the result cache (for benchmarks and tests).
func (s *Server) Cache() *serving.Cache { return s.cache }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.handle("GET /healthz", http.HandlerFunc(s.handleHealth))
	s.handle("GET /readyz", http.HandlerFunc(s.handleReady))
	s.handleAPI("GET /api/v1/courses", http.HandlerFunc(s.handleCourses))
	s.handleAPI("GET /api/v1/courses/{id}", http.HandlerFunc(s.handleCourse))
	s.handleAPI("GET /api/v1/courses/{id}/{view}", http.HandlerFunc(s.handleCourseView))
	s.handleAPI("GET /api/v1/search", http.HandlerFunc(s.handleSearch))
	s.handleAPI("GET /api/v1/agreement", http.HandlerFunc(s.handleAgreement))
	s.handleAPI("GET /api/v1/types", http.HandlerFunc(s.handleTypes))
	s.handleAPI("GET /api/v1/cluster", http.HandlerFunc(s.handleCluster))
	s.handleAPI("GET /api/v1/figures/{id}", http.HandlerFunc(s.handleFigure))
	s.handle("GET /debug/metrics", s.metrics.Handler())
	s.handle("/api/", http.HandlerFunc(s.handleLegacy))
}

// handle registers pattern with per-route instrumentation.
func (s *Server) handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, serving.Instrument(s.metrics, pattern, h))
}

// handleAPI registers an /api/v1 route behind the load shedder and
// (when configured) the fault injector, inside the per-route
// instrumentation so shed 429s are metered against their route.
func (s *Server) handleAPI(pattern string, h http.Handler) {
	s.handle(pattern, serving.Shed(s.shedder, s.faults.Middleware(h)))
}

// route dispatches through the mux, replacing its plain-text 404/405
// responses with the API's JSON error envelope.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	if _, pattern := s.mux.Handler(r); pattern == "" {
		serving.Instrument(s.metrics, "(unmatched)", http.HandlerFunc(s.handleUnmatched)).ServeHTTP(w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleUnmatched(w http.ResponseWriter, r *http.Request) {
	// The API is GET-only: if the path matches a real route under GET,
	// the original method was the problem. The method-less legacy
	// "/api/" catch-all does not count as a real route here.
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		probe := r.Clone(r.Context())
		probe.Method = http.MethodGet
		if _, pattern := s.mux.Handler(probe); pattern != "" && pattern != "/api/" {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "method %s not allowed", r.Method)
			return
		}
	}
	writeError(w, http.StatusNotFound, "not_found", "no such endpoint %s", r.URL.Path)
}

// handleLegacy permanently redirects pre-v1 /api/... paths to their
// /api/v1/... equivalents, preserving the query string.
func (s *Server) handleLegacy(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/")
	if rest == "v1" || strings.HasPrefix(rest, "v1/") {
		// A /api/v1/ path no specific pattern claimed: either a wrong
		// method on a real route or an unknown endpoint.
		s.handleUnmatched(w, r)
		return
	}
	target := "/api/v1/" + rest
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	http.Redirect(w, r, target, http.StatusPermanentRedirect)
}

// --- Envelope ------------------------------------------------------------

// envelope is the uniform success shape of every v1 response.
type envelope struct {
	Data interface{} `json:"data"`
	Meta interface{} `json:"meta"`
}

// ListMeta is the meta block of paginated list endpoints.
type ListMeta struct {
	Total  int `json:"total"`
	Limit  int `json:"limit"`
	Offset int `json:"offset"`
}

// CacheMeta is the meta block of cached analysis endpoints.
type CacheMeta struct {
	// Cache is "hit" when the result was served without recomputing
	// (retained entry or shared singleflight), "miss" when this
	// request computed it, and "stale" when a last-known-good value
	// was served because the compute path is failing or circuit-broken.
	Cache string `json:"cache"`
	Key   string `json:"key"`
	// Stale marks a degraded response; stale responses also carry an
	// X-Served-Stale: true header.
	Stale bool `json:"stale,omitempty"`
}

func cacheMeta(key string, served bool) CacheMeta {
	if served {
		return CacheMeta{Cache: "hit", Key: key}
	}
	return CacheMeta{Cache: "miss", Key: key}
}

func staleMeta(key string) CacheMeta {
	return CacheMeta{Cache: "stale", Key: key, Stale: true}
}

func writeData(w http.ResponseWriter, status int, data, meta interface{}) {
	if meta == nil {
		meta = struct{}{}
	}
	serving.WriteJSON(w, status, envelope{Data: data, Meta: meta})
}

// ErrorBody is the uniform error shape.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	serving.WriteJSON(w, status, errorEnvelope{Error: ErrorBody{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// httpError lets cached compute functions carry a status and code.
type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func writeComputeError(w http.ResponseWriter, err error) {
	if he, ok := err.(*httpError); ok {
		writeError(w, he.status, he.code, "%s", he.msg)
		return
	}
	writeError(w, http.StatusInternalServerError, "internal", "%v", err)
}

// isServerFailure classifies err for the circuit breaker and the stale
// fallback: client-side httpErrors (4xx — bad parameters, unknown
// figures) are the service working correctly, anything else is a
// failure of the compute path.
func isServerFailure(err error) bool {
	if err == nil {
		return false
	}
	var he *httpError
	if errors.As(err, &he) && he.status < 500 {
		return false
	}
	return true
}

// --- The resilience ladder -----------------------------------------------

// cachedAnalysis runs compute for key through the full degradation
// ladder: fresh cache → breaker-guarded singleflight compute → stale
// last-known-good fallback. It returns (value, meta, true) when the
// caller should write the value; on false the error response has
// already been written (or, for a disconnected client, suppressed).
//
// name identifies the analysis kind ("types", "cluster", ...) and
// selects the circuit breaker; the fault injector sees it as the
// compute label "compute/<name>".
func (s *Server) cachedAnalysis(w http.ResponseWriter, r *http.Request, name, key string, compute func() (interface{}, error)) (interface{}, CacheMeta, bool) {
	var br *resilience.Breaker
	if s.breakers != nil {
		br = s.breakers.Get(name)
	}
	guarded := func() (interface{}, error) {
		if br != nil && !br.Allow() {
			return nil, resilience.ErrOpen
		}
		err := s.faults.ComputeError("compute/" + name)
		var v interface{}
		if err == nil {
			v, err = compute()
		}
		if br != nil {
			br.Record(!isServerFailure(err))
		}
		return v, err
	}

	v, served, err := s.cache.DoCtx(r.Context(), key, guarded)
	if err == nil {
		return v, cacheMeta(key, served), true
	}
	if errors.Is(err, context.Canceled) {
		// The client disconnected; there is nobody to answer. The
		// computation (if any) finishes detached and is cached.
		return nil, CacheMeta{}, false
	}

	// Degrade: a circuit-broken, failing, or timed-out compute is
	// answered with the last-known-good value when one exists, while a
	// breaker-gated refresh runs detached in the background.
	if s.staleServe && (errors.Is(err, resilience.ErrOpen) || errors.Is(err, context.DeadlineExceeded) || isServerFailure(err)) {
		if sv, ok := s.cache.Stale(key); ok {
			w.Header().Set("X-Served-Stale", "true")
			go func() { _, _, _ = s.cache.Do(key, guarded) }()
			return sv, staleMeta(key), true
		}
	}

	switch {
	case errors.Is(err, resilience.ErrOpen):
		w.Header().Set("Retry-After", serving.RetryAfterSeconds(br.RetryAfter()))
		writeError(w, http.StatusServiceUnavailable, "circuit_open",
			"analysis %q is temporarily disabled after repeated failures; retry later", name)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "timeout", "computation for %q timed out", key)
	default:
		writeComputeError(w, err)
	}
	return nil, CacheMeta{}, false
}

// --- Query parameter parsing ---------------------------------------------

// parseIntParam parses an integer query parameter, returning def when
// absent and an error when malformed or below min.
func parseIntParam(r *http.Request, name string, def, min int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < min {
		return 0, fmt.Errorf("bad %s %q: want integer >= %d", name, v, min)
	}
	return n, nil
}

// parsePage parses limit/offset with strict validation.
func parsePage(r *http.Request, defLimit int) (limit, offset int, err error) {
	if limit, err = parseIntParam(r, "limit", defLimit, 1); err != nil {
		return 0, 0, err
	}
	if offset, err = parseIntParam(r, "offset", 0, 0); err != nil {
		return 0, 0, err
	}
	return limit, offset, nil
}

// pageBounds clips [offset, offset+limit) to n items.
func pageBounds(n, limit, offset int) (lo, hi int) {
	lo = offset
	if lo > n {
		lo = n
	}
	hi = lo + limit
	if hi > n {
		hi = n
	}
	return lo, hi
}

// --- Health --------------------------------------------------------------

// HealthResponse is the /healthz data payload.
type HealthResponse struct {
	Status    string `json:"status"`
	Courses   int    `json:"courses"`
	Materials int    `json:"materials"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeData(w, http.StatusOK, HealthResponse{
		Status:    "ok",
		Courses:   len(s.repo.Courses()),
		Materials: s.repo.NumMaterials(),
	}, nil)
}

// --- Readiness -----------------------------------------------------------

// warmup pre-computes the all-group agreement analysis under the exact
// cache key /api/v1/agreement uses, proving the dataset is loaded and
// the all-group analyses are warmable, then flips /readyz to ready.
func (s *Server) warmup() {
	_, _, err := s.cache.Do(agreementKey("all", 2), func() (interface{}, error) {
		ids, err := groupCourseIDs("all")
		if err != nil {
			return nil, err
		}
		return computeAgreement(ids, 2)
	})
	s.readyMu.Lock()
	s.ready = err == nil
	s.readyErr = err
	s.readyMu.Unlock()
}

// ReadyResponse is the /readyz data payload. Unlike /healthz (pure
// liveness), readiness reflects whether the server has warmed its
// all-group analyses, and the payload always reports circuit states so
// operators can see degradation at a glance.
type ReadyResponse struct {
	Status   string                             `json:"status"` // "ready", "starting", or "unready"
	Reason   string                             `json:"reason,omitempty"`
	Breakers map[string]resilience.BreakerStats `json:"breakers"`
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.readyMu.Lock()
	ready, readyErr := s.ready, s.readyErr
	s.readyMu.Unlock()
	resp := ReadyResponse{Status: "ready", Breakers: map[string]resilience.BreakerStats{}}
	if s.breakers != nil {
		resp.Breakers = s.breakers.Stats()
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
		resp.Status = "starting"
		if readyErr != nil {
			resp.Status = "unready"
			resp.Reason = readyErr.Error()
		}
	}
	writeData(w, status, resp, nil)
}

// --- Courses -------------------------------------------------------------

// CourseSummary is the list-view shape of a course.
type CourseSummary struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Institution string `json:"institution,omitempty"`
	Instructor  string `json:"instructor,omitempty"`
	Group       string `json:"group"`
	Secondary   string `json:"secondary_group,omitempty"`
	Tags        int    `json:"tags"`
	Materials   int    `json:"materials"`
}

func summarize(c *materials.Course) CourseSummary {
	return CourseSummary{
		ID: c.ID, Name: c.Name, Institution: c.Institution, Instructor: c.Instructor,
		Group: string(c.Group), Secondary: string(c.SecondaryGroup),
		Tags: len(c.TagSet()), Materials: len(c.Materials),
	}
}

func (s *Server) handleCourses(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := parsePage(r, 20)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	cs := s.repo.Courses()
	lo, hi := pageBounds(len(cs), limit, offset)
	out := make([]CourseSummary, 0, hi-lo)
	for _, c := range cs[lo:hi] {
		out = append(out, summarize(c))
	}
	writeData(w, http.StatusOK, out, ListMeta{Total: len(cs), Limit: limit, Offset: offset})
}

// CourseDetail is the single-course data payload.
type CourseDetail struct {
	Course CourseSummary `json:"course"`
	Tags   []string      `json:"tags"`
}

func (s *Server) course(w http.ResponseWriter, r *http.Request) *materials.Course {
	id := r.PathValue("id")
	c := s.repo.Course(id)
	if c == nil {
		writeError(w, http.StatusNotFound, "not_found", "unknown course %q", id)
	}
	return c
}

func (s *Server) handleCourse(w http.ResponseWriter, r *http.Request) {
	c := s.course(w, r)
	if c == nil {
		return
	}
	writeData(w, http.StatusOK, CourseDetail{Course: summarize(c), Tags: c.SortedTags()}, nil)
}

// AnchorRec is one §5.2 anchor-point recommendation.
type AnchorRec struct {
	Rule     string   `json:"rule"`
	Title    string   `json:"title"`
	Score    float64  `json:"score"`
	Audience string   `json:"audience"`
	Activity string   `json:"activity"`
	Matched  []string `json:"matched_anchors"`
	Teaches  []string `json:"teaches"`
}

// AuditUnit is one covered CS2013 unit in an audit report.
type AuditUnit struct {
	Unit     string  `json:"unit"`
	Tier     string  `json:"tier"`
	Covered  int     `json:"covered"`
	Total    int     `json:"total"`
	Fraction float64 `json:"fraction"`
}

// AuditResponse is the course audit data payload.
type AuditResponse struct {
	Core1Coverage     float64     `json:"core1_coverage"`
	Core2Coverage     float64     `json:"core2_coverage"`
	Units             []AuditUnit `json:"units"`
	PDCCoreCovered    int         `json:"pdc_core_covered"`
	PDCCoreTotal      int         `json:"pdc_core_total"`
	PrerequisiteScore float64     `json:"prerequisite_score"`
}

// PDCRec is one public-catalog material recommendation.
type PDCRec struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	Source string   `json:"source"`
	Score  float64  `json:"score"`
	NewPDC int      `json:"new_pdc_entries"`
	Shared []string `json:"shared_tags"`
}

func (s *Server) handleCourseView(w http.ResponseWriter, r *http.Request) {
	c := s.course(w, r)
	if c == nil {
		return
	}
	switch view := r.PathValue("view"); view {
	case "materials":
		writeData(w, http.StatusOK, c.Materials, ListMeta{Total: len(c.Materials), Limit: len(c.Materials), Offset: 0})
	case "anchors":
		v, m, ok := s.cachedAnalysis(w, r, "anchors", "anchors|"+c.ID, func() (interface{}, error) {
			recs := s.recommender.Recommend(c)
			out := make([]AnchorRec, 0, len(recs))
			for _, rc := range recs {
				out = append(out, AnchorRec{
					Rule: rc.Rule.ID, Title: rc.Rule.Title, Score: rc.Score,
					Audience: rc.Rule.Audience, Activity: rc.Rule.Activity,
					Matched: rc.MatchedAnchors, Teaches: rc.Rule.Teaches,
				})
			}
			return out, nil
		})
		if !ok {
			return
		}
		writeData(w, http.StatusOK, v, m)
	case "audit":
		v, m, ok := s.cachedAnalysis(w, r, "audit", "audit|"+c.ID, func() (interface{}, error) {
			rep := audit.Audit(c, ontology.CS2013())
			readiness := audit.AssessPDCReadiness(c)
			units := make([]AuditUnit, 0, len(rep.Units))
			for _, u := range rep.Units {
				if u.Covered == 0 {
					continue
				}
				units = append(units, AuditUnit{
					Unit: u.Unit.ID, Tier: u.Tier.String(),
					Covered: u.Covered, Total: u.Total, Fraction: u.Fraction(),
				})
			}
			return &AuditResponse{
				Core1Coverage:     rep.TierCoverage(ontology.TierCore1),
				Core2Coverage:     rep.TierCoverage(ontology.TierCore2),
				Units:             units,
				PDCCoreCovered:    readiness.CoreCovered,
				PDCCoreTotal:      readiness.CoreTotal,
				PrerequisiteScore: readiness.PrerequisiteScore(),
			}, nil
		})
		if !ok {
			return
		}
		writeData(w, http.StatusOK, v, m)
	case "pdcmaterials":
		limit, err := parseIntParam(r, "limit", 10, 1)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
			return
		}
		key := fmt.Sprintf("pdcmaterials|%s|%d", c.ID, limit)
		v, m, ok := s.cachedAnalysis(w, r, "pdcmaterials", key, func() (interface{}, error) {
			recs := catalog.Recommend(c, limit)
			out := make([]PDCRec, 0, len(recs))
			for _, rc := range recs {
				out = append(out, PDCRec{
					ID: rc.Entry.Material.ID, Title: rc.Entry.Material.Title,
					Source: string(rc.Entry.Source), Score: rc.Score,
					NewPDC: rc.NewPDC, Shared: rc.SharedTags,
				})
			}
			return out, nil
		})
		if !ok {
			return
		}
		writeData(w, http.StatusOK, v, m)
	default:
		writeError(w, http.StatusNotFound, "not_found", "unknown course view %q", view)
	}
}

// --- Search --------------------------------------------------------------

// SearchHit is one material search result.
type SearchHit struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Type    string   `json:"type"`
	Author  string   `json:"author,omitempty"`
	Score   float64  `json:"score"`
	Matched []string `json:"matched_tags,omitempty"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := parsePage(r, 20)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	q := search.Query{
		Text:        r.URL.Query().Get("text"),
		Author:      r.URL.Query().Get("author"),
		Language:    r.URL.Query().Get("language"),
		CourseLevel: r.URL.Query().Get("level"),
	}
	if tags := r.URL.Query().Get("tags"); tags != "" {
		q.Tags = strings.Split(tags, ",")
	}
	if p := r.URL.Query().Get("prefix"); p != "" {
		q.TagPrefixes = []string{p}
	}
	if len(q.Tags) == 0 && len(q.TagPrefixes) == 0 && q.Text == "" &&
		q.Author == "" && q.Language == "" && q.CourseLevel == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "empty query: pass tags, prefix, text, or a facet")
		return
	}
	results := s.engine.Search(q) // Limit 0: rank everything, then paginate
	lo, hi := pageBounds(len(results), limit, offset)
	out := make([]SearchHit, 0, hi-lo)
	for _, res := range results[lo:hi] {
		out = append(out, SearchHit{
			ID: res.Material.ID, Title: res.Material.Title, Type: string(res.Material.Type),
			Author: res.Material.Author, Score: res.Score, Matched: res.MatchedTags,
		})
	}
	writeData(w, http.StatusOK, out, ListMeta{Total: len(results), Limit: limit, Offset: offset})
}

// --- Group-based analyses ------------------------------------------------

func groupCourseIDs(group string) ([]string, error) {
	switch strings.ToLower(group) {
	case "cs1":
		return dataset.CS1CourseIDs(), nil
	case "ds":
		return dataset.DSCourseIDs(), nil
	case "dsalgo":
		return dataset.DSAlgoCourseIDs(), nil
	case "pdc":
		return dataset.PDCCourseIDs(), nil
	case "all", "":
		return dataset.AllCourseIDs(), nil
	default:
		return nil, fmt.Errorf("unknown group %q", group)
	}
}

// normGroup canonicalizes the group parameter for cache keys.
func normGroup(group string) string {
	g := strings.ToLower(group)
	if g == "" {
		g = "all"
	}
	return g
}

// AgreementResponse is the /api/v1/agreement data payload.
type AgreementResponse struct {
	Courses   []string       `json:"courses"`
	Tags      int            `json:"tags"`
	AtLeast   map[string]int `json:"at_least"`
	KASpan    []string       `json:"ka_span"`
	KACounts  map[string]int `json:"ka_counts"`
	Threshold int            `json:"threshold"`
}

// computeAgreement builds the agreement payload for ids; shared by the
// handler and the readiness warmup (which pre-computes the all-group
// analysis under the same cache key the handler uses).
func computeAgreement(ids []string, threshold int) (interface{}, error) {
	a, err := agreement.Analyze(dataset.CoursesByID(ids), ontology.CS2013(), ontology.PDC12())
	if err != nil {
		return nil, err
	}
	atLeast := make(map[string]int, len(ids))
	for k := 2; k <= len(ids); k++ {
		atLeast[strconv.Itoa(k)] = a.AtLeast(k)
	}
	return &AgreementResponse{
		Courses:   ids,
		Tags:      a.NumTags(),
		AtLeast:   atLeast,
		KASpan:    a.KASpan(threshold),
		KACounts:  a.KACounts(threshold),
		Threshold: threshold,
	}, nil
}

// agreementKey is the cache key of /api/v1/agreement responses.
func agreementKey(group string, threshold int) string {
	return fmt.Sprintf("agreement|%s|%d", normGroup(group), threshold)
}

func (s *Server) handleAgreement(w http.ResponseWriter, r *http.Request) {
	group := r.URL.Query().Get("group")
	ids, err := groupCourseIDs(group)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	threshold, err := parseIntParam(r, "threshold", 2, 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	key := agreementKey(group, threshold)
	v, m, ok := s.cachedAnalysis(w, r, "agreement", key, func() (interface{}, error) {
		return computeAgreement(ids, threshold)
	})
	if !ok {
		return
	}
	writeData(w, http.StatusOK, v, m)
}

// CourseType is one course's NNMF typing.
type CourseType struct {
	Course   string    `json:"course"`
	Dominant int       `json:"dominant_type"`
	Shares   []float64 `json:"shares"`
	Evenness float64   `json:"evenness"`
}

// TypeSummary describes one discovered course type.
type TypeSummary struct {
	Label   string             `json:"label"`
	KAShare map[string]float64 `json:"ka_share"`
	TopTags []string           `json:"top_tags"`
}

// TypesResponse is the /api/v1/types data payload.
type TypesResponse struct {
	K          int           `json:"k"`
	Courses    []CourseType  `json:"courses"`
	Types      []TypeSummary `json:"types"`
	Redundancy float64       `json:"redundancy"`
}

func (s *Server) handleTypes(w http.ResponseWriter, r *http.Request) {
	group := r.URL.Query().Get("group")
	ids, err := groupCourseIDs(group)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	defK := 3
	if normGroup(group) == "all" {
		defK = 4
	}
	k, err := parseIntParam(r, "k", defK, 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	key := fmt.Sprintf("types|%s|%d", normGroup(group), k)
	v, m, ok := s.cachedAnalysis(w, r, "types", key, func() (interface{}, error) {
		model, err := s.analyzeTypes(dataset.CoursesByID(ids), k, factorize.PaperOptions(),
			ontology.CS2013(), ontology.PDC12())
		if err != nil {
			return nil, &httpError{status: http.StatusBadRequest, code: "bad_request", msg: err.Error()}
		}
		courses := make([]CourseType, 0, len(model.Courses))
		for i, c := range model.Courses {
			courses = append(courses, CourseType{
				Course: c.ID, Dominant: model.DominantType(i),
				Shares: model.TypeShare(i), Evenness: model.Evenness(i),
			})
		}
		types := make([]TypeSummary, k)
		for t := 0; t < k; t++ {
			shares := model.KAShare(t)
			kas := make(map[string]float64, len(shares))
			for ka, v := range shares {
				kas[ka] = v
			}
			top := model.TopTags(t, 5)
			topTags := make([]string, len(top))
			for i, tw := range top {
				topTags[i] = tw.Tag
			}
			types[t] = TypeSummary{Label: model.TypeLabel(t), KAShare: kas, TopTags: topTags}
		}
		return &TypesResponse{K: k, Courses: courses, Types: types, Redundancy: model.Redundancy()}, nil
	})
	if !ok {
		return
	}
	writeData(w, http.StatusOK, v, m)
}

// ClusterResponse is the /api/v1/cluster data payload.
type ClusterResponse struct {
	K          int        `json:"k"`
	Linkage    string     `json:"linkage"`
	Clusters   [][]string `json:"clusters"`
	Dendrogram string     `json:"dendrogram"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	group := r.URL.Query().Get("group")
	ids, err := groupCourseIDs(group)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	k, err := parseIntParam(r, "k", 4, 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	key := fmt.Sprintf("cluster|%s|%d", normGroup(group), k)
	v, m, ok := s.cachedAnalysis(w, r, "cluster", key, func() (interface{}, error) {
		d, err := cluster.Build(dataset.CoursesByID(ids), cluster.Average)
		if err != nil {
			return nil, err
		}
		clusters, err := d.CutK(k)
		if err != nil {
			return nil, &httpError{status: http.StatusBadRequest, code: "bad_request", msg: err.Error()}
		}
		out := make([][]string, len(clusters))
		for i, cl := range clusters {
			out[i] = make([]string, 0, len(cl))
			for _, c := range cl {
				out[i] = append(out[i], c.ID)
			}
		}
		return &ClusterResponse{
			K: k, Linkage: d.Linkage.String(),
			Clusters: out, Dendrogram: d.Render(),
		}, nil
	})
	if !ok {
		return
	}
	writeData(w, http.StatusOK, v, m)
}

// --- Figures -------------------------------------------------------------

// FigureResponse is the /api/v1/figures/{id} data payload.
type FigureResponse struct {
	ID   string   `json:"id"`
	Text string   `json:"text"`
	SVGs []string `json:"svgs"`
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	key := "figure|" + id
	v, m, ok := s.cachedAnalysis(w, r, "figures", key, func() (interface{}, error) {
		for _, f := range core.Figures() {
			if f.ID == id {
				return f.Gen()
			}
		}
		return nil, &httpError{status: http.StatusNotFound, code: "not_found", msg: fmt.Sprintf("unknown figure %q", id)}
	})
	if !ok {
		return
	}
	art := v.(*core.Artifact)
	// Serve one SVG directly when requested.
	if svg := r.URL.Query().Get("svg"); svg != "" {
		body, ok := art.SVGs[svg]
		if !ok {
			writeError(w, http.StatusNotFound, "not_found", "figure %s has no SVG %q", id, svg)
			return
		}
		w.Header().Set("Content-Type", "image/svg+xml")
		_, _ = w.Write([]byte(body))
		return
	}
	svgNames := make([]string, 0, len(art.SVGs))
	for name := range art.SVGs {
		svgNames = append(svgNames, name)
	}
	sort.Strings(svgNames)
	writeData(w, http.StatusOK, FigureResponse{ID: art.ID, Text: art.Text, SVGs: svgNames}, m)
}
