// Package server exposes the CS Materials reproduction as a JSON HTTP
// API, mirroring the fact that CS Materials itself is a public web
// resource (§3.1): course listings and details, material search, the
// agreement and factorization analyses, anchor-point recommendations,
// audits, and the regenerated paper figures.
//
// The server is read-only (the dataset is deterministic) and built on
// net/http only.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"csmaterials/internal/agreement"
	"csmaterials/internal/anchor"
	"csmaterials/internal/audit"
	"csmaterials/internal/catalog"
	"csmaterials/internal/cluster"
	"csmaterials/internal/core"
	"csmaterials/internal/dataset"
	"csmaterials/internal/factorize"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
	"csmaterials/internal/search"
)

// Server holds the shared read-only state behind the handlers.
type Server struct {
	repo        *materials.Repository
	engine      *search.Engine
	recommender *anchor.Recommender
	mux         *http.ServeMux
}

// New builds a server over the synthesized dataset.
func New() (*Server, error) {
	rec, err := anchor.NewRecommender(ontology.CS2013(), ontology.PDC12())
	if err != nil {
		return nil, err
	}
	s := &Server{
		repo:        dataset.Repository(),
		engine:      search.NewEngine(dataset.Repository()),
		recommender: rec,
		mux:         http.NewServeMux(),
	}
	s.routes()
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/api/courses", s.handleCourses)
	s.mux.HandleFunc("/api/courses/", s.handleCourse) // /api/courses/{id}[/anchors|/audit|/materials|/pdcmaterials]
	s.mux.HandleFunc("/api/search", s.handleSearch)
	s.mux.HandleFunc("/api/agreement", s.handleAgreement)
	s.mux.HandleFunc("/api/types", s.handleTypes)
	s.mux.HandleFunc("/api/figures/", s.handleFigure) // /api/figures/{id}
	s.mux.HandleFunc("/api/cluster", s.handleCluster)
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if !methodGuard(w, r) {
		return
	}
	ids, err := groupCourseIDs(r.URL.Query().Get("group"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	d, err := cluster.Build(dataset.CoursesByID(ids), cluster.Average)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	k := 4
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad k %q", v)
			return
		}
		k = n
	}
	clusters, err := d.CutK(k)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([][]string, len(clusters))
	for i, cl := range clusters {
		for _, c := range cl {
			out[i] = append(out[i], c.ID)
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"k": k, "linkage": d.Linkage.String(),
		"clusters":   out,
		"dendrogram": d.Render(),
	})
}

// writeJSON writes v as indented JSON with the right content type.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func methodGuard(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":    "ok",
		"courses":   len(s.repo.Courses()),
		"materials": s.repo.NumMaterials(),
	})
}

// courseSummary is the list-view shape.
type courseSummary struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Institution string `json:"institution,omitempty"`
	Instructor  string `json:"instructor,omitempty"`
	Group       string `json:"group"`
	Secondary   string `json:"secondary_group,omitempty"`
	Tags        int    `json:"tags"`
	Materials   int    `json:"materials"`
}

func summarize(c *materials.Course) courseSummary {
	return courseSummary{
		ID: c.ID, Name: c.Name, Institution: c.Institution, Instructor: c.Instructor,
		Group: string(c.Group), Secondary: string(c.SecondaryGroup),
		Tags: len(c.TagSet()), Materials: len(c.Materials),
	}
}

func (s *Server) handleCourses(w http.ResponseWriter, r *http.Request) {
	if !methodGuard(w, r) {
		return
	}
	var out []courseSummary
	for _, c := range s.repo.Courses() {
		out = append(out, summarize(c))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCourse(w http.ResponseWriter, r *http.Request) {
	if !methodGuard(w, r) {
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/courses/")
	parts := strings.SplitN(rest, "/", 2)
	c := s.repo.Course(parts[0])
	if c == nil {
		writeError(w, http.StatusNotFound, "unknown course %q", parts[0])
		return
	}
	sub := ""
	if len(parts) == 2 {
		sub = parts[1]
	}
	switch sub {
	case "":
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"course": summarize(c),
			"tags":   c.SortedTags(),
		})
	case "materials":
		writeJSON(w, http.StatusOK, c.Materials)
	case "anchors":
		recs := s.recommender.Recommend(c)
		type rec struct {
			Rule     string   `json:"rule"`
			Title    string   `json:"title"`
			Score    float64  `json:"score"`
			Audience string   `json:"audience"`
			Activity string   `json:"activity"`
			Matched  []string `json:"matched_anchors"`
			Teaches  []string `json:"teaches"`
		}
		out := make([]rec, 0, len(recs))
		for _, rc := range recs {
			out = append(out, rec{
				Rule: rc.Rule.ID, Title: rc.Rule.Title, Score: rc.Score,
				Audience: rc.Rule.Audience, Activity: rc.Rule.Activity,
				Matched: rc.MatchedAnchors, Teaches: rc.Rule.Teaches,
			})
		}
		writeJSON(w, http.StatusOK, out)
	case "audit":
		rep := audit.Audit(c, ontology.CS2013())
		readiness := audit.AssessPDCReadiness(c)
		type unit struct {
			Unit     string  `json:"unit"`
			Tier     string  `json:"tier"`
			Covered  int     `json:"covered"`
			Total    int     `json:"total"`
			Fraction float64 `json:"fraction"`
		}
		var units []unit
		for _, u := range rep.Units {
			if u.Covered == 0 {
				continue
			}
			units = append(units, unit{
				Unit: u.Unit.ID, Tier: u.Tier.String(),
				Covered: u.Covered, Total: u.Total, Fraction: u.Fraction(),
			})
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"core1_coverage":     rep.TierCoverage(ontology.TierCore1),
			"core2_coverage":     rep.TierCoverage(ontology.TierCore2),
			"units":              units,
			"pdc_core_covered":   readiness.CoreCovered,
			"pdc_core_total":     readiness.CoreTotal,
			"prerequisite_score": readiness.PrerequisiteScore(),
		})
	case "pdcmaterials":
		recs := catalog.Recommend(c, parseLimit(r, 10))
		type rec struct {
			ID     string   `json:"id"`
			Title  string   `json:"title"`
			Source string   `json:"source"`
			Score  float64  `json:"score"`
			NewPDC int      `json:"new_pdc_entries"`
			Shared []string `json:"shared_tags"`
		}
		out := make([]rec, 0, len(recs))
		for _, rc := range recs {
			out = append(out, rec{
				ID: rc.Entry.Material.ID, Title: rc.Entry.Material.Title,
				Source: string(rc.Entry.Source), Score: rc.Score,
				NewPDC: rc.NewPDC, Shared: rc.SharedTags,
			})
		}
		writeJSON(w, http.StatusOK, out)
	default:
		writeError(w, http.StatusNotFound, "unknown course endpoint %q", sub)
	}
}

func parseLimit(r *http.Request, def int) int {
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if !methodGuard(w, r) {
		return
	}
	q := search.Query{
		Text:        r.URL.Query().Get("text"),
		Author:      r.URL.Query().Get("author"),
		Language:    r.URL.Query().Get("language"),
		CourseLevel: r.URL.Query().Get("level"),
		Limit:       parseLimit(r, 20),
	}
	if tags := r.URL.Query().Get("tags"); tags != "" {
		q.Tags = strings.Split(tags, ",")
	}
	if p := r.URL.Query().Get("prefix"); p != "" {
		q.TagPrefixes = []string{p}
	}
	if len(q.Tags) == 0 && len(q.TagPrefixes) == 0 && q.Text == "" &&
		q.Author == "" && q.Language == "" && q.CourseLevel == "" {
		writeError(w, http.StatusBadRequest, "empty query: pass tags, prefix, text, or a facet")
		return
	}
	results := s.engine.Search(q)
	type hit struct {
		ID      string   `json:"id"`
		Title   string   `json:"title"`
		Type    string   `json:"type"`
		Author  string   `json:"author,omitempty"`
		Score   float64  `json:"score"`
		Matched []string `json:"matched_tags,omitempty"`
	}
	out := make([]hit, 0, len(results))
	for _, res := range results {
		out = append(out, hit{
			ID: res.Material.ID, Title: res.Material.Title, Type: string(res.Material.Type),
			Author: res.Material.Author, Score: res.Score, Matched: res.MatchedTags,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func groupCourseIDs(group string) ([]string, error) {
	switch strings.ToLower(group) {
	case "cs1":
		return dataset.CS1CourseIDs(), nil
	case "ds":
		return dataset.DSCourseIDs(), nil
	case "dsalgo":
		return dataset.DSAlgoCourseIDs(), nil
	case "pdc":
		return dataset.PDCCourseIDs(), nil
	case "all", "":
		return dataset.AllCourseIDs(), nil
	default:
		return nil, fmt.Errorf("unknown group %q", group)
	}
}

func (s *Server) handleAgreement(w http.ResponseWriter, r *http.Request) {
	if !methodGuard(w, r) {
		return
	}
	ids, err := groupCourseIDs(r.URL.Query().Get("group"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	a, err := agreement.Analyze(dataset.CoursesByID(ids), ontology.CS2013(), ontology.PDC12())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	atLeast := map[string]int{}
	for k := 2; k <= len(ids); k++ {
		atLeast[strconv.Itoa(k)] = a.AtLeast(k)
	}
	threshold := 2
	if v := r.URL.Query().Get("threshold"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			threshold = n
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"courses":   ids,
		"tags":      a.NumTags(),
		"at_least":  atLeast,
		"ka_span":   a.KASpan(threshold),
		"ka_counts": a.KACounts(threshold),
		"threshold": threshold,
	})
}

func (s *Server) handleTypes(w http.ResponseWriter, r *http.Request) {
	if !methodGuard(w, r) {
		return
	}
	group := r.URL.Query().Get("group")
	ids, err := groupCourseIDs(group)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k := 3
	if strings.EqualFold(group, "all") || group == "" {
		k = 4
	}
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad k %q", v)
			return
		}
		k = n
	}
	model, err := factorize.Analyze(dataset.CoursesByID(ids), k, factorize.PaperOptions(),
		ontology.CS2013(), ontology.PDC12())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	type courseType struct {
		Course   string    `json:"course"`
		Dominant int       `json:"dominant_type"`
		Shares   []float64 `json:"shares"`
		Evenness float64   `json:"evenness"`
	}
	var courses []courseType
	for i, c := range model.Courses {
		courses = append(courses, courseType{
			Course: c.ID, Dominant: model.DominantType(i),
			Shares: model.TypeShare(i), Evenness: model.Evenness(i),
		})
	}
	types := make([]map[string]interface{}, k)
	for t := 0; t < k; t++ {
		shares := model.KAShare(t)
		kas := make(map[string]float64, len(shares))
		for ka, v := range shares {
			kas[ka] = v
		}
		top := model.TopTags(t, 5)
		topTags := make([]string, len(top))
		for i, tw := range top {
			topTags[i] = tw.Tag
		}
		types[t] = map[string]interface{}{
			"label":    model.TypeLabel(t),
			"ka_share": kas,
			"top_tags": topTags,
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"k": k, "courses": courses, "types": types,
		"redundancy": model.Redundancy(),
	})
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	if !methodGuard(w, r) {
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/api/figures/")
	for _, f := range core.Figures() {
		if f.ID != id {
			continue
		}
		art, err := f.Gen()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		svgNames := make([]string, 0, len(art.SVGs))
		for name := range art.SVGs {
			svgNames = append(svgNames, name)
		}
		sort.Strings(svgNames)
		// Serve one SVG directly when requested.
		if svg := r.URL.Query().Get("svg"); svg != "" {
			body, ok := art.SVGs[svg]
			if !ok {
				writeError(w, http.StatusNotFound, "figure %s has no SVG %q", id, svg)
				return
			}
			w.Header().Set("Content-Type", "image/svg+xml")
			_, _ = w.Write([]byte(body))
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"id": art.ID, "text": art.Text, "svgs": svgNames,
		})
		return
	}
	writeError(w, http.StatusNotFound, "unknown figure %q", id)
}
