// Package server exposes the CS Materials reproduction as a versioned
// JSON HTTP API, mirroring the fact that CS Materials itself is a
// public web resource (§3.1): course listings and details, material
// search, the agreement and factorization analyses, anchor-point
// recommendations, audits, and the regenerated paper figures.
//
// The v1 API lives under /api/v1/ and answers every request with a
// {"data": ..., "meta": {...}} envelope; errors use
// {"error": {"code", "message"}}. Legacy /api/... paths permanently
// redirect to their /api/v1/... equivalents.
//
// Every analysis endpoint is a thin dispatch into internal/engine: the
// analyses register in an engine.Registry, and one executor runs them
// all through the serving ladder (fresh cache → breaker-guarded
// singleflight compute → stale last-known-good fallback). The server
// wires no cache keys, breakers, or stale semantics per analysis —
// adding an analysis to the API is one registration in
// internal/engine/analyses. Routes, warmup, readiness, and metrics all
// iterate the registry.
//
// The API is multi-dataset: named, versioned datasets live in an
// internal/dataset.Registry — the synthetic seed corpus is dataset
// "default", more load from -data-dir at startup or arrive live via
// PUT /api/v1/datasets/{id}. GET /api/v1/datasets is the catalog, and
// every query/analysis route exists in a dataset-scoped form under
// /api/v1/datasets/{id}/...; the original un-scoped routes are
// permanent aliases for the default dataset and keep their exact
// response shapes. Caches, breakers, and stats partition per
// (dataset, analysis), so one dataset's failures or ingests never
// disturb another's serving behaviour.
//
// POST /api/v1/batch executes many analyses in one request on a
// bounded worker pool with per-item cache/singleflight/breaker
// semantics and per-item error envelopes, in deterministic input
// order; items may target any dataset. GET /readyz is the readiness
// probe (distinct from the /healthz liveness probe): it stays 503
// until the default dataset is loaded and every warmable analysis has
// been pre-computed, and reports per-dataset warmup state and breaker
// states. Per-route metrics are served at GET /debug/metrics. Built on
// net/http only.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"csmaterials/internal/core"
	"csmaterials/internal/dataset"
	"csmaterials/internal/engine"
	"csmaterials/internal/engine/analyses"
	"csmaterials/internal/fleet"
	"csmaterials/internal/materials"
	"csmaterials/internal/obs"
	"csmaterials/internal/resilience"
	"csmaterials/internal/resilience/faultinject"
	"csmaterials/internal/search"
	"csmaterials/internal/serving"
)

// DefaultCacheSize bounds the analysis result cache when Options does
// not say otherwise.
const DefaultCacheSize = 256

// DefaultMaxInFlight bounds concurrently served API requests when
// Options does not say otherwise.
const DefaultMaxInFlight = 256

// Options configures a Server.
type Options struct {
	// CacheSize bounds the analysis result cache in entries. Zero
	// means DefaultCacheSize; a negative value disables retention
	// (singleflight deduplication still applies).
	CacheSize int
	// Logger receives access logs and panic stacks; nil disables
	// logging (useful in tests and benchmarks).
	Logger *log.Logger
	// MaxInFlight bounds concurrently served /api/ requests; excess is
	// shed immediately with 429 + Retry-After. Zero means
	// DefaultMaxInFlight; a negative value disables shedding.
	MaxInFlight int
	// BreakerThreshold is the number of consecutive compute failures
	// that opens an analysis's circuit. Zero means
	// resilience.DefaultBreakerThreshold; a negative value disables
	// circuit breaking.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects before
	// half-opening for a probe. Zero means
	// resilience.DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// DisableStaleServe turns off last-known-good degradation: compute
	// failures become errors instead of stale responses.
	DisableStaleServe bool
	// BatchWorkers bounds the POST /api/v1/batch worker pool. Zero or
	// negative means engine.DefaultBatchWorkers.
	BatchWorkers int
	// Faults, when non-nil, injects chaos (latency, errors, panics)
	// into API routes and compute paths. Tests and demos only.
	Faults *faultinject.Injector
	// Tracer records per-request traces and aggregates the per-stage
	// latency histograms behind GET /metrics. Nil means a default
	// tracer with a DefaultTraceBuffer-deep ring.
	Tracer *obs.Tracer
	// Events receives one structured JSON line per API request (the
	// wide-event access log). Nil disables wide events; the plain
	// Logger access log is used instead when it is set.
	Events *obs.Logger
	// DataDir, when non-empty, is a directory of *.json dataset
	// documents ({"courses": [...]}) registered at startup, each named
	// after its file stem. An invalid file fails construction.
	DataDir string
	// APIKeys, when non-nil, locks the mutating dataset surface
	// (PUT/DELETE /api/v1/datasets/{ds}) behind its keyring and applies
	// its dataset grants (ownership, cache budgets, weights) to the
	// registry. Nil keeps the open single-tenant behavior.
	APIKeys *KeysFile
	// ReloadKeys, when non-nil, re-reads the keyring source for
	// Server.ReloadAPIKeys (SIGHUP / POST /api/v1/keys/reload) — cmd/serve
	// wires it to re-load the -api-keys-file path. CSM_ADMIN_KEY is
	// folded in on every reload, matching startup. Nil makes the keyring
	// static: reload requests answer 409 keys_static.
	ReloadKeys func() (*KeysFile, error)
	// IdleTTL, when positive, reclaims a non-default dataset's lazy
	// search index and warm cache entries after it has gone unqueried
	// for that long (the reaper goroutine must be started with
	// StartIdleReaper). Zero disables idle reclamation.
	IdleTTL time.Duration
	// Fleet, when non-nil, joins this replica to a multi-replica fleet:
	// analysis requests route to their key's owner on the consistent-hash
	// ring, batches fan out by owner, ingest invalidations broadcast,
	// and the csm_fleet_* families are exposed. Nil keeps the
	// single-process behavior byte-for-byte. cmd/serve builds one from
	// -node-id and -peers.
	Fleet *fleet.Fleet

	// disableWarmup skips the background readiness warmup so tests can
	// drive the /readyz transition deterministically; PUT ingests then
	// mark their dataset ready without warming.
	disableWarmup bool
	// clock overrides the idle-reclamation time source (tests).
	clock func() time.Time
}

// Server holds the shared state behind the handlers. Dataset snapshots
// are immutable; the registry swaps pointers, so handlers resolve a
// snapshot once per request and work over a consistent corpus.
type Server struct {
	datasets *dataset.Registry
	exec     *engine.Executor
	mux      *http.ServeMux
	handler  http.Handler
	cache    *serving.Cache
	metrics  *serving.Metrics
	logger   *log.Logger
	noWarmup bool

	limiter  *resilience.TenantLimiter
	breakers *resilience.BreakerSet // nil when circuit breaking is disabled
	faults   *faultinject.Injector  // nil when no chaos is injected
	fleet    *fleet.Fleet           // nil in single-process mode

	// keysMu guards keys so ReloadAPIKeys (SIGHUP, POST
	// /api/v1/keys/reload) can swap the keyring under live traffic.
	keysMu     sync.RWMutex
	keys       map[string]APIKey // by secret; empty = open mode
	reloadKeys func() (*KeysFile, error)

	// Idle reclamation: lastAccess tracks per-dataset query activity
	// under an injectable clock; reclaimed datasets drop their search
	// index and cache entries until the next touch.
	clock        func() time.Time
	idleTTL      time.Duration
	idleMu       sync.Mutex
	lastAccess   map[string]time.Time
	reclaimed    map[string]bool
	idleReclaims map[string]uint64

	tracer *obs.Tracer
	events *obs.Logger // nil disables wide-event logging

	// searchers caches one search index per dataset revision, built
	// lazily on first search and invalidated by revision mismatch.
	searcherMu sync.Mutex
	searchers  map[string]searcherEntry

	readyMu  sync.Mutex
	ready    bool  // default dataset warmed (gates /readyz)
	readyErr error // default dataset warmup failure
	dsState  map[string]DatasetReady

	// Background warmup lifecycle: lifeCtx bounds every spawned warmup
	// (BindLifecycle swaps in the process signal context so shutdown
	// cancels in-flight warms) and bg tracks the goroutines so
	// DrainBackground can wait for them during graceful drain.
	lifeMu  sync.Mutex
	lifeCtx context.Context
	bg      sync.WaitGroup
}

// searcherEntry pins a search index to the dataset revision it indexed.
type searcherEntry struct {
	rev uint64
	eng *search.Engine
}

// New builds a server over the synthesized dataset with defaults.
func New() (*Server, error) { return NewWithOptions(Options{}) }

// NewWithOptions builds a server with explicit serving options.
func NewWithOptions(o Options) (*Server, error) {
	reg, err := analyses.Default()
	if err != nil {
		return nil, err
	}
	size := o.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	maxInFlight := o.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = DefaultMaxInFlight
	} else if maxInFlight < 0 {
		maxInFlight = 0 // shedder treats 0 as unlimited
	}
	clock := o.clock
	if clock == nil {
		clock = time.Now
	}
	s := &Server{
		datasets:     dataset.NewRegistry(time.Now),
		mux:          http.NewServeMux(),
		cache:        serving.NewCache(size),
		metrics:      serving.NewMetrics(),
		logger:       o.Logger,
		noWarmup:     o.disableWarmup,
		limiter:      resilience.NewTenantLimiter(maxInFlight, 0),
		faults:       o.Faults,
		fleet:        o.Fleet,
		tracer:       o.Tracer,
		events:       o.Events,
		searchers:    map[string]searcherEntry{},
		dsState:      map[string]DatasetReady{},
		keys:         map[string]APIKey{},
		clock:        clock,
		idleTTL:      o.IdleTTL,
		lastAccess:   map[string]time.Time{},
		reclaimed:    map[string]bool{},
		idleReclaims: map[string]uint64{},
		lifeCtx:      context.Background(),
	}
	s.reloadKeys = o.ReloadKeys
	if o.APIKeys != nil {
		s.applyKeysFile(o.APIKeys)
	}
	if o.DataDir != "" {
		if _, err := s.datasets.LoadDir(o.DataDir); err != nil {
			return nil, err
		}
	}
	for _, id := range s.datasets.IDs() {
		s.dsState[id] = DatasetReady{Status: "starting"}
	}
	if s.tracer == nil {
		s.tracer = obs.NewTracer(DefaultTraceBuffer, nil)
	}
	if o.BreakerThreshold >= 0 {
		s.breakers = resilience.NewBreakerSet(o.BreakerThreshold, o.BreakerCooldown)
	}
	s.exec = engine.NewExecutor(reg, engine.ExecutorOptions{
		Datasets:   s.datasets,
		Cache:      s.cache,
		Breakers:   s.breakers,
		Faults:     o.Faults,
		StaleServe: !o.DisableStaleServe,
	})
	s.exec.SetBatchWorkers(o.BatchWorkers)
	s.retuneTenancy()
	s.metrics.ObserveCache(s.cache)
	s.metrics.ObserveResilience(func() resilience.Stats {
		var st resilience.Stats
		st.Shedder, st.Tenants = s.limiter.Stats()
		if len(st.Tenants) == 1 {
			if _, only := st.Tenants[dataset.DefaultID]; only {
				// Single-tenant snapshots keep the legacy shape.
				st.Tenants = nil
			}
		}
		if s.breakers != nil {
			st.Breakers = s.breakers.Stats()
		}
		return st
	})
	s.metrics.ObserveEngine(func() interface{} { return s.exec.Stats() })
	s.routes()
	if s.events != nil {
		// Wide events replace the plain access log: one line per
		// request, not two.
		s.handler = serving.Recover(s.logger, http.HandlerFunc(s.route))
	} else {
		s.handler = serving.Recover(s.logger, serving.AccessLog(s.logger, http.HandlerFunc(s.route)))
	}
	if !o.disableWarmup {
		s.spawnBackground(s.warmup)
	}
	return s, nil
}

// BindLifecycle ties subsequently spawned background warmups to ctx —
// cmd/serve passes its signal context so a shutdown cancels in-flight
// warms instead of orphaning them. Warmups already running keep the
// context they were spawned under.
func (s *Server) BindLifecycle(ctx context.Context) {
	s.lifeMu.Lock()
	s.lifeCtx = ctx
	s.lifeMu.Unlock()
}

// spawnBackground runs fn on a tracked goroutine under the current
// lifecycle context; DrainBackground waits for every such goroutine.
func (s *Server) spawnBackground(fn func(ctx context.Context)) {
	s.lifeMu.Lock()
	ctx := s.lifeCtx
	s.lifeMu.Unlock()
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		fn(ctx)
	}()
}

// DrainBackground blocks until all tracked background work (startup and
// ingest-triggered warmups) has finished. cmd/serve calls it after the
// HTTP listener has shut down.
func (s *Server) DrainBackground() { s.bg.Wait() }

// Metrics exposes the metrics registry (for cmd/serve and tests).
func (s *Server) Metrics() *serving.Metrics { return s.metrics }

// Cache exposes the result cache (for benchmarks and tests).
func (s *Server) Cache() *serving.Cache { return s.cache }

// Engine exposes the analysis executor (registry access for tests and
// tooling; fakes install via Engine().Registry().Replace).
func (s *Server) Engine() *engine.Executor { return s.exec }

// Datasets exposes the dataset registry (for cmd/serve and tests).
func (s *Server) Datasets() *dataset.Registry { return s.datasets }

// Tracer exposes the request tracer (for cmd/serve and tests).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.handle("GET /healthz", http.HandlerFunc(s.handleHealth))
	s.handle("GET /readyz", http.HandlerFunc(s.handleReady))
	// The un-scoped query and analysis routes are permanent aliases for
	// the default dataset; each family also exists dataset-scoped under
	// /api/v1/datasets/{ds}/... (the {ds} path value is what routes the
	// handler to a snapshot — both registrations share one handler).
	for _, prefix := range []string{"/api/v1/", "/api/v1/datasets/{ds}/"} {
		s.handleAPI("GET "+prefix+"courses", http.HandlerFunc(s.handleCourses))
		s.handleAPI("GET "+prefix+"courses/{id}", http.HandlerFunc(s.handleCourse))
		s.handleAPI("GET "+prefix+"courses/{id}/{view}", http.HandlerFunc(s.handleCourseView))
		s.handleAPI("GET "+prefix+"search", http.HandlerFunc(s.handleSearch))
		s.handleAPI("GET "+prefix+"figures/{id}", http.HandlerFunc(s.handleFigure))
		// Every registered analysis is a GET route by name; the handler
		// is one generic dispatch, so the route set IS the registry.
		for _, name := range s.exec.Registry().Names() {
			name := name
			s.handleAPI("GET "+prefix+name, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				s.handleAnalysis(w, r, name, r.URL.Query())
			}))
		}
	}
	s.handleAPI("POST /api/v1/batch", http.HandlerFunc(s.handleBatch))
	s.handleAPI("GET /api/v1/fleet", http.HandlerFunc(s.handleFleet))
	s.handleAPI("POST /api/v1/fleet/invalidate", http.HandlerFunc(s.handleFleetInvalidate))
	s.handleAPI("GET /api/v1/datasets", http.HandlerFunc(s.handleDatasetList))
	s.handleAPI("GET /api/v1/datasets/{ds}", http.HandlerFunc(s.handleDatasetGet))
	s.handleAPI("PUT /api/v1/datasets/{ds}", http.HandlerFunc(s.handleDatasetPut))
	s.handleAPI("PATCH /api/v1/datasets/{ds}", http.HandlerFunc(s.handleDatasetPatch))
	s.handleAPI("DELETE /api/v1/datasets/{ds}", http.HandlerFunc(s.handleDatasetDelete))
	s.handleAPI("POST /api/v1/keys/reload", http.HandlerFunc(s.handleKeysReload))
	s.handle("GET /debug/metrics", s.metrics.Handler())
	s.handle("GET /metrics", http.HandlerFunc(s.handleProm))
	s.handle("GET /debug/trace", http.HandlerFunc(s.handleTraceList))
	s.handle("GET /debug/trace/{id}", http.HandlerFunc(s.handleTrace))
	s.handle("/api/", http.HandlerFunc(s.handleLegacy))
}

// handle registers pattern with per-route instrumentation.
func (s *Server) handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, serving.Instrument(s.metrics, pattern, h))
}

// handleAPI registers an /api/v1 route behind request tracing, the
// two-level admission limiter, and (when configured) the fault
// injector, inside the per-route instrumentation so shed 429s are
// metered against their route. Tracing wraps the limiter so shed
// requests still produce a trace and a wide event. The limiter
// attributes each request to the dataset it targets (the {ds} path
// value; un-scoped aliases and non-dataset routes bill the default
// tenant), so one tenant's flood cannot consume another's quota.
func (s *Server) handleAPI(pattern string, h http.Handler) {
	tenantOf := func(r *http.Request) string {
		ds, _ := requestDataset(r)
		return ds
	}
	s.handle(pattern, s.traced(pattern, serving.Shed(s.limiter, tenantOf, s.faults.Middleware(h))))
}

// retuneTenancy recomputes the cache partition and admission quotas
// from the current dataset set and its registry attrs. Called at
// construction and after every dataset PUT/DELETE, so budgets track
// the tenant population: with only the default dataset registered the
// whole cache and the whole admission cap belong to it (legacy
// single-tenant behavior), and each additional tenant gets a weighted
// fair share, overridable per dataset via Attrs.CacheBudget.
func (s *Server) retuneTenancy() {
	ids := s.datasets.IDs()
	overrides := make(map[string]int)
	weights := make(map[string]float64, len(ids))
	for _, id := range ids {
		a := s.datasets.Attrs(id)
		if a.CacheBudget > 0 {
			overrides[id] = a.CacheBudget
		}
		w := a.Weight
		if w <= 0 {
			w = 1
		}
		weights[id] = w
	}
	s.cache.Partition(ids, overrides)
	s.limiter.SetTenants(weights)
}

// route dispatches through the mux, replacing its plain-text 404/405
// responses with the API's JSON error envelope.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	if _, pattern := s.mux.Handler(r); pattern == "" {
		serving.Instrument(s.metrics, "(unmatched)", http.HandlerFunc(s.handleUnmatched)).ServeHTTP(w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleUnmatched(w http.ResponseWriter, r *http.Request) {
	// If the path matches a real route under some other method, the
	// original method was the problem: answer 405 listing the allowed
	// methods. The method-less legacy "/api/" catch-all does not count
	// as a real route here. HEAD rides along with GET, per net/http.
	var allowed []string
	for _, m := range []string{http.MethodGet, http.MethodPost, http.MethodPut, http.MethodPatch, http.MethodDelete} {
		if m == r.Method || (m == http.MethodGet && r.Method == http.MethodHead) {
			continue
		}
		probe := r.Clone(r.Context())
		probe.Method = m
		if _, pattern := s.mux.Handler(probe); pattern != "" && pattern != "/api/" {
			allowed = append(allowed, m)
		}
	}
	if len(allowed) > 0 {
		w.Header().Set("Allow", strings.Join(allowed, ", "))
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "method %s not allowed", r.Method)
		return
	}
	writeError(w, http.StatusNotFound, "not_found", "no such endpoint %s", r.URL.Path)
}

// handleLegacy permanently redirects pre-v1 /api/... paths to their
// /api/v1/... equivalents, preserving the query string.
func (s *Server) handleLegacy(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/")
	if rest == "v1" || strings.HasPrefix(rest, "v1/") {
		// A /api/v1/ path no specific pattern claimed: either a wrong
		// method on a real route or an unknown endpoint.
		s.handleUnmatched(w, r)
		return
	}
	target := "/api/v1/" + rest
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	http.Redirect(w, r, target, http.StatusPermanentRedirect)
}

// --- Envelope ------------------------------------------------------------

// envelope is the uniform success shape of every v1 response.
type envelope struct {
	Data interface{} `json:"data"`
	Meta interface{} `json:"meta"`
}

// ListMeta is the meta block of paginated list endpoints.
type ListMeta struct {
	Total  int `json:"total"`
	Limit  int `json:"limit"`
	Offset int `json:"offset"`
}

// CacheMeta is the meta block of cached analysis endpoints.
type CacheMeta struct {
	// Cache is "hit" when the result was served without recomputing
	// (retained entry or shared singleflight), "miss" when this
	// request computed it, and "stale" when a last-known-good value
	// was served because the compute path is failing or circuit-broken.
	Cache string `json:"cache"`
	Key   string `json:"key"`
	// Stale marks a degraded response; stale responses also carry an
	// X-Served-Stale: true header.
	Stale bool `json:"stale,omitempty"`
}

// DatasetCacheMeta is CacheMeta plus dataset identity — the meta block
// of dataset-scoped analysis endpoints. The un-scoped aliases keep the
// plain CacheMeta so their envelopes stay byte-identical to the
// pre-datasets API.
type DatasetCacheMeta struct {
	CacheMeta
	// Dataset is the dataset the analysis computed over.
	Dataset string `json:"dataset"`
	// Revision is the dataset revision served; a re-ingest bumps it, so
	// clients can correlate responses with the corpus they saw.
	Revision uint64 `json:"revision"`
}

// BatchMeta is the meta block of POST /api/v1/batch responses.
type BatchMeta struct {
	Items   int `json:"items"`
	Workers int `json:"workers"`
}

func writeData(w http.ResponseWriter, status int, data, meta interface{}) {
	if meta == nil {
		meta = struct{}{}
	}
	serving.WriteJSON(w, status, envelope{Data: data, Meta: meta})
}

// ErrorBody is the uniform error shape.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	serving.WriteJSON(w, status, errorEnvelope{Error: ErrorBody{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// --- Generic analysis dispatch -------------------------------------------

// requestDataset resolves which dataset a request targets: the {ds}
// path value on scoped routes, the default dataset on the un-scoped
// aliases. scoped reports which family the route belongs to (scoped
// routes carry dataset identity in their meta block).
func requestDataset(r *http.Request) (ds string, scoped bool) {
	if ds = r.PathValue("ds"); ds != "" {
		return ds, true
	}
	return dataset.DefaultID, false
}

// execAnalysis executes a registered analysis against ds through the
// engine's serving ladder and maps errors to HTTP. It returns (value,
// outcome, true) when the caller should write the value; on false the
// error response has already been written (or, for a disconnected
// client, suppressed).
func (s *Server) execAnalysis(w http.ResponseWriter, r *http.Request, ds, name string, values url.Values) (interface{}, engine.Outcome, bool) {
	s.touchDataset(ds)
	v, out, err := s.exec.RunOn(r.Context(), ds, name, values)
	if err == nil {
		if out.Stale {
			w.Header().Set("X-Served-Stale", "true")
		}
		return v, out, true
	}
	if errors.Is(err, context.Canceled) {
		// The client disconnected; there is nobody to answer. A flight
		// with remaining waiters finishes for them and is cached.
		return nil, engine.Outcome{}, false
	}
	switch {
	case errors.Is(err, resilience.ErrOpen):
		w.Header().Set("Retry-After", serving.RetryAfterSeconds(s.exec.RetryAfterOn(ds, name)))
		writeError(w, http.StatusServiceUnavailable, "circuit_open",
			"analysis %q is temporarily disabled after repeated failures; retry later", name)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "timeout", "computation for %q timed out", name)
	default:
		ee := engine.AsError(err)
		writeError(w, ee.Status, ee.Code, "%s", ee.Message)
	}
	return nil, engine.Outcome{}, false
}

// runAnalysis executes a registered analysis for the request's dataset
// and shapes the meta block for the route family: plain CacheMeta on
// the un-scoped aliases (byte-identical to the pre-datasets API),
// DatasetCacheMeta on scoped routes.
func (s *Server) runAnalysis(w http.ResponseWriter, r *http.Request, name string, values url.Values) (interface{}, interface{}, bool) {
	ds, scoped := requestDataset(r)
	v, out, ok := s.execAnalysis(w, r, ds, name, values)
	if !ok {
		return nil, nil, false
	}
	cm := CacheMeta{Cache: out.Cache, Key: out.Key, Stale: out.Stale}
	if scoped {
		return v, DatasetCacheMeta{CacheMeta: cm, Dataset: out.Dataset, Revision: out.Revision}, true
	}
	return v, cm, true
}

// handleAnalysis is the shared GET handler behind every analysis route,
// un-scoped and dataset-scoped alike. In fleet mode the request first
// routes to its key's owner (see fleet.go); a false return means this
// replica should serve it on the local ladder after all.
func (s *Server) handleAnalysis(w http.ResponseWriter, r *http.Request, name string, values url.Values) {
	if s.fleet != nil && s.fleetAnalysis(w, r, name, values) {
		return
	}
	v, meta, ok := s.runAnalysis(w, r, name, values)
	if !ok {
		return
	}
	writeData(w, http.StatusOK, v, meta)
}

// --- Batch ---------------------------------------------------------------

// BatchRequest is the POST /api/v1/batch body.
type BatchRequest struct {
	Items []engine.BatchItem `json:"items"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad batch body: %v", err)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty batch: pass items")
		return
	}
	if len(req.Items) > engine.MaxBatchItems {
		writeError(w, http.StatusBadRequest, "bad_request",
			"batch of %d items exceeds the limit of %d", len(req.Items), engine.MaxBatchItems)
		return
	}
	for _, it := range req.Items {
		if it.Dataset != "" {
			s.touchDataset(it.Dataset)
		}
	}
	if s.fleet != nil && r.Header.Get(fleet.ForwardedHeader) == "" {
		// Distributed mode: partition by owner, fan out, reassemble.
		// Forwarded sub-batches skip this arm (loop guard) and run on
		// the local ladder below.
		s.fleetBatch(w, r, req.Items)
		return
	}
	if s.fleet != nil && s.fleet.Draining() {
		s.fleet.CountDrainRefused()
		writeError(w, http.StatusServiceUnavailable, "node_draining",
			"node %s is draining; compute locally or retry another replica", s.fleet.Self())
		return
	}
	results := s.exec.RunBatch(r.Context(), req.Items)
	if r.Context().Err() != nil {
		return // client gone; nothing to write
	}
	writeData(w, http.StatusOK, results, BatchMeta{Items: len(results), Workers: s.exec.BatchWorkers()})
}

// --- Query parameter parsing ---------------------------------------------

// parseIntParam parses an integer query parameter, returning def when
// absent and an error when malformed or below min.
func parseIntParam(r *http.Request, name string, def, min int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < min {
		return 0, fmt.Errorf("bad %s %q: want integer >= %d", name, v, min)
	}
	return n, nil
}

// parsePage parses limit/offset with strict validation.
func parsePage(r *http.Request, defLimit int) (limit, offset int, err error) {
	if limit, err = parseIntParam(r, "limit", defLimit, 1); err != nil {
		return 0, 0, err
	}
	if offset, err = parseIntParam(r, "offset", 0, 0); err != nil {
		return 0, 0, err
	}
	return limit, offset, nil
}

// pageBounds clips [offset, offset+limit) to n items.
func pageBounds(n, limit, offset int) (lo, hi int) {
	lo = offset
	if lo > n {
		lo = n
	}
	hi = lo + limit
	if hi > n {
		hi = n
	}
	return lo, hi
}

// --- Health --------------------------------------------------------------

// HealthResponse is the /healthz data payload. Courses and Materials
// describe the default dataset (liveness predates multi-dataset);
// Datasets counts every registered dataset.
type HealthResponse struct {
	Status    string `json:"status"`
	Courses   int    `json:"courses"`
	Materials int    `json:"materials"`
	Datasets  int    `json:"datasets"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	def := s.datasets.Default()
	writeData(w, http.StatusOK, HealthResponse{
		Status:    "ok",
		Courses:   len(def.Repo().Courses()),
		Materials: def.Repo().NumMaterials(),
		Datasets:  s.datasets.Len(),
	}, nil)
}

// --- Readiness -----------------------------------------------------------

// DatasetReady is one dataset's warmup state in the /readyz payload.
type DatasetReady struct {
	// Status is "starting" (registered, warmup not begun), "warming"
	// (warmup in progress), "ready", or "unready" (warmup failed).
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// setDatasetState records one dataset's warmup state.
func (s *Server) setDatasetState(id string, st DatasetReady) {
	s.readyMu.Lock()
	s.dsState[id] = st
	s.readyMu.Unlock()
}

// dropDatasetState forgets a deleted dataset's warmup state.
func (s *Server) dropDatasetState(id string) {
	s.readyMu.Lock()
	delete(s.dsState, id)
	s.readyMu.Unlock()
}

// warmDataset pre-computes one dataset's warmable analyses under the
// exact (dataset, revision)-scoped cache keys live requests use,
// recording the outcome in the per-dataset readiness state.
func (s *Server) warmDataset(ctx context.Context, id string) error {
	s.setDatasetState(id, DatasetReady{Status: "warming"})
	err := s.exec.WarmDataset(ctx, id)
	if err != nil {
		s.setDatasetState(id, DatasetReady{Status: "unready", Reason: err.Error()})
		return err
	}
	s.setDatasetState(id, DatasetReady{Status: "ready"})
	return nil
}

// warmup warms every dataset registered at startup, default first: the
// default dataset's outcome gates /readyz (proving the seed corpus is
// loaded and the all-group analyses are warmable); data-dir datasets
// warm after it and report per-dataset state only.
func (s *Server) warmup(ctx context.Context) {
	err := s.warmDataset(ctx, dataset.DefaultID)
	s.readyMu.Lock()
	s.ready = err == nil
	s.readyErr = err
	s.readyMu.Unlock()
	for _, id := range s.datasets.IDs() {
		if id != dataset.DefaultID {
			_ = s.warmDataset(ctx, id)
		}
	}
}

// ReadyResponse is the /readyz data payload. Unlike /healthz (pure
// liveness), readiness reflects whether the server has warmed its
// all-group analyses over the default dataset, and the payload always
// reports per-dataset warmup states and circuit states so operators
// can see degradation at a glance.
type ReadyResponse struct {
	Status   string                             `json:"status"` // "ready", "starting", or "unready"
	Reason   string                             `json:"reason,omitempty"`
	Analyses []string                           `json:"analyses"`
	Datasets map[string]DatasetReady            `json:"datasets"`
	Breakers map[string]resilience.BreakerStats `json:"breakers"`
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.readyMu.Lock()
	ready, readyErr := s.ready, s.readyErr
	states := make(map[string]DatasetReady, len(s.dsState))
	for id, st := range s.dsState {
		states[id] = st
	}
	s.readyMu.Unlock()
	resp := ReadyResponse{
		Status:   "ready",
		Analyses: s.exec.Registry().SortedNames(),
		Datasets: states,
		Breakers: map[string]resilience.BreakerStats{},
	}
	if s.breakers != nil {
		resp.Breakers = s.breakers.Stats()
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
		resp.Status = "starting"
		if readyErr != nil {
			resp.Status = "unready"
			resp.Reason = readyErr.Error()
		}
	}
	if s.fleet != nil && s.fleet.Draining() {
		// Draining replicas keep serving in-flight and direct traffic
		// but must drop out of load-balancer rotation.
		status = http.StatusServiceUnavailable
		resp.Status = "draining"
	}
	writeData(w, status, resp, nil)
}

// --- Courses -------------------------------------------------------------

// CourseSummary is the list-view shape of a course.
type CourseSummary struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Institution string `json:"institution,omitempty"`
	Instructor  string `json:"instructor,omitempty"`
	Group       string `json:"group"`
	Secondary   string `json:"secondary_group,omitempty"`
	Tags        int    `json:"tags"`
	Materials   int    `json:"materials"`
}

func summarize(c *materials.Course) CourseSummary {
	return CourseSummary{
		ID: c.ID, Name: c.Name, Institution: c.Institution, Instructor: c.Instructor,
		Group: string(c.Group), Secondary: string(c.SecondaryGroup),
		Tags: len(c.TagSet()), Materials: len(c.Materials),
	}
}

// snapshot resolves the request's dataset to its current snapshot,
// writing the 400/404 error envelope (and returning nil) when the ID is
// malformed or unknown. Handlers hold the snapshot for the whole
// request, so a concurrent ingest cannot shift the corpus under them.
func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) *dataset.Snapshot {
	ds, _ := requestDataset(r)
	if err := dataset.ValidateID(ds); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%s", err.Error())
		return nil
	}
	snap, ok := s.datasets.Get(ds)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown dataset %q", ds)
		return nil
	}
	s.touchDataset(ds)
	return snap
}

func (s *Server) handleCourses(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot(w, r)
	if snap == nil {
		return
	}
	limit, offset, err := parsePage(r, 20)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	cs := snap.Repo().Courses()
	lo, hi := pageBounds(len(cs), limit, offset)
	out := make([]CourseSummary, 0, hi-lo)
	for _, c := range cs[lo:hi] {
		out = append(out, summarize(c))
	}
	writeData(w, http.StatusOK, out, ListMeta{Total: len(cs), Limit: limit, Offset: offset})
}

// CourseDetail is the single-course data payload.
type CourseDetail struct {
	Course CourseSummary `json:"course"`
	Tags   []string      `json:"tags"`
}

func (s *Server) course(w http.ResponseWriter, r *http.Request) *materials.Course {
	snap := s.snapshot(w, r)
	if snap == nil {
		return nil
	}
	id := r.PathValue("id")
	c := snap.Repo().Course(id)
	if c == nil {
		writeError(w, http.StatusNotFound, "not_found", "unknown course %q", id)
	}
	return c
}

func (s *Server) handleCourse(w http.ResponseWriter, r *http.Request) {
	c := s.course(w, r)
	if c == nil {
		return
	}
	writeData(w, http.StatusOK, CourseDetail{Course: summarize(c), Tags: c.SortedTags()}, nil)
}

// handleCourseView serves /api/v1/courses/{id}/{view}. "materials" is
// the one inline view; every other view dispatches into the analysis
// registry with the course ID injected as the "course" parameter, so
// per-course analyses (anchors, audit, pdcmaterials) need no wiring
// here.
func (s *Server) handleCourseView(w http.ResponseWriter, r *http.Request) {
	c := s.course(w, r)
	if c == nil {
		return
	}
	view := r.PathValue("view")
	if view == "materials" {
		writeData(w, http.StatusOK, c.Materials, ListMeta{Total: len(c.Materials), Limit: len(c.Materials), Offset: 0})
		return
	}
	if _, ok := s.exec.Registry().Get(view); !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown course view %q", view)
		return
	}
	values := r.URL.Query()
	values.Set("course", c.ID)
	v, m, ok := s.runAnalysis(w, r, view, values)
	if !ok {
		return
	}
	writeData(w, http.StatusOK, v, m)
}

// --- Search --------------------------------------------------------------

// SearchHit is one material search result.
type SearchHit struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Type    string   `json:"type"`
	Author  string   `json:"author,omitempty"`
	Score   float64  `json:"score"`
	Matched []string `json:"matched_tags,omitempty"`
}

// searcherFor returns the search index for snap's dataset revision,
// building and caching it on first use; a re-ingest's revision bump
// invalidates the cached index.
func (s *Server) searcherFor(snap *dataset.Snapshot) *search.Engine {
	s.searcherMu.Lock()
	defer s.searcherMu.Unlock()
	if e, ok := s.searchers[snap.ID()]; ok && e.rev == snap.Revision() {
		return e.eng
	}
	eng := search.NewEngine(snap.Repo())
	s.searchers[snap.ID()] = searcherEntry{rev: snap.Revision(), eng: eng}
	return eng
}

// dropSearcher forgets a deleted dataset's search index.
func (s *Server) dropSearcher(id string) {
	s.searcherMu.Lock()
	delete(s.searchers, id)
	s.searcherMu.Unlock()
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot(w, r)
	if snap == nil {
		return
	}
	limit, offset, err := parsePage(r, 20)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	q := search.Query{
		Text:        r.URL.Query().Get("text"),
		Author:      r.URL.Query().Get("author"),
		Language:    r.URL.Query().Get("language"),
		CourseLevel: r.URL.Query().Get("level"),
	}
	if tags := r.URL.Query().Get("tags"); tags != "" {
		q.Tags = strings.Split(tags, ",")
	}
	if p := r.URL.Query().Get("prefix"); p != "" {
		q.TagPrefixes = []string{p}
	}
	if len(q.Tags) == 0 && len(q.TagPrefixes) == 0 && q.Text == "" &&
		q.Author == "" && q.Language == "" && q.CourseLevel == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "empty query: pass tags, prefix, text, or a facet")
		return
	}
	results := s.searcherFor(snap).Search(q) // Limit 0: rank everything, then paginate
	lo, hi := pageBounds(len(results), limit, offset)
	out := make([]SearchHit, 0, hi-lo)
	for _, res := range results[lo:hi] {
		out = append(out, SearchHit{
			ID: res.Material.ID, Title: res.Material.Title, Type: string(res.Material.Type),
			Author: res.Material.Author, Score: res.Score, Matched: res.MatchedTags,
		})
	}
	writeData(w, http.StatusOK, out, ListMeta{Total: len(results), Limit: limit, Offset: offset})
}

// --- Figures -------------------------------------------------------------

// FigureResponse is the /api/v1/figures/{id} data payload.
type FigureResponse struct {
	ID   string   `json:"id"`
	Text string   `json:"text"`
	SVGs []string `json:"svgs"`
}

// handleFigure dispatches the figures analysis for the path's ID and
// adds the one figure-specific affordance: ?svg=<name> serves a single
// SVG body from the cached artifact.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	values := url.Values{"id": []string{r.PathValue("id")}}
	v, m, ok := s.runAnalysis(w, r, "figures", values)
	if !ok {
		return
	}
	art := v.(*core.Artifact)
	if svg := r.URL.Query().Get("svg"); svg != "" {
		body, ok := art.SVGs[svg]
		if !ok {
			writeError(w, http.StatusNotFound, "not_found", "figure %s has no SVG %q", art.ID, svg)
			return
		}
		w.Header().Set("Content-Type", "image/svg+xml")
		_, _ = w.Write([]byte(body))
		return
	}
	svgNames := make([]string, 0, len(art.SVGs))
	for name := range art.SVGs {
		svgNames = append(svgNames, name)
	}
	sort.Strings(svgNames)
	writeData(w, http.StatusOK, FigureResponse{ID: art.ID, Text: art.Text, SVGs: svgNames}, m)
}
