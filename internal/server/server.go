// Package server exposes the CS Materials reproduction as a versioned
// JSON HTTP API, mirroring the fact that CS Materials itself is a
// public web resource (§3.1): course listings and details, material
// search, the agreement and factorization analyses, anchor-point
// recommendations, audits, and the regenerated paper figures.
//
// The v1 API lives under /api/v1/ and answers every request with a
// {"data": ..., "meta": {...}} envelope; errors use
// {"error": {"code", "message"}}. Legacy /api/... paths permanently
// redirect to their /api/v1/... equivalents.
//
// The server is read-only and the dataset deterministic, so analysis
// results are cached forever (bounded by size) in internal/serving's
// LRU cache; concurrent identical requests collapse into a single
// computation via singleflight. Per-route metrics are served at
// GET /debug/metrics. Built on net/http only.
package server

import (
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"csmaterials/internal/agreement"
	"csmaterials/internal/anchor"
	"csmaterials/internal/audit"
	"csmaterials/internal/catalog"
	"csmaterials/internal/cluster"
	"csmaterials/internal/core"
	"csmaterials/internal/dataset"
	"csmaterials/internal/factorize"
	"csmaterials/internal/materials"
	"csmaterials/internal/nnmf"
	"csmaterials/internal/ontology"
	"csmaterials/internal/search"
	"csmaterials/internal/serving"
)

// DefaultCacheSize bounds the analysis result cache when Options does
// not say otherwise.
const DefaultCacheSize = 256

// Options configures a Server.
type Options struct {
	// CacheSize bounds the analysis result cache in entries. Zero
	// means DefaultCacheSize; a negative value disables retention
	// (singleflight deduplication still applies).
	CacheSize int
	// Logger receives access logs and panic stacks; nil disables
	// logging (useful in tests and benchmarks).
	Logger *log.Logger
}

// Server holds the shared read-only state behind the handlers.
type Server struct {
	repo        *materials.Repository
	engine      *search.Engine
	recommender *anchor.Recommender
	mux         *http.ServeMux
	handler     http.Handler
	cache       *serving.Cache
	metrics     *serving.Metrics
	logger      *log.Logger

	// analyzeTypes is factorize.Analyze, injectable so tests can count
	// underlying calls through the cache/singleflight path.
	analyzeTypes func([]*materials.Course, int, nnmf.Options, ...*ontology.Guideline) (*factorize.Model, error)
}

// New builds a server over the synthesized dataset with defaults.
func New() (*Server, error) { return NewWithOptions(Options{}) }

// NewWithOptions builds a server with explicit serving options.
func NewWithOptions(o Options) (*Server, error) {
	rec, err := anchor.NewRecommender(ontology.CS2013(), ontology.PDC12())
	if err != nil {
		return nil, err
	}
	size := o.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	s := &Server{
		repo:         dataset.Repository(),
		engine:       search.NewEngine(dataset.Repository()),
		recommender:  rec,
		mux:          http.NewServeMux(),
		cache:        serving.NewCache(size),
		metrics:      serving.NewMetrics(),
		logger:       o.Logger,
		analyzeTypes: factorize.Analyze,
	}
	s.metrics.ObserveCache(s.cache)
	s.routes()
	s.handler = serving.Recover(s.logger, serving.AccessLog(s.logger, http.HandlerFunc(s.route)))
	return s, nil
}

// Metrics exposes the metrics registry (for cmd/serve and tests).
func (s *Server) Metrics() *serving.Metrics { return s.metrics }

// Cache exposes the result cache (for benchmarks and tests).
func (s *Server) Cache() *serving.Cache { return s.cache }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.handle("GET /healthz", http.HandlerFunc(s.handleHealth))
	s.handle("GET /api/v1/courses", http.HandlerFunc(s.handleCourses))
	s.handle("GET /api/v1/courses/{id}", http.HandlerFunc(s.handleCourse))
	s.handle("GET /api/v1/courses/{id}/{view}", http.HandlerFunc(s.handleCourseView))
	s.handle("GET /api/v1/search", http.HandlerFunc(s.handleSearch))
	s.handle("GET /api/v1/agreement", http.HandlerFunc(s.handleAgreement))
	s.handle("GET /api/v1/types", http.HandlerFunc(s.handleTypes))
	s.handle("GET /api/v1/cluster", http.HandlerFunc(s.handleCluster))
	s.handle("GET /api/v1/figures/{id}", http.HandlerFunc(s.handleFigure))
	s.handle("GET /debug/metrics", s.metrics.Handler())
	s.handle("/api/", http.HandlerFunc(s.handleLegacy))
}

// handle registers pattern with per-route instrumentation.
func (s *Server) handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, serving.Instrument(s.metrics, pattern, h))
}

// route dispatches through the mux, replacing its plain-text 404/405
// responses with the API's JSON error envelope.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	if _, pattern := s.mux.Handler(r); pattern == "" {
		serving.Instrument(s.metrics, "(unmatched)", http.HandlerFunc(s.handleUnmatched)).ServeHTTP(w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleUnmatched(w http.ResponseWriter, r *http.Request) {
	// The API is GET-only: if the path matches a real route under GET,
	// the original method was the problem. The method-less legacy
	// "/api/" catch-all does not count as a real route here.
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		probe := r.Clone(r.Context())
		probe.Method = http.MethodGet
		if _, pattern := s.mux.Handler(probe); pattern != "" && pattern != "/api/" {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "method %s not allowed", r.Method)
			return
		}
	}
	writeError(w, http.StatusNotFound, "not_found", "no such endpoint %s", r.URL.Path)
}

// handleLegacy permanently redirects pre-v1 /api/... paths to their
// /api/v1/... equivalents, preserving the query string.
func (s *Server) handleLegacy(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/")
	if rest == "v1" || strings.HasPrefix(rest, "v1/") {
		// A /api/v1/ path no specific pattern claimed: either a wrong
		// method on a real route or an unknown endpoint.
		s.handleUnmatched(w, r)
		return
	}
	target := "/api/v1/" + rest
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	http.Redirect(w, r, target, http.StatusPermanentRedirect)
}

// --- Envelope ------------------------------------------------------------

// envelope is the uniform success shape of every v1 response.
type envelope struct {
	Data interface{} `json:"data"`
	Meta interface{} `json:"meta"`
}

// ListMeta is the meta block of paginated list endpoints.
type ListMeta struct {
	Total  int `json:"total"`
	Limit  int `json:"limit"`
	Offset int `json:"offset"`
}

// CacheMeta is the meta block of cached analysis endpoints.
type CacheMeta struct {
	// Cache is "hit" when the result was served without recomputing
	// (retained entry or shared singleflight), "miss" otherwise.
	Cache string `json:"cache"`
	Key   string `json:"key"`
}

func cacheMeta(key string, served bool) CacheMeta {
	if served {
		return CacheMeta{Cache: "hit", Key: key}
	}
	return CacheMeta{Cache: "miss", Key: key}
}

func writeData(w http.ResponseWriter, status int, data, meta interface{}) {
	if meta == nil {
		meta = struct{}{}
	}
	serving.WriteJSON(w, status, envelope{Data: data, Meta: meta})
}

// ErrorBody is the uniform error shape.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	serving.WriteJSON(w, status, errorEnvelope{Error: ErrorBody{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// httpError lets cached compute functions carry a status and code.
type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func writeComputeError(w http.ResponseWriter, err error) {
	if he, ok := err.(*httpError); ok {
		writeError(w, he.status, he.code, "%s", he.msg)
		return
	}
	writeError(w, http.StatusInternalServerError, "internal", "%v", err)
}

// --- Query parameter parsing ---------------------------------------------

// parseIntParam parses an integer query parameter, returning def when
// absent and an error when malformed or below min.
func parseIntParam(r *http.Request, name string, def, min int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < min {
		return 0, fmt.Errorf("bad %s %q: want integer >= %d", name, v, min)
	}
	return n, nil
}

// parsePage parses limit/offset with strict validation.
func parsePage(r *http.Request, defLimit int) (limit, offset int, err error) {
	if limit, err = parseIntParam(r, "limit", defLimit, 1); err != nil {
		return 0, 0, err
	}
	if offset, err = parseIntParam(r, "offset", 0, 0); err != nil {
		return 0, 0, err
	}
	return limit, offset, nil
}

// pageBounds clips [offset, offset+limit) to n items.
func pageBounds(n, limit, offset int) (lo, hi int) {
	lo = offset
	if lo > n {
		lo = n
	}
	hi = lo + limit
	if hi > n {
		hi = n
	}
	return lo, hi
}

// --- Health --------------------------------------------------------------

// HealthResponse is the /healthz data payload.
type HealthResponse struct {
	Status    string `json:"status"`
	Courses   int    `json:"courses"`
	Materials int    `json:"materials"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeData(w, http.StatusOK, HealthResponse{
		Status:    "ok",
		Courses:   len(s.repo.Courses()),
		Materials: s.repo.NumMaterials(),
	}, nil)
}

// --- Courses -------------------------------------------------------------

// CourseSummary is the list-view shape of a course.
type CourseSummary struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Institution string `json:"institution,omitempty"`
	Instructor  string `json:"instructor,omitempty"`
	Group       string `json:"group"`
	Secondary   string `json:"secondary_group,omitempty"`
	Tags        int    `json:"tags"`
	Materials   int    `json:"materials"`
}

func summarize(c *materials.Course) CourseSummary {
	return CourseSummary{
		ID: c.ID, Name: c.Name, Institution: c.Institution, Instructor: c.Instructor,
		Group: string(c.Group), Secondary: string(c.SecondaryGroup),
		Tags: len(c.TagSet()), Materials: len(c.Materials),
	}
}

func (s *Server) handleCourses(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := parsePage(r, 20)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	cs := s.repo.Courses()
	lo, hi := pageBounds(len(cs), limit, offset)
	out := make([]CourseSummary, 0, hi-lo)
	for _, c := range cs[lo:hi] {
		out = append(out, summarize(c))
	}
	writeData(w, http.StatusOK, out, ListMeta{Total: len(cs), Limit: limit, Offset: offset})
}

// CourseDetail is the single-course data payload.
type CourseDetail struct {
	Course CourseSummary `json:"course"`
	Tags   []string      `json:"tags"`
}

func (s *Server) course(w http.ResponseWriter, r *http.Request) *materials.Course {
	id := r.PathValue("id")
	c := s.repo.Course(id)
	if c == nil {
		writeError(w, http.StatusNotFound, "not_found", "unknown course %q", id)
	}
	return c
}

func (s *Server) handleCourse(w http.ResponseWriter, r *http.Request) {
	c := s.course(w, r)
	if c == nil {
		return
	}
	writeData(w, http.StatusOK, CourseDetail{Course: summarize(c), Tags: c.SortedTags()}, nil)
}

// AnchorRec is one §5.2 anchor-point recommendation.
type AnchorRec struct {
	Rule     string   `json:"rule"`
	Title    string   `json:"title"`
	Score    float64  `json:"score"`
	Audience string   `json:"audience"`
	Activity string   `json:"activity"`
	Matched  []string `json:"matched_anchors"`
	Teaches  []string `json:"teaches"`
}

// AuditUnit is one covered CS2013 unit in an audit report.
type AuditUnit struct {
	Unit     string  `json:"unit"`
	Tier     string  `json:"tier"`
	Covered  int     `json:"covered"`
	Total    int     `json:"total"`
	Fraction float64 `json:"fraction"`
}

// AuditResponse is the course audit data payload.
type AuditResponse struct {
	Core1Coverage     float64     `json:"core1_coverage"`
	Core2Coverage     float64     `json:"core2_coverage"`
	Units             []AuditUnit `json:"units"`
	PDCCoreCovered    int         `json:"pdc_core_covered"`
	PDCCoreTotal      int         `json:"pdc_core_total"`
	PrerequisiteScore float64     `json:"prerequisite_score"`
}

// PDCRec is one public-catalog material recommendation.
type PDCRec struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	Source string   `json:"source"`
	Score  float64  `json:"score"`
	NewPDC int      `json:"new_pdc_entries"`
	Shared []string `json:"shared_tags"`
}

func (s *Server) handleCourseView(w http.ResponseWriter, r *http.Request) {
	c := s.course(w, r)
	if c == nil {
		return
	}
	switch view := r.PathValue("view"); view {
	case "materials":
		writeData(w, http.StatusOK, c.Materials, ListMeta{Total: len(c.Materials), Limit: len(c.Materials), Offset: 0})
	case "anchors":
		v, served, err := s.cache.Do("anchors|"+c.ID, func() (interface{}, error) {
			recs := s.recommender.Recommend(c)
			out := make([]AnchorRec, 0, len(recs))
			for _, rc := range recs {
				out = append(out, AnchorRec{
					Rule: rc.Rule.ID, Title: rc.Rule.Title, Score: rc.Score,
					Audience: rc.Rule.Audience, Activity: rc.Rule.Activity,
					Matched: rc.MatchedAnchors, Teaches: rc.Rule.Teaches,
				})
			}
			return out, nil
		})
		if err != nil {
			writeComputeError(w, err)
			return
		}
		writeData(w, http.StatusOK, v.([]AnchorRec), cacheMeta("anchors|"+c.ID, served))
	case "audit":
		v, served, err := s.cache.Do("audit|"+c.ID, func() (interface{}, error) {
			rep := audit.Audit(c, ontology.CS2013())
			readiness := audit.AssessPDCReadiness(c)
			units := make([]AuditUnit, 0, len(rep.Units))
			for _, u := range rep.Units {
				if u.Covered == 0 {
					continue
				}
				units = append(units, AuditUnit{
					Unit: u.Unit.ID, Tier: u.Tier.String(),
					Covered: u.Covered, Total: u.Total, Fraction: u.Fraction(),
				})
			}
			return &AuditResponse{
				Core1Coverage:     rep.TierCoverage(ontology.TierCore1),
				Core2Coverage:     rep.TierCoverage(ontology.TierCore2),
				Units:             units,
				PDCCoreCovered:    readiness.CoreCovered,
				PDCCoreTotal:      readiness.CoreTotal,
				PrerequisiteScore: readiness.PrerequisiteScore(),
			}, nil
		})
		if err != nil {
			writeComputeError(w, err)
			return
		}
		writeData(w, http.StatusOK, v.(*AuditResponse), cacheMeta("audit|"+c.ID, served))
	case "pdcmaterials":
		limit, err := parseIntParam(r, "limit", 10, 1)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
			return
		}
		key := fmt.Sprintf("pdcmaterials|%s|%d", c.ID, limit)
		v, served, err := s.cache.Do(key, func() (interface{}, error) {
			recs := catalog.Recommend(c, limit)
			out := make([]PDCRec, 0, len(recs))
			for _, rc := range recs {
				out = append(out, PDCRec{
					ID: rc.Entry.Material.ID, Title: rc.Entry.Material.Title,
					Source: string(rc.Entry.Source), Score: rc.Score,
					NewPDC: rc.NewPDC, Shared: rc.SharedTags,
				})
			}
			return out, nil
		})
		if err != nil {
			writeComputeError(w, err)
			return
		}
		writeData(w, http.StatusOK, v.([]PDCRec), cacheMeta(key, served))
	default:
		writeError(w, http.StatusNotFound, "not_found", "unknown course view %q", view)
	}
}

// --- Search --------------------------------------------------------------

// SearchHit is one material search result.
type SearchHit struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Type    string   `json:"type"`
	Author  string   `json:"author,omitempty"`
	Score   float64  `json:"score"`
	Matched []string `json:"matched_tags,omitempty"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := parsePage(r, 20)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	q := search.Query{
		Text:        r.URL.Query().Get("text"),
		Author:      r.URL.Query().Get("author"),
		Language:    r.URL.Query().Get("language"),
		CourseLevel: r.URL.Query().Get("level"),
	}
	if tags := r.URL.Query().Get("tags"); tags != "" {
		q.Tags = strings.Split(tags, ",")
	}
	if p := r.URL.Query().Get("prefix"); p != "" {
		q.TagPrefixes = []string{p}
	}
	if len(q.Tags) == 0 && len(q.TagPrefixes) == 0 && q.Text == "" &&
		q.Author == "" && q.Language == "" && q.CourseLevel == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "empty query: pass tags, prefix, text, or a facet")
		return
	}
	results := s.engine.Search(q) // Limit 0: rank everything, then paginate
	lo, hi := pageBounds(len(results), limit, offset)
	out := make([]SearchHit, 0, hi-lo)
	for _, res := range results[lo:hi] {
		out = append(out, SearchHit{
			ID: res.Material.ID, Title: res.Material.Title, Type: string(res.Material.Type),
			Author: res.Material.Author, Score: res.Score, Matched: res.MatchedTags,
		})
	}
	writeData(w, http.StatusOK, out, ListMeta{Total: len(results), Limit: limit, Offset: offset})
}

// --- Group-based analyses ------------------------------------------------

func groupCourseIDs(group string) ([]string, error) {
	switch strings.ToLower(group) {
	case "cs1":
		return dataset.CS1CourseIDs(), nil
	case "ds":
		return dataset.DSCourseIDs(), nil
	case "dsalgo":
		return dataset.DSAlgoCourseIDs(), nil
	case "pdc":
		return dataset.PDCCourseIDs(), nil
	case "all", "":
		return dataset.AllCourseIDs(), nil
	default:
		return nil, fmt.Errorf("unknown group %q", group)
	}
}

// normGroup canonicalizes the group parameter for cache keys.
func normGroup(group string) string {
	g := strings.ToLower(group)
	if g == "" {
		g = "all"
	}
	return g
}

// AgreementResponse is the /api/v1/agreement data payload.
type AgreementResponse struct {
	Courses   []string       `json:"courses"`
	Tags      int            `json:"tags"`
	AtLeast   map[string]int `json:"at_least"`
	KASpan    []string       `json:"ka_span"`
	KACounts  map[string]int `json:"ka_counts"`
	Threshold int            `json:"threshold"`
}

func (s *Server) handleAgreement(w http.ResponseWriter, r *http.Request) {
	group := r.URL.Query().Get("group")
	ids, err := groupCourseIDs(group)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	threshold, err := parseIntParam(r, "threshold", 2, 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	key := fmt.Sprintf("agreement|%s|%d", normGroup(group), threshold)
	v, served, err := s.cache.Do(key, func() (interface{}, error) {
		a, err := agreement.Analyze(dataset.CoursesByID(ids), ontology.CS2013(), ontology.PDC12())
		if err != nil {
			return nil, err
		}
		atLeast := make(map[string]int, len(ids))
		for k := 2; k <= len(ids); k++ {
			atLeast[strconv.Itoa(k)] = a.AtLeast(k)
		}
		return &AgreementResponse{
			Courses:   ids,
			Tags:      a.NumTags(),
			AtLeast:   atLeast,
			KASpan:    a.KASpan(threshold),
			KACounts:  a.KACounts(threshold),
			Threshold: threshold,
		}, nil
	})
	if err != nil {
		writeComputeError(w, err)
		return
	}
	writeData(w, http.StatusOK, v.(*AgreementResponse), cacheMeta(key, served))
}

// CourseType is one course's NNMF typing.
type CourseType struct {
	Course   string    `json:"course"`
	Dominant int       `json:"dominant_type"`
	Shares   []float64 `json:"shares"`
	Evenness float64   `json:"evenness"`
}

// TypeSummary describes one discovered course type.
type TypeSummary struct {
	Label   string             `json:"label"`
	KAShare map[string]float64 `json:"ka_share"`
	TopTags []string           `json:"top_tags"`
}

// TypesResponse is the /api/v1/types data payload.
type TypesResponse struct {
	K          int           `json:"k"`
	Courses    []CourseType  `json:"courses"`
	Types      []TypeSummary `json:"types"`
	Redundancy float64       `json:"redundancy"`
}

func (s *Server) handleTypes(w http.ResponseWriter, r *http.Request) {
	group := r.URL.Query().Get("group")
	ids, err := groupCourseIDs(group)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	defK := 3
	if normGroup(group) == "all" {
		defK = 4
	}
	k, err := parseIntParam(r, "k", defK, 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	key := fmt.Sprintf("types|%s|%d", normGroup(group), k)
	v, served, err := s.cache.Do(key, func() (interface{}, error) {
		model, err := s.analyzeTypes(dataset.CoursesByID(ids), k, factorize.PaperOptions(),
			ontology.CS2013(), ontology.PDC12())
		if err != nil {
			return nil, &httpError{status: http.StatusBadRequest, code: "bad_request", msg: err.Error()}
		}
		courses := make([]CourseType, 0, len(model.Courses))
		for i, c := range model.Courses {
			courses = append(courses, CourseType{
				Course: c.ID, Dominant: model.DominantType(i),
				Shares: model.TypeShare(i), Evenness: model.Evenness(i),
			})
		}
		types := make([]TypeSummary, k)
		for t := 0; t < k; t++ {
			shares := model.KAShare(t)
			kas := make(map[string]float64, len(shares))
			for ka, v := range shares {
				kas[ka] = v
			}
			top := model.TopTags(t, 5)
			topTags := make([]string, len(top))
			for i, tw := range top {
				topTags[i] = tw.Tag
			}
			types[t] = TypeSummary{Label: model.TypeLabel(t), KAShare: kas, TopTags: topTags}
		}
		return &TypesResponse{K: k, Courses: courses, Types: types, Redundancy: model.Redundancy()}, nil
	})
	if err != nil {
		writeComputeError(w, err)
		return
	}
	writeData(w, http.StatusOK, v.(*TypesResponse), cacheMeta(key, served))
}

// ClusterResponse is the /api/v1/cluster data payload.
type ClusterResponse struct {
	K          int        `json:"k"`
	Linkage    string     `json:"linkage"`
	Clusters   [][]string `json:"clusters"`
	Dendrogram string     `json:"dendrogram"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	group := r.URL.Query().Get("group")
	ids, err := groupCourseIDs(group)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	k, err := parseIntParam(r, "k", 4, 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	key := fmt.Sprintf("cluster|%s|%d", normGroup(group), k)
	v, served, err := s.cache.Do(key, func() (interface{}, error) {
		d, err := cluster.Build(dataset.CoursesByID(ids), cluster.Average)
		if err != nil {
			return nil, err
		}
		clusters, err := d.CutK(k)
		if err != nil {
			return nil, &httpError{status: http.StatusBadRequest, code: "bad_request", msg: err.Error()}
		}
		out := make([][]string, len(clusters))
		for i, cl := range clusters {
			out[i] = make([]string, 0, len(cl))
			for _, c := range cl {
				out[i] = append(out[i], c.ID)
			}
		}
		return &ClusterResponse{
			K: k, Linkage: d.Linkage.String(),
			Clusters: out, Dendrogram: d.Render(),
		}, nil
	})
	if err != nil {
		writeComputeError(w, err)
		return
	}
	writeData(w, http.StatusOK, v.(*ClusterResponse), cacheMeta(key, served))
}

// --- Figures -------------------------------------------------------------

// FigureResponse is the /api/v1/figures/{id} data payload.
type FigureResponse struct {
	ID   string   `json:"id"`
	Text string   `json:"text"`
	SVGs []string `json:"svgs"`
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	key := "figure|" + id
	v, served, err := s.cache.Do(key, func() (interface{}, error) {
		for _, f := range core.Figures() {
			if f.ID == id {
				return f.Gen()
			}
		}
		return nil, &httpError{status: http.StatusNotFound, code: "not_found", msg: fmt.Sprintf("unknown figure %q", id)}
	})
	if err != nil {
		writeComputeError(w, err)
		return
	}
	art := v.(*core.Artifact)
	// Serve one SVG directly when requested.
	if svg := r.URL.Query().Get("svg"); svg != "" {
		body, ok := art.SVGs[svg]
		if !ok {
			writeError(w, http.StatusNotFound, "not_found", "figure %s has no SVG %q", id, svg)
			return
		}
		w.Header().Set("Content-Type", "image/svg+xml")
		_, _ = w.Write([]byte(body))
		return
	}
	svgNames := make([]string, 0, len(art.SVGs))
	for name := range art.SVGs {
		svgNames = append(svgNames, name)
	}
	sort.Strings(svgNames)
	writeData(w, http.StatusOK, FigureResponse{ID: art.ID, Text: art.Text, SVGs: svgNames}, cacheMeta(key, served))
}
