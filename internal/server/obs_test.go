package server

import (
	"bytes"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"csmaterials/internal/obs"
)

// newObsServer builds a server with explicit options and no warmup, so
// the first request of a test is genuinely cold.
func newObsServer(t *testing.T, o Options) *Server {
	t.Helper()
	o.disableWarmup = true
	s, err := NewWithOptions(o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// do drives one request synchronously through the full middleware
// stack: when it returns, the trace is finished and any wide event has
// been written — no network, no races.
func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// traceRecord fetches /debug/trace/{id} and decodes the span record.
func traceRecord(t *testing.T, s *Server, id string) obs.TraceRecord {
	t.Helper()
	w := do(t, s, http.MethodGet, "/debug/trace/"+id, "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /debug/trace/%s: status %d\n%s", id, w.Code, w.Body.Bytes())
	}
	var rec obs.TraceRecord
	decode(t, w.Body.Bytes(), &rec)
	return rec
}

// spanNames extracts the ordered span-name sequence.
func spanNames(rec obs.TraceRecord) []string {
	names := make([]string, len(rec.Spans))
	for i, sp := range rec.Spans {
		names[i] = sp.Name
	}
	return names
}

// subsequence reports whether want appears in got in order (possibly
// with other spans interleaved).
func subsequence(got, want []string) bool {
	i := 0
	for _, g := range got {
		if i < len(want) && g == want[i] {
			i++
		}
	}
	return i == len(want)
}

// TestTraceEndToEnd is the acceptance walk: a cold analysis request
// returns an X-Trace header whose /debug/trace/{id} record shows the
// ordered ladder spans; a warm repeat shows the cache hit.
func TestTraceEndToEnd(t *testing.T) {
	s := newObsServer(t, Options{})

	cold := do(t, s, http.MethodGet, "/api/v1/types", "")
	if cold.Code != http.StatusOK {
		t.Fatalf("cold status %d\n%s", cold.Code, cold.Body.Bytes())
	}
	id := cold.Header().Get("X-Trace")
	if id == "" {
		t.Fatal("cold response missing X-Trace header")
	}

	rec := traceRecord(t, s, id)
	names := spanNames(rec)
	want := []string{"cache-miss", "singleflight-lead", "compute", "store"}
	if len(names) < 4 || !subsequence(names, want) {
		t.Fatalf("cold spans = %v, want ordered subsequence %v", names, want)
	}
	for _, sp := range rec.Spans {
		if sp.Name == "compute" && sp.Analysis != "types" {
			t.Fatalf("compute span analysis = %q, want types", sp.Analysis)
		}
	}

	// Warm repeat: the cache answers; the flight layer is never touched.
	warm := do(t, s, http.MethodGet, "/api/v1/types", "")
	rec2 := traceRecord(t, s, warm.Header().Get("X-Trace"))
	names2 := spanNames(rec2)
	if !subsequence(names2, []string{"cache-hit"}) || subsequence(names2, []string{"compute"}) {
		t.Fatalf("warm spans = %v, want cache-hit and no compute", names2)
	}

	// The list endpoint knows both traces, most recent first.
	listResp := do(t, s, http.MethodGet, "/debug/trace", "")
	var list struct {
		Tracer obs.TracerStats `json:"tracer"`
		Traces []string        `json:"traces"`
	}
	decode(t, listResp.Body.Bytes(), &list)
	if list.Tracer.Finished < 2 || len(list.Traces) < 2 {
		t.Fatalf("trace list = %+v, want >= 2 finished", list)
	}
	if list.Traces[0] != warm.Header().Get("X-Trace") {
		t.Fatalf("trace list not most-recent-first: %v", list.Traces[:2])
	}

	// Unknown IDs get the API's 404 envelope, not a plain-text error.
	miss := do(t, s, http.MethodGet, "/debug/trace/ffffffff", "")
	var ee errEnv
	decode(t, miss.Body.Bytes(), &ee)
	if miss.Code != http.StatusNotFound || ee.Error.Code != "not_found" {
		t.Fatalf("missing trace: status %d code %q", miss.Code, ee.Error.Code)
	}
	if s.Tracer().Stats().Started < 2 {
		t.Fatal("tracer accessor disagrees with requests served")
	}
}

// TestPromExposition exercises GET /metrics: valid Prometheus text
// exposition carrying the HTTP histograms and the per-analysis
// per-stage histograms aggregated from traces.
func TestPromExposition(t *testing.T) {
	s := newObsServer(t, Options{})

	// One cold and one warm analysis request so every layer has data.
	do(t, s, http.MethodGet, "/api/v1/types", "")
	do(t, s, http.MethodGet, "/api/v1/types", "")

	w := do(t, s, http.MethodGet, "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != obs.ExpositionContentType {
		t.Fatalf("content type %q, want %q", ct, obs.ExpositionContentType)
	}
	if err := obs.ValidateExposition(w.Body.String()); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, w.Body.Bytes())
	}

	text := w.Body.String()
	// Golden shape: every family the exporter promises, with its type.
	for _, line := range []string{
		"# TYPE csm_uptime_seconds gauge",
		"# TYPE csm_http_in_flight gauge",
		"# TYPE csm_http_requests_total counter",
		"# TYPE csm_http_request_duration_seconds histogram",
		"# TYPE csm_cache_hits_total counter",
		"# TYPE csm_cache_misses_total counter",
		"# TYPE csm_cache_shared_flights_total counter",
		"# TYPE csm_cache_evictions_total counter",
		"# TYPE csm_cache_stale_served_total counter",
		"# TYPE csm_cache_size gauge",
		"# TYPE csm_shed_max_in_flight gauge",
		"# TYPE csm_shed_admitted_total counter",
		"# TYPE csm_breaker_state gauge",
		"# TYPE csm_analysis_computes_total counter",
		"# TYPE csm_analysis_cache_hits_total counter",
		"# TYPE csm_analysis_cache_misses_total counter",
		"# TYPE csm_batch_calls_total counter",
		"# TYPE csm_datasets gauge",
		"# TYPE csm_dataset_revision gauge",
		"# TYPE csm_dataset_courses gauge",
		"# TYPE csm_dataset_materials gauge",
		"# TYPE csm_stage_duration_seconds histogram",
		"# TYPE csm_traces_total counter",
		"# TYPE csm_trace_ring_size gauge",
		"# TYPE csm_log_dropped_total counter",
	} {
		if !strings.Contains(text, line+"\n") {
			t.Errorf("exposition missing %q", line)
		}
	}

	// The per-stage histogram series carry (analysis, dataset, stage)
	// labels and cumulative buckets ending in +Inf; un-scoped requests
	// land on the default dataset.
	for _, series := range []string{
		`csm_stage_duration_seconds_bucket{analysis="types",dataset="default",stage="compute",le="+Inf"}`,
		`csm_stage_duration_seconds_bucket{analysis="types",dataset="default",stage="cache-hit",le="+Inf"}`,
		`csm_stage_duration_seconds_sum{analysis="types",dataset="default",stage="compute"}`,
		`csm_stage_duration_seconds_count{analysis="types",dataset="default",stage="compute"}`,
		`csm_http_requests_total{route="GET /api/v1/types",status="200"} 2`,
		`csm_breaker_state{analysis="types",dataset="default"} 0`,
		`csm_analysis_computes_total{analysis="types",dataset="default"} 1`,
		`csm_analysis_cache_hits_total{analysis="types",dataset="default"} 1`,
		`csm_analysis_cache_misses_total{analysis="types",dataset="default"} 1`,
		`csm_datasets 1`,
		`csm_dataset_revision{dataset="default"} 1`,
		`csm_cache_hits_total 1`,
		`csm_cache_misses_total 1`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing series %q", series)
		}
	}
}

// TestWideEvents checks the one-line-per-request structured access log:
// shape, trace correlation, and the serving outcome field.
func TestWideEvents(t *testing.T) {
	var buf bytes.Buffer
	logger := obs.NewLogger(&buf)
	s := newObsServer(t, Options{Events: logger})

	cold := do(t, s, http.MethodGet, "/api/v1/types", "")
	do(t, s, http.MethodGet, "/api/v1/types", "")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wide events = %d lines, want 2\n%s", len(lines), buf.String())
	}
	var coldEv, warmEv map[string]interface{}
	decode(t, []byte(lines[0]), &coldEv)
	decode(t, []byte(lines[1]), &warmEv)

	if coldEv["event"] != "request" || coldEv["route"] != "GET /api/v1/types" ||
		coldEv["method"] != "GET" || coldEv["path"] != "/api/v1/types" {
		t.Fatalf("cold event shape: %v", coldEv)
	}
	if coldEv["trace"] != cold.Header().Get("X-Trace") {
		t.Fatalf("event trace %v != header %q", coldEv["trace"], cold.Header().Get("X-Trace"))
	}
	if coldEv["status"] != float64(200) || coldEv["cache"] != "miss" || warmEv["cache"] != "hit" {
		t.Fatalf("outcomes: cold=%v warm=%v", coldEv["cache"], warmEv["cache"])
	}
	spans, ok := coldEv["spans"].([]interface{})
	if !ok || len(spans) < 4 {
		t.Fatalf("cold event spans = %v, want >= 4", coldEv["spans"])
	}
	if _, ok := coldEv["ts"].(string); !ok {
		t.Fatalf("event missing ts: %v", coldEv)
	}
	if logger.Drops() != 0 {
		t.Fatalf("logger drops = %d", logger.Drops())
	}
}

// TestWideEventsReplacePlainAccessLog: with Events set, the plain
// serving.AccessLog must not also run (one line per request, not two).
func TestWideEventsReplacePlainAccessLog(t *testing.T) {
	var wide, plain bytes.Buffer
	s := newObsServer(t, Options{
		Events: obs.NewLogger(&wide),
		Logger: log.New(&plain, "", 0),
	})
	do(t, s, http.MethodGet, "/api/v1/types", "")
	if strings.TrimSpace(wide.String()) == "" {
		t.Fatal("no wide event emitted")
	}
	if got := plain.String(); strings.Contains(got, "/api/v1/types") {
		t.Fatalf("plain access log ran alongside wide events: %q", got)
	}
}

// TestBatchTracedEndToEnd: batch requests carry traces too, with one
// batch-item span per item.
func TestBatchTracedEndToEnd(t *testing.T) {
	s := newObsServer(t, Options{})
	w := do(t, s, http.MethodPost, "/api/v1/batch",
		`{"items":[{"analysis":"types"},{"analysis":"agreement"}]}`)
	id := w.Header().Get("X-Trace")
	if w.Code != http.StatusOK || id == "" {
		t.Fatalf("batch status %d, X-Trace %q\n%s", w.Code, id, w.Body.Bytes())
	}
	rec := traceRecord(t, s, id)
	var items int
	for _, sp := range rec.Spans {
		if sp.Name == "batch-item" {
			items++
		}
	}
	if items != 2 {
		t.Fatalf("batch-item spans = %d, want 2\nspans: %v", items, spanNames(rec))
	}
}
