package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"

	"csmaterials/internal/dataset"
)

// Ingest ownership. The mutating dataset surface (PUT/DELETE
// /api/v1/datasets/{ds}) can be locked behind API keys: a request must
// present the dataset's owner key or an admin key. Keys come from the
// -api-keys-file document and/or the CSM_ADMIN_KEY environment
// variable; when neither is configured the server runs in open mode
// and the surface behaves exactly as before (the CLI/dev path). A
// dataset without an owner is claimed by the first key that ingests
// it; ownership survives re-ingest revisions and Delete, so deleting a
// dataset does not let another tenant take the name over.

// APIKey is one keyring entry: a bearer secret plus the tenant name it
// authenticates as. Admin keys may mutate any dataset.
type APIKey struct {
	Key   string `json:"key"`
	Name  string `json:"name"`
	Admin bool   `json:"admin,omitempty"`
}

// DatasetGrant pre-declares one tenant's metadata in the keys file:
// ownership and resource shares, applied to the registry at startup.
type DatasetGrant struct {
	// Owner names the API key that owns the dataset.
	Owner string `json:"owner,omitempty"`
	// CacheBudget overrides the dataset's fair-share cache budget
	// (entries); 0 keeps the fair share.
	CacheBudget int `json:"cache_budget,omitempty"`
	// Weight scales the dataset's admission quota; <= 0 counts as 1.
	Weight float64 `json:"weight,omitempty"`
}

// KeysFile is the -api-keys-file document.
type KeysFile struct {
	Keys     []APIKey                `json:"keys"`
	Datasets map[string]DatasetGrant `json:"datasets,omitempty"`
}

// LoadKeysFile reads and validates an -api-keys-file document.
func LoadKeysFile(path string) (*KeysFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("api keys: %w", err)
	}
	var kf KeysFile
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&kf); err != nil {
		return nil, fmt.Errorf("api keys: %s: %w", path, err)
	}
	seen := map[string]bool{}
	for i, k := range kf.Keys {
		if k.Key == "" || k.Name == "" {
			return nil, fmt.Errorf("api keys: %s: entry %d needs both key and name", path, i)
		}
		if seen[k.Key] {
			return nil, fmt.Errorf("api keys: %s: duplicate key for %q", path, k.Name)
		}
		seen[k.Key] = true
	}
	for id := range kf.Datasets {
		if err := dataset.ValidateID(id); err != nil {
			return nil, fmt.Errorf("api keys: %s: %w", path, err)
		}
	}
	return &kf, nil
}

// KeysFromEnv folds the CSM_ADMIN_KEY environment variable (an admin
// key named "admin") into kf, creating the file-less keyring when kf
// is nil and the variable is set. Returns nil when nothing configures
// keys — open mode.
func KeysFromEnv(kf *KeysFile) *KeysFile {
	secret := os.Getenv("CSM_ADMIN_KEY")
	if secret == "" {
		return kf
	}
	if kf == nil {
		kf = &KeysFile{}
	}
	for _, k := range kf.Keys {
		if k.Key == secret {
			return kf
		}
	}
	kf.Keys = append(kf.Keys, APIKey{Key: secret, Name: "admin", Admin: true})
	return kf
}

// applyKeysFile installs kf as the active keyring and applies its
// dataset grants. Grants only touch the datasets kf names: ownership
// claimed at runtime (first keyed ingest) persists across reloads, so
// rotating a tenant's secret cannot orphan or reassign its datasets.
func (s *Server) applyKeysFile(kf *KeysFile) {
	keys := make(map[string]APIKey, len(kf.Keys))
	for _, k := range kf.Keys {
		keys[k.Key] = k
	}
	s.keysMu.Lock()
	s.keys = keys
	s.keysMu.Unlock()
	for id, g := range kf.Datasets {
		s.datasets.SetAttrs(id, dataset.Attrs{Owner: g.Owner, CacheBudget: g.CacheBudget, Weight: g.Weight})
	}
}

// lookupKey resolves a presented secret against the live keyring.
func (s *Server) lookupKey(secret string) (APIKey, bool) {
	s.keysMu.RLock()
	defer s.keysMu.RUnlock()
	k, ok := s.keys[secret]
	return k, ok
}

// keysConfigured reports whether the server is running with a keyring
// (false = open mode).
func (s *Server) keysConfigured() bool {
	s.keysMu.RLock()
	defer s.keysMu.RUnlock()
	return len(s.keys) > 0
}

// ReloadAPIKeys re-reads the keyring from the source configured via
// Options.ReloadKeys (cmd/serve wires the -api-keys-file path, folded
// with CSM_ADMIN_KEY) and swaps it in without a restart: keys removed
// from the file stop authenticating on the next request, new keys
// start working, and runtime ownership grants persist. Requests
// already past authorization finish under the decision they got.
func (s *Server) ReloadAPIKeys() error {
	if s.reloadKeys == nil {
		return fmt.Errorf("api keys: no reloadable key source configured")
	}
	kf, err := s.reloadKeys()
	if err != nil {
		return err
	}
	if kf = KeysFromEnv(kf); kf == nil {
		kf = &KeysFile{}
	}
	s.applyKeysFile(kf)
	s.retuneTenancy()
	return nil
}

// KeysReloaded is the POST /api/v1/keys/reload data payload.
type KeysReloaded struct {
	// Keys is the number of entries in the reloaded keyring.
	Keys int `json:"keys"`
}

// handleKeysReload swaps in the current contents of the configured key
// source. Admin-gated: with a keyring active only an admin key may
// rotate it (a tenant must not be able to reload away another tenant's
// revocation); in open mode the surface is as open as every other
// mutation. 409 keys_static when no reloadable source is configured.
func (s *Server) handleKeysReload(w http.ResponseWriter, r *http.Request) {
	if s.keysConfigured() {
		k, ok := s.lookupKey(requestKey(r))
		if !ok {
			w.Header().Set("WWW-Authenticate", "Bearer")
			writeError(w, http.StatusUnauthorized, "unauthorized", "key reload requires an admin API key")
			return
		}
		if !k.Admin {
			writeError(w, http.StatusForbidden, "forbidden", "key %q is not an admin key", k.Name)
			return
		}
	}
	if err := s.ReloadAPIKeys(); err != nil {
		if s.reloadKeys == nil {
			writeError(w, http.StatusConflict, "keys_static", "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "keys_reload_failed", "%v", err)
		return
	}
	s.keysMu.RLock()
	n := len(s.keys)
	s.keysMu.RUnlock()
	writeData(w, http.StatusOK, KeysReloaded{Keys: n}, nil)
}

// requestKey extracts the presented API key: "Authorization: Bearer
// <key>" or the X-API-Key header.
func requestKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if rest, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return r.Header.Get("X-API-Key")
}

// authorizeMutation decides whether r may mutate dataset id, returning
// the authenticated key name and true when allowed. In open mode (no
// keys configured) everything is allowed under the empty name. On
// rejection the 401/403 envelope has been written: 401 unauthorized
// when no/unknown key is presented, 403 forbidden when a valid
// non-admin key targets a dataset owned by someone else.
func (s *Server) authorizeMutation(w http.ResponseWriter, r *http.Request, id string) (string, bool) {
	if !s.keysConfigured() {
		return "", true
	}
	secret := requestKey(r)
	if secret == "" {
		w.Header().Set("WWW-Authenticate", "Bearer")
		writeError(w, http.StatusUnauthorized, "unauthorized",
			"dataset mutation requires an API key (Authorization: Bearer or X-API-Key)")
		return "", false
	}
	k, ok := s.lookupKey(secret)
	if !ok {
		w.Header().Set("WWW-Authenticate", "Bearer")
		writeError(w, http.StatusUnauthorized, "unauthorized", "unknown API key")
		return "", false
	}
	if k.Admin {
		return k.Name, true
	}
	owner := s.datasets.Attrs(id).Owner
	if owner != "" && owner != k.Name {
		writeError(w, http.StatusForbidden, "forbidden",
			"dataset %q is owned by %q; key %q may not mutate it", id, owner, k.Name)
		return "", false
	}
	return k.Name, true
}
