package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"

	"csmaterials/internal/dataset"
)

// Ingest ownership. The mutating dataset surface (PUT/DELETE
// /api/v1/datasets/{ds}) can be locked behind API keys: a request must
// present the dataset's owner key or an admin key. Keys come from the
// -api-keys-file document and/or the CSM_ADMIN_KEY environment
// variable; when neither is configured the server runs in open mode
// and the surface behaves exactly as before (the CLI/dev path). A
// dataset without an owner is claimed by the first key that ingests
// it; ownership survives re-ingest revisions and Delete, so deleting a
// dataset does not let another tenant take the name over.

// APIKey is one keyring entry: a bearer secret plus the tenant name it
// authenticates as. Admin keys may mutate any dataset.
type APIKey struct {
	Key   string `json:"key"`
	Name  string `json:"name"`
	Admin bool   `json:"admin,omitempty"`
}

// DatasetGrant pre-declares one tenant's metadata in the keys file:
// ownership and resource shares, applied to the registry at startup.
type DatasetGrant struct {
	// Owner names the API key that owns the dataset.
	Owner string `json:"owner,omitempty"`
	// CacheBudget overrides the dataset's fair-share cache budget
	// (entries); 0 keeps the fair share.
	CacheBudget int `json:"cache_budget,omitempty"`
	// Weight scales the dataset's admission quota; <= 0 counts as 1.
	Weight float64 `json:"weight,omitempty"`
}

// KeysFile is the -api-keys-file document.
type KeysFile struct {
	Keys     []APIKey                `json:"keys"`
	Datasets map[string]DatasetGrant `json:"datasets,omitempty"`
}

// LoadKeysFile reads and validates an -api-keys-file document.
func LoadKeysFile(path string) (*KeysFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("api keys: %w", err)
	}
	var kf KeysFile
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&kf); err != nil {
		return nil, fmt.Errorf("api keys: %s: %w", path, err)
	}
	seen := map[string]bool{}
	for i, k := range kf.Keys {
		if k.Key == "" || k.Name == "" {
			return nil, fmt.Errorf("api keys: %s: entry %d needs both key and name", path, i)
		}
		if seen[k.Key] {
			return nil, fmt.Errorf("api keys: %s: duplicate key for %q", path, k.Name)
		}
		seen[k.Key] = true
	}
	for id := range kf.Datasets {
		if err := dataset.ValidateID(id); err != nil {
			return nil, fmt.Errorf("api keys: %s: %w", path, err)
		}
	}
	return &kf, nil
}

// KeysFromEnv folds the CSM_ADMIN_KEY environment variable (an admin
// key named "admin") into kf, creating the file-less keyring when kf
// is nil and the variable is set. Returns nil when nothing configures
// keys — open mode.
func KeysFromEnv(kf *KeysFile) *KeysFile {
	secret := os.Getenv("CSM_ADMIN_KEY")
	if secret == "" {
		return kf
	}
	if kf == nil {
		kf = &KeysFile{}
	}
	for _, k := range kf.Keys {
		if k.Key == secret {
			return kf
		}
	}
	kf.Keys = append(kf.Keys, APIKey{Key: secret, Name: "admin", Admin: true})
	return kf
}

// requestKey extracts the presented API key: "Authorization: Bearer
// <key>" or the X-API-Key header.
func requestKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if rest, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return r.Header.Get("X-API-Key")
}

// authorizeMutation decides whether r may mutate dataset id, returning
// the authenticated key name and true when allowed. In open mode (no
// keys configured) everything is allowed under the empty name. On
// rejection the 401/403 envelope has been written: 401 unauthorized
// when no/unknown key is presented, 403 forbidden when a valid
// non-admin key targets a dataset owned by someone else.
func (s *Server) authorizeMutation(w http.ResponseWriter, r *http.Request, id string) (string, bool) {
	if len(s.keys) == 0 {
		return "", true
	}
	secret := requestKey(r)
	if secret == "" {
		w.Header().Set("WWW-Authenticate", "Bearer")
		writeError(w, http.StatusUnauthorized, "unauthorized",
			"dataset mutation requires an API key (Authorization: Bearer or X-API-Key)")
		return "", false
	}
	k, ok := s.keys[secret]
	if !ok {
		w.Header().Set("WWW-Authenticate", "Bearer")
		writeError(w, http.StatusUnauthorized, "unauthorized", "unknown API key")
		return "", false
	}
	if k.Admin {
		return k.Name, true
	}
	owner := s.datasets.Attrs(id).Owner
	if owner != "" && owner != k.Name {
		writeError(w, http.StatusForbidden, "forbidden",
			"dataset %q is owned by %q; key %q may not mutate it", id, owner, k.Name)
		return "", false
	}
	return k.Name, true
}
