package resilience

import (
	"sync/atomic"
	"time"
)

// DefaultRetryAfter is the Retry-After hint handed to shed clients
// when the Shedder was built without an explicit one.
const DefaultRetryAfter = time.Second

// Shedder is a concurrency-based load shedder: it admits at most max
// requests in flight and rejects the rest immediately, so a burst
// beyond capacity costs a cheap 429 instead of a queue that grows
// until every client times out.
//
// A max <= 0 disables shedding: Acquire always admits (the gauge and
// counters still work, so metrics stay meaningful).
type Shedder struct {
	max        int64
	retryAfter time.Duration

	inFlight int64  // atomic gauge
	admitted uint64 // atomic counter
	shed     uint64 // atomic counter
}

// NewShedder returns a shedder admitting at most max concurrent
// requests, hinting Retry-After: retryAfter (DefaultRetryAfter when
// zero or negative) on rejection.
func NewShedder(max int, retryAfter time.Duration) *Shedder {
	if retryAfter <= 0 {
		retryAfter = DefaultRetryAfter
	}
	return &Shedder{max: int64(max), retryAfter: retryAfter}
}

// Acquire reserves an in-flight slot, reporting whether the request
// was admitted. Every admitted request must Release exactly once.
func (s *Shedder) Acquire() bool {
	n := atomic.AddInt64(&s.inFlight, 1)
	if s.max > 0 && n > s.max {
		atomic.AddInt64(&s.inFlight, -1)
		atomic.AddUint64(&s.shed, 1)
		return false
	}
	atomic.AddUint64(&s.admitted, 1)
	return true
}

// Release returns an admitted request's slot.
func (s *Shedder) Release() { atomic.AddInt64(&s.inFlight, -1) }

// InFlight is the current number of admitted requests.
func (s *Shedder) InFlight() int64 { return atomic.LoadInt64(&s.inFlight) }

// RetryAfter is the backoff hint for rejected requests.
func (s *Shedder) RetryAfter() time.Duration { return s.retryAfter }

// ShedderStats is a point-in-time snapshot of the shedder counters.
type ShedderStats struct {
	MaxInFlight int64  `json:"max_in_flight"`
	InFlight    int64  `json:"in_flight"`
	Admitted    uint64 `json:"admitted_total"`
	Shed        uint64 `json:"shed_total"`
}

// Stats snapshots the shedder.
func (s *Shedder) Stats() ShedderStats {
	return ShedderStats{
		MaxInFlight: s.max,
		InFlight:    atomic.LoadInt64(&s.inFlight),
		Admitted:    atomic.LoadUint64(&s.admitted),
		Shed:        atomic.LoadUint64(&s.shed),
	}
}
