package resilience

import (
	"errors"
	"strings"
	"sync"
	"time"
)

// ErrOpen is returned (or wrapped) by callers that found their circuit
// open: the protected compute path was not attempted.
var ErrOpen = errors.New("resilience: circuit open")

// State is a circuit breaker's position.
type State int

const (
	// Closed: requests flow normally; failures are counted.
	Closed State = iota
	// Open: requests are rejected without touching the compute path
	// until the cooldown elapses.
	Open
	// HalfOpen: one probe request at a time is let through; success
	// closes the circuit, failure re-opens it.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// DefaultBreakerThreshold and DefaultBreakerCooldown are used when a
// BreakerSet is built with zero values.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 30 * time.Second
)

// Breaker is a circuit breaker over one named compute path. It opens
// after threshold consecutive failures, rejects everything for the
// cooldown, then half-opens: a single probe is admitted, and its
// outcome decides between closing again and another cooldown round.
//
// Use it as
//
//	if !b.Allow() { return ErrOpen }
//	v, err := compute()
//	b.Record(err == nil /* or a gentler classification */)
//
// Every Allow() == true must be matched by exactly one Record so the
// half-open probe slot is returned.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    State
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight

	successes uint64
	failures  uint64
	rejected  uint64
	opens     uint64
}

// NewBreaker returns a closed breaker. Zero threshold/cooldown take
// the defaults; now == nil uses time.Now.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a request may proceed. An open circuit whose
// cooldown has elapsed transitions to half-open and admits the caller
// as its probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.rejected++
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	default: // HalfOpen
		if b.probing {
			b.rejected++
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports the outcome of an Allowed request. Success closes the
// circuit and resets the failure run; failure either re-opens a
// half-open circuit or, after threshold consecutive failures, opens a
// closed one.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.successes++
		b.fails = 0
		b.state = Closed
		return
	}
	b.failures++
	b.fails++
	if b.state == HalfOpen || b.fails >= b.threshold {
		b.open()
	}
}

// open transitions to Open; callers hold b.mu.
func (b *Breaker) open() {
	b.state = Open
	b.openedAt = b.now()
	b.fails = 0
	b.opens++
}

// State returns the breaker's current position, applying the
// open→half-open cooldown transition lazily so observers see the same
// state the next Allow would.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.now().Sub(b.openedAt) >= b.cooldown {
		return HalfOpen
	}
	return b.state
}

// RetryAfter is how long a rejected caller should wait before the
// circuit will consider a probe (zero when it already would).
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		return 0
	}
	d := b.cooldown - b.now().Sub(b.openedAt)
	if d < 0 {
		return 0
	}
	return d
}

// BreakerStats is a point-in-time snapshot of one breaker.
type BreakerStats struct {
	State     string `json:"state"`
	Successes uint64 `json:"successes_total"`
	Failures  uint64 `json:"failures_total"`
	Rejected  uint64 `json:"rejected_total"`
	Opens     uint64 `json:"opens_total"`
}

// Stats snapshots the breaker.
func (b *Breaker) Stats() BreakerStats {
	state := b.State().String()
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:     state,
		Successes: b.successes,
		Failures:  b.failures,
		Rejected:  b.rejected,
		Opens:     b.opens,
	}
}

// BreakerSet lazily manages one breaker per name (per analysis kind in
// the API) with shared threshold/cooldown settings.
type BreakerSet struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	m         map[string]*Breaker
}

// NewBreakerSet returns an empty set; zero values take the defaults.
func NewBreakerSet(threshold int, cooldown time.Duration) *BreakerSet {
	return &BreakerSet{threshold: threshold, cooldown: cooldown, m: make(map[string]*Breaker)}
}

// Get returns the breaker for name, creating it on first use.
func (s *BreakerSet) Get(name string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[name]
	if !ok {
		b = NewBreaker(s.threshold, s.cooldown, s.now)
		s.m[name] = b
	}
	return b
}

// SetClock replaces the time source of the set and every existing
// breaker (tests use this to step through cooldowns deterministically).
func (s *BreakerSet) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
	for _, b := range s.m {
		b.mu.Lock()
		b.now = now
		b.mu.Unlock()
	}
}

// DropPrefix removes every breaker whose name starts with prefix and
// returns how many were removed. The server uses it on dataset DELETE
// to forget the deleted tenant's "<dataset>/<analysis>" breakers so
// stats and metrics stop reporting a tenant that no longer exists.
func (s *BreakerSet) DropPrefix(prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for name := range s.m {
		if strings.HasPrefix(name, prefix) {
			delete(s.m, name)
			n++
		}
	}
	return n
}

// Stats snapshots every breaker in the set, keyed by name.
func (s *BreakerSet) Stats() map[string]BreakerStats {
	s.mu.Lock()
	names := make([]string, 0, len(s.m))
	breakers := make([]*Breaker, 0, len(s.m))
	for name, b := range s.m {
		names = append(names, name)
		breakers = append(breakers, b)
	}
	s.mu.Unlock()
	out := make(map[string]BreakerStats, len(names))
	for i, b := range breakers {
		out[names[i]] = b.Stats()
	}
	return out
}
