package resilience

import (
	"sync"
	"testing"
	"time"
)

func TestShedderAdmitsUpToMax(t *testing.T) {
	s := NewShedder(2, 0)
	if !s.Acquire() || !s.Acquire() {
		t.Fatal("shedder rejected within capacity")
	}
	if s.Acquire() {
		t.Fatal("shedder admitted beyond capacity")
	}
	if got := s.InFlight(); got != 2 {
		t.Fatalf("in-flight = %d, want 2", got)
	}
	s.Release()
	if !s.Acquire() {
		t.Fatal("shedder rejected after a Release freed a slot")
	}
	st := s.Stats()
	if st.Admitted != 3 || st.Shed != 1 || st.MaxInFlight != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if s.RetryAfter() != DefaultRetryAfter {
		t.Fatalf("retry-after = %v, want default", s.RetryAfter())
	}
}

func TestShedderDisabled(t *testing.T) {
	s := NewShedder(0, 3*time.Second)
	for i := 0; i < 100; i++ {
		if !s.Acquire() {
			t.Fatal("disabled shedder rejected a request")
		}
	}
	if st := s.Stats(); st.Shed != 0 || st.InFlight != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if s.RetryAfter() != 3*time.Second {
		t.Fatalf("retry-after = %v", s.RetryAfter())
	}
}

// TestShedderConcurrent hammers Acquire/Release from many goroutines
// and checks the books balance: the gauge returns to zero and
// admitted+shed accounts for every attempt. Run under -race.
func TestShedderConcurrent(t *testing.T) {
	s := NewShedder(8, 0)
	const workers, perWorker = 16, 200
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				if s.Acquire() {
					if s.InFlight() > 8 {
						t.Error("in-flight exceeded max")
					}
					s.Release()
				}
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.InFlight != 0 {
		t.Fatalf("gauge did not return to zero: %+v", st)
	}
	if st.Admitted+st.Shed != workers*perWorker {
		t.Fatalf("admitted %d + shed %d != %d attempts", st.Admitted, st.Shed, workers*perWorker)
	}
}
