package resilience

import (
	"sync"
	"testing"
	"time"
)

func TestTenantLimiterSingleTenantDegeneratesToShedder(t *testing.T) {
	l := NewTenantLimiter(2, 0)
	l.SetTenants(map[string]float64{"default": 1})
	if q := l.Quota("default"); q != 2 {
		t.Fatalf("single tenant quota = %d, want the whole cap", q)
	}
	if l.Acquire("default") != Admitted || l.Acquire("default") != Admitted {
		t.Fatal("requests within the cap must be admitted")
	}
	// The third is a capacity rejection, not a quota one: with one
	// tenant there is no fairness to enforce, only the global cap.
	if res := l.Acquire("default"); res != ShedCapacity {
		t.Fatalf("over-cap result = %v, want ShedCapacity", res)
	}
	l.Release("default")
	if l.Acquire("default") != Admitted {
		t.Fatal("released slot must be reusable")
	}
}

func TestTenantLimiterQuotaFairShare(t *testing.T) {
	l := NewTenantLimiter(8, 0)
	l.SetTenants(map[string]float64{"a": 1, "b": 1})
	if q := l.Quota("a"); q != 4 {
		t.Fatalf("quota(a) = %d, want 4", q)
	}
	l.SetTenants(map[string]float64{"a": 3, "b": 1})
	if qa, qb := l.Quota("a"), l.Quota("b"); qa != 6 || qb != 2 {
		t.Fatalf("weighted quotas = %d, %d, want 6, 2", qa, qb)
	}
	// Quota never drops below one entry, however small the share.
	l = NewTenantLimiter(2, 0)
	l.SetTenants(map[string]float64{"a": 1, "b": 1, "c": 1, "d": 1})
	if q := l.Quota("a"); q != 1 {
		t.Fatalf("tiny share quota = %d, want floor of 1", q)
	}
}

func TestTenantLimiterQuotaRejectionWithHeadroom(t *testing.T) {
	l := NewTenantLimiter(8, 0)
	l.SetTenants(map[string]float64{"a": 1, "b": 1})
	for i := 0; i < 4; i++ {
		if l.Acquire("a") != Admitted {
			t.Fatalf("a's request %d within quota not admitted", i)
		}
	}
	// a is at quota; the server still has 4 free slots, but fairness
	// rejects a's fifth so b's share stays available.
	if res := l.Acquire("a"); res != ShedQuota {
		t.Fatalf("over-quota result = %v, want ShedQuota", res)
	}
	if res := l.Acquire("b"); res != Admitted {
		t.Fatalf("b must still be admitted, got %v", res)
	}
	global, tenants := l.Stats()
	if global.Shed != 1 || global.Admitted != 5 {
		t.Fatalf("global stats = %+v", global)
	}
	a := tenants["a"]
	if a.Shed != 1 || a.ShedQuota != 1 || a.Admitted != 4 || a.InFlight != 4 || a.Quota != 4 {
		t.Fatalf("tenant a stats = %+v", a)
	}
	if b := tenants["b"]; b.Shed != 0 || b.InFlight != 1 {
		t.Fatalf("tenant b stats = %+v", b)
	}
}

func TestTenantLimiterUndeclaredTenantGetsExtraClaimantShare(t *testing.T) {
	l := NewTenantLimiter(9, 0)
	l.SetTenants(map[string]float64{"a": 1, "b": 1})
	// An undeclared tenant is one more weight-1 claimant: 9/3 = 3, not
	// free admission up to the global cap.
	if q := l.Quota("stranger"); q != 3 {
		t.Fatalf("undeclared quota = %d, want 3", q)
	}
}

func TestTenantLimiterUnlimited(t *testing.T) {
	l := NewTenantLimiter(0, 0)
	l.SetTenants(map[string]float64{"a": 1})
	for i := 0; i < 100; i++ {
		if l.Acquire("a") != Admitted {
			t.Fatal("max<=0 must admit everything")
		}
	}
	if q := l.Quota("a"); q != 0 {
		t.Fatalf("unlimited quota = %d, want 0", q)
	}
}

func TestTenantLimiterRetryAfterScalesWithPressure(t *testing.T) {
	l := NewTenantLimiter(4, time.Second)
	l.SetTenants(map[string]float64{"a": 1, "b": 1})
	if d := l.RetryAfter("a", ShedCapacity); d != time.Second {
		t.Fatalf("capacity retry-after = %s, want base hint", d)
	}
	for i := 0; i < 2; i++ {
		l.Acquire("a")
	}
	// At exactly quota the hint is the base; there is no overload yet.
	if d := l.RetryAfter("a", ShedQuota); d != time.Second {
		t.Fatalf("at-quota retry-after = %s, want base hint", d)
	}
}

func TestTenantLimiterDropTenant(t *testing.T) {
	l := NewTenantLimiter(4, 0)
	l.SetTenants(map[string]float64{"a": 1, "b": 1})
	l.Acquire("a")
	l.DropTenant("a")
	if _, tenants := l.Stats(); len(tenants) != 1 {
		t.Fatalf("dropped tenant still reported: %+v", tenants)
	}
	// b's quota recovers the dropped tenant's share.
	if q := l.Quota("b"); q != 4 {
		t.Fatalf("quota(b) after drop = %d, want the whole cap", q)
	}
	l.Release("a") // stale release of the dropped tenant's slot
	if n := l.InFlight(); n != 0 {
		t.Fatalf("in-flight after stale release = %d", n)
	}
}

func TestTenantLimiterConcurrentAcquireRelease(t *testing.T) {
	l := NewTenantLimiter(16, 0)
	l.SetTenants(map[string]float64{"a": 1, "b": 1})
	var wg sync.WaitGroup
	for _, tenant := range []string{"a", "b"} {
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(tn string) {
				defer wg.Done()
				for j := 0; j < 200; j++ {
					if l.Acquire(tn) == Admitted {
						l.Release(tn)
					}
				}
			}(tenant)
		}
	}
	wg.Wait()
	if n := l.InFlight(); n != 0 {
		t.Fatalf("in-flight after drain = %d", n)
	}
	global, tenants := l.Stats()
	if got := tenants["a"].Admitted + tenants["b"].Admitted; got != global.Admitted {
		t.Fatalf("tenant admissions %d != global %d", got, global.Admitted)
	}
}

func TestBreakerSetDropPrefix(t *testing.T) {
	s := NewBreakerSet(3, time.Minute)
	s.Get("types")
	s.Get("alt/types")
	s.Get("alt/cluster")
	if n := s.DropPrefix("alt/"); n != 2 {
		t.Fatalf("DropPrefix removed %d, want 2", n)
	}
	stats := s.Stats()
	if len(stats) != 1 {
		t.Fatalf("breakers after drop = %v", stats)
	}
	if _, ok := stats["types"]; !ok {
		t.Fatal("unrelated breaker removed")
	}
}
