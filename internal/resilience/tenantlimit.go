package resilience

import (
	"sync"
	"time"
)

// AdmitResult is a TenantLimiter's decision for one request.
type AdmitResult int

const (
	// Admitted: the request holds a slot and must Release exactly once.
	Admitted AdmitResult = iota
	// ShedCapacity: the GLOBAL in-flight cap is exhausted; the server as
	// a whole is overloaded (error code "capacity").
	ShedCapacity
	// ShedQuota: the server has headroom but THIS tenant is over its
	// fair-share quota (error code "tenant_quota"). One tenant flooding
	// cannot consume another tenant's admission slots.
	ShedQuota
)

// TenantLimiter is a two-level admission controller: a global hard cap
// on concurrent requests (the old Shedder semantics) plus weighted
// fair per-tenant in-flight quotas beneath it. Tenant t's quota is
//
//	max(1, floor(globalMax * weight_t / Σ weights))
//
// over the declared tenants, so with a single tenant the quota equals
// the global cap and the limiter degenerates to the plain shedder. A
// tenant beyond its quota is rejected even when the server has
// headroom; a tenant within its quota can still be rejected when the
// global cap is exhausted. Undeclared tenants are treated as one extra
// weight-1 claimant rather than admitted freely.
//
// A max <= 0 disables both levels: Acquire always admits (gauges and
// counters still work, so metrics stay meaningful).
type TenantLimiter struct {
	mu         sync.Mutex
	max        int64
	retryAfter time.Duration

	sumWeights float64
	tenants    map[string]*tenantState

	inFlight     int64
	admitted     uint64
	shedCapacity uint64
	shedQuota    uint64
}

// tenantState is one tenant's admission accounting.
type tenantState struct {
	weight   float64 // 0 when undeclared
	declared bool

	inFlight  int64
	admitted  uint64
	shed      uint64 // both kinds, attributed to the tenant
	shedQuota uint64 // quota-level rejections only
}

// NewTenantLimiter returns a limiter admitting at most max concurrent
// requests globally, hinting Retry-After: retryAfter (DefaultRetryAfter
// when zero or negative) on rejection. Declare tenants with SetTenants.
func NewTenantLimiter(max int, retryAfter time.Duration) *TenantLimiter {
	if retryAfter <= 0 {
		retryAfter = DefaultRetryAfter
	}
	return &TenantLimiter{max: int64(max), retryAfter: retryAfter, tenants: map[string]*tenantState{}}
}

// SetTenants replaces the declared tenant set and their weights
// (weights <= 0 count as 1). Quotas are recomputed immediately;
// counters of tenants that remain are preserved, and tenants absent
// from the new set keep their history but fall back to undeclared
// admission. Call DropTenant to forget a tenant entirely.
func (l *TenantLimiter) SetTenants(weights map[string]float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sumWeights = 0
	for _, ts := range l.tenants {
		ts.declared = false
		ts.weight = 0
	}
	for t, w := range weights {
		if w <= 0 {
			w = 1
		}
		ts := l.tenantLocked(t)
		ts.declared = true
		ts.weight = w
		l.sumWeights += w
	}
}

// DropTenant forgets a tenant's state and counters (tenant deletion:
// stats must stop reporting it). Any in-flight requests it still holds
// release harmlessly.
func (l *TenantLimiter) DropTenant(tenant string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ts, ok := l.tenants[tenant]; ok && ts.declared {
		l.sumWeights -= ts.weight
	}
	delete(l.tenants, tenant)
}

// tenantLocked returns tenant's state, creating it; callers hold l.mu.
func (l *TenantLimiter) tenantLocked(tenant string) *tenantState {
	ts, ok := l.tenants[tenant]
	if !ok {
		ts = &tenantState{}
		l.tenants[tenant] = ts
	}
	return ts
}

// quotaLocked computes tenant's in-flight quota; callers hold l.mu.
func (l *TenantLimiter) quotaLocked(ts *tenantState) int64 {
	if l.max <= 0 {
		return 0 // unlimited
	}
	w, sum := ts.weight, l.sumWeights
	if !ts.declared {
		w = 1
		sum += 1
	}
	if sum <= 0 {
		return l.max
	}
	q := int64(float64(l.max) * w / sum)
	if q < 1 {
		q = 1
	}
	if q > l.max {
		q = l.max
	}
	return q
}

// Quota reports tenant's current in-flight quota (0 = unlimited).
func (l *TenantLimiter) Quota(tenant string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.quotaLocked(l.tenantLocked(tenant))
}

// Acquire reserves an in-flight slot for tenant. Every Admitted result
// must be matched by exactly one Release with the same tenant.
func (l *TenantLimiter) Acquire(tenant string) AdmitResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	ts := l.tenantLocked(tenant)
	if l.max > 0 {
		if l.inFlight >= l.max {
			l.shedCapacity++
			ts.shed++
			return ShedCapacity
		}
		if ts.inFlight >= l.quotaLocked(ts) {
			l.shedQuota++
			ts.shed++
			ts.shedQuota++
			return ShedQuota
		}
	}
	l.inFlight++
	l.admitted++
	ts.inFlight++
	ts.admitted++
	return Admitted
}

// Release returns an admitted request's slot.
func (l *TenantLimiter) Release(tenant string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inFlight > 0 {
		l.inFlight--
	}
	if ts, ok := l.tenants[tenant]; ok && ts.inFlight > 0 {
		ts.inFlight--
	}
}

// InFlight is the current number of admitted requests.
func (l *TenantLimiter) InFlight() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inFlight
}

// TenantInFlight is the number of admitted requests tenant holds.
func (l *TenantLimiter) TenantInFlight(tenant string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ts, ok := l.tenants[tenant]; ok {
		return ts.inFlight
	}
	return 0
}

// RetryAfter is the backoff hint for a rejection: for quota-level
// rejections the tenant's own pressure sets the hint (the base hint
// scaled by how far over quota the tenant is, so a 4x flood is told to
// back off 4x longer), capacity-level rejections get the base hint.
func (l *TenantLimiter) RetryAfter(tenant string, res AdmitResult) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if res != ShedQuota {
		return l.retryAfter
	}
	ts := l.tenantLocked(tenant)
	q := l.quotaLocked(ts)
	if q <= 0 || ts.inFlight <= q {
		return l.retryAfter
	}
	return l.retryAfter * time.Duration((ts.inFlight+q-1)/q)
}

// TenantStats is one tenant's admission accounting snapshot.
type TenantStats struct {
	Weight    float64 `json:"weight"`
	Quota     int64   `json:"quota"`
	InFlight  int64   `json:"in_flight"`
	Admitted  uint64  `json:"admitted_total"`
	Shed      uint64  `json:"shed_total"`
	ShedQuota uint64  `json:"shed_quota_total"`
}

// Stats snapshots the global level in the legacy ShedderStats shape
// (Shed counts BOTH levels, preserving the meaning of the pre-tenant
// rejection counter) plus the per-tenant breakdown.
func (l *TenantLimiter) Stats() (ShedderStats, map[string]TenantStats) {
	l.mu.Lock()
	defer l.mu.Unlock()
	global := ShedderStats{
		MaxInFlight: l.max,
		InFlight:    l.inFlight,
		Admitted:    l.admitted,
		Shed:        l.shedCapacity + l.shedQuota,
	}
	tenants := make(map[string]TenantStats, len(l.tenants))
	for t, ts := range l.tenants {
		w := ts.weight
		if !ts.declared {
			w = 0
		}
		tenants[t] = TenantStats{
			Weight:    w,
			Quota:     l.quotaLocked(ts),
			InFlight:  ts.inFlight,
			Admitted:  ts.admitted,
			Shed:      ts.shed,
			ShedQuota: ts.shedQuota,
		}
	}
	return global, tenants
}
