// Package resilience implements the degradation ladder the API walks
// when the system is unhealthy: shed load first (reject excess work
// fast with 429), break circuits second (stop calling a compute path
// that keeps failing), and degrade third (serve last-known-good stale
// results instead of errors, via internal/serving's stale store).
//
// The package is deliberately stdlib-only and HTTP-agnostic at its
// core: Shedder and Breaker expose Acquire/Release and Allow/Record
// primitives; internal/serving and internal/server wire them into the
// middleware stack and response envelopes. The faultinject subpackage
// provides the deterministic chaos harness the tests use to prove each
// rung of the ladder engages.
package resilience

// Stats is the resilience section of the /debug/metrics snapshot:
// shedder counters (globals of the two-level TenantLimiter, kept in
// the legacy shape), the per-tenant admission breakdown, and the state
// and accounting of every named circuit breaker.
type Stats struct {
	Shedder  ShedderStats            `json:"shedder"`
	Tenants  map[string]TenantStats  `json:"tenants,omitempty"`
	Breakers map[string]BreakerStats `json:"breakers"`
}
