package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(3, time.Minute, clk.Now)
	for i := 0; i < 3; i++ {
		if b.State() != Closed {
			t.Fatalf("failure %d: state %v, want closed", i, b.State())
		}
		if !b.Allow() {
			t.Fatalf("failure %d: closed breaker rejected", i)
		}
		b.Record(false)
	}
	if b.State() != Open {
		t.Fatalf("state after %d failures = %v, want open", 3, b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request")
	}
	if ra := b.RetryAfter(); ra <= 0 || ra > time.Minute {
		t.Fatalf("retry-after = %v", ra)
	}
	st := b.Stats()
	if st.Failures != 3 || st.Rejected != 1 || st.Opens != 1 || st.State != "open" {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b := NewBreaker(3, time.Minute, newFakeClock().Now)
	for i := 0; i < 2; i++ {
		b.Allow()
		b.Record(false)
	}
	b.Allow()
	b.Record(true) // interrupts the run
	for i := 0; i < 2; i++ {
		b.Allow()
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatal("breaker opened although no 3 consecutive failures occurred")
	}
}

func TestBreakerHalfOpenProbeRecovery(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(2, time.Minute, clk.Now)
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(false)
	if b.State() != Open {
		t.Fatal("breaker did not open")
	}

	// Cooldown not elapsed: still rejecting.
	clk.Advance(30 * time.Second)
	if b.Allow() {
		t.Fatal("admitted before cooldown elapsed")
	}

	// Cooldown elapsed: exactly one probe is admitted.
	clk.Advance(31 * time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open after cooldown", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected")
	}
	b.Record(true)
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(1, time.Minute, clk.Now)
	b.Allow()
	b.Record(false) // opens (threshold 1)
	clk.Advance(time.Minute)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if st := b.Stats(); st.Opens != 2 {
		t.Fatalf("opens = %d, want 2", st.Opens)
	}
	// The new cooldown starts at the re-open, not the original open.
	clk.Advance(30 * time.Second)
	if b.Allow() {
		t.Fatal("admitted half a cooldown after re-opening")
	}
}

// TestBreakerConcurrentAllowRecord drives a breaker from many
// goroutines to exercise the locking under -race.
func TestBreakerConcurrentAllowRecord(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(5, time.Millisecond, clk.Now)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		fail := i%2 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if b.Allow() {
					b.Record(!fail)
				}
				b.State()
				b.Stats()
			}
		}()
	}
	wg.Wait()
}

func TestBreakerSet(t *testing.T) {
	clk := newFakeClock()
	s := NewBreakerSet(1, time.Minute)
	s.SetClock(clk.Now)
	a := s.Get("types")
	if s.Get("types") != a {
		t.Fatal("Get returned a different breaker for the same name")
	}
	a.Allow()
	a.Record(false)
	other := s.Get("cluster")
	if other.State() != Closed {
		t.Fatal("breakers are not independent")
	}
	st := s.Stats()
	if st["types"].State != "open" || st["cluster"].State != "closed" {
		t.Fatalf("set stats = %+v", st)
	}
	// SetClock reaches breakers created before the call.
	clk.Advance(time.Minute)
	if a.State() != HalfOpen {
		t.Fatalf("fake clock not wired into existing breaker: state %v", a.State())
	}
}
