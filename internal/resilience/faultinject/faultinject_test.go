package faultinject

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

func TestInjectErrorByRoute(t *testing.T) {
	in := New(1, Rule{Match: "/api/v1/types", Probability: 1, Status: 503, Code: "chaos"})
	h := in.Middleware(okHandler())

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/types?group=all", nil))
	if rec.Code != 503 {
		t.Fatalf("status = %d, want injected 503", rec.Code)
	}
	var e struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("injected error is not the JSON envelope: %v\n%s", err, rec.Body.Bytes())
	}
	if e.Error.Code != "chaos" || e.Error.Message == "" {
		t.Fatalf("envelope = %+v", e)
	}

	// Non-matching route passes through untouched.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/courses", nil))
	if rec.Code != 200 {
		t.Fatalf("unmatched route got %d", rec.Code)
	}
	if st := in.Stats(); st.Matched != 1 || st.Errored != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSeedDeterminism: the same seed injects the same fault sequence.
func TestSeedDeterminism(t *testing.T) {
	sequence := func(seed int64) string {
		in := New(seed, Rule{Probability: 0.5, Status: 500})
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if in.ComputeError("compute/x") != nil {
				b.WriteByte('E')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := sequence(42), sequence(42)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "E") || !strings.Contains(a, ".") {
		t.Fatalf("p=0.5 sequence is degenerate: %s", a)
	}
	if c := sequence(7); c == a {
		t.Fatalf("different seeds produced identical sequences: %s", c)
	}
}

func TestComputeErrorAndSetRules(t *testing.T) {
	in := New(1)
	if err := in.ComputeError("compute/types"); err != nil {
		t.Fatalf("ruleless injector injected %v", err)
	}
	in.SetRules(Rule{Match: "compute/types", Probability: 1, Status: 500})
	if err := in.ComputeError("compute/types"); err == nil {
		t.Fatal("rule did not inject")
	} else if !strings.Contains(err.Error(), "fault_injected") {
		t.Fatalf("err = %v", err)
	}
	if err := in.ComputeError("compute/cluster"); err != nil {
		t.Fatalf("prefix match leaked to other label: %v", err)
	}
	in.SetRules()
	if err := in.ComputeError("compute/types"); err != nil {
		t.Fatalf("cleared rules still inject: %v", err)
	}
}

func TestInjectPanic(t *testing.T) {
	in := New(1, Rule{Probability: 1, Panic: true})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic injected")
		}
		if st := in.Stats(); st.Panicked != 1 {
			t.Fatalf("stats = %+v", st)
		}
	}()
	in.ComputeError("compute/anything")
}

// TestHoldBlocksDeterministically: a Hold rule parks the request until
// the channel closes — the deterministic "slow request" for tests.
func TestHoldBlocksDeterministically(t *testing.T) {
	hold := make(chan struct{})
	in := New(1, Rule{Match: "/slow", Probability: 1, Hold: hold})
	h := in.Middleware(okHandler())

	done := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/slow", nil))
		done <- rec.Code
	}()
	select {
	case code := <-done:
		t.Fatalf("held request completed early with %d", code)
	case <-time.After(20 * time.Millisecond):
	}
	close(hold)
	select {
	case code := <-done:
		if code != 200 {
			t.Fatalf("released request got %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request never released")
	}
	if st := in.Stats(); st.Held != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.ComputeError("x") != nil {
		t.Fatal("nil injector injected")
	}
	in.SetRules(Rule{Probability: 1, Status: 500})
	if got := in.Stats(); got != (Stats{}) {
		t.Fatalf("nil stats = %+v", got)
	}
	h := in.Middleware(okHandler())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Fatal("nil middleware altered the response")
	}
}

// TestConcurrentInjection exercises the locking under -race: rules are
// swapped while requests evaluate them.
func TestConcurrentInjection(t *testing.T) {
	in := New(99, Rule{Probability: 0.5, Status: 500})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				in.ComputeError("compute/x")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			in.SetRules(Rule{Probability: 0.3, Status: 503})
			in.Stats()
		}
	}()
	wg.Wait()
}
