// Package faultinject is a deterministic chaos harness: an Injector
// holds rules that add latency, return errors, or panic on matching
// routes or compute labels, with per-rule probabilities drawn from a
// seeded RNG so a given seed always injects the same fault sequence.
//
// Tests and examples use it to prove the resilience ladder engages:
// hold a request to overload the shedder, fail a compute path until
// its breaker opens, and watch stale degradation take over.
package faultinject

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Rule describes one fault. A request or compute call matches when its
// label (the URL path for HTTP middleware, the caller-chosen label for
// compute hooks) has Match as a prefix; an empty Match matches
// everything. Probability gates the rule per call: 1 always fires,
// 0 never (a disabled rule). The first matching rule that fires wins.
//
// Fault actions, applied in order when the rule fires: block until
// Hold is closed (deterministic latency for tests), sleep Latency,
// panic when Panic is set, and finally fail with Status when nonzero
// (an HTTP error response from the middleware, an error value from
// ComputeError).
type Rule struct {
	Match       string
	Probability float64
	Hold        <-chan struct{}
	Latency     time.Duration
	Panic       bool
	Status      int
	Code        string // error code in the response envelope; default "fault_injected"
}

// Stats counts the faults an Injector has injected.
type Stats struct {
	Matched  uint64 `json:"matched_total"`
	Held     uint64 `json:"held_total"`
	Delayed  uint64 `json:"delayed_total"`
	Panicked uint64 `json:"panicked_total"`
	Errored  uint64 `json:"errored_total"`
}

// Injector evaluates rules under a seeded RNG. The zero value is not
// usable; use New. A nil *Injector is inert: every method is a no-op,
// so callers can wire it unconditionally.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []Rule
	stats Stats
}

// New returns an injector whose probabilistic decisions replay
// identically for the same seed and call sequence.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), rules: rules}
}

// SetRules atomically replaces the rule set (tests switch fault phases
// with this); the RNG stream continues where it left off.
func (in *Injector) SetRules(rules ...Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.rules = append([]Rule(nil), rules...)
	in.mu.Unlock()
}

// Stats snapshots the injection counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// pick returns a copy of the first matching rule that fires for label.
func (in *Injector) pick(label string) (Rule, bool) {
	if in == nil {
		return Rule{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if !strings.HasPrefix(label, r.Match) {
			continue
		}
		if r.Probability < 1 && in.rng.Float64() >= r.Probability {
			continue
		}
		in.stats.Matched++
		return r, true
	}
	return Rule{}, false
}

// delay applies the rule's Hold and Latency actions.
func (in *Injector) delay(r Rule) {
	if r.Hold != nil {
		<-r.Hold
		in.count(func(s *Stats) { s.Held++ })
	}
	if r.Latency > 0 {
		time.Sleep(r.Latency)
		in.count(func(s *Stats) { s.Delayed++ })
	}
}

func (in *Injector) count(f func(*Stats)) {
	in.mu.Lock()
	f(&in.stats)
	in.mu.Unlock()
}

func (r Rule) code() string {
	if r.Code == "" {
		return "fault_injected"
	}
	return r.Code
}

// Middleware wraps next with fault injection keyed by URL path. An
// injected Status short-circuits with the API's JSON error envelope;
// an injected panic propagates to the recovery middleware above.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	if in == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r, ok := in.pick(req.URL.Path)
		if !ok {
			next.ServeHTTP(w, req)
			return
		}
		in.delay(r)
		if r.Panic {
			in.count(func(s *Stats) { s.Panicked++ })
			panic(fmt.Sprintf("faultinject: injected panic on %s", req.URL.Path))
		}
		if r.Status != 0 {
			in.count(func(s *Stats) { s.Errored++ })
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(r.Status)
			_, _ = fmt.Fprintf(w, "{\n  \"error\": {\n    \"code\": %q,\n    \"message\": %q\n  }\n}\n",
				r.code(), fmt.Sprintf("injected fault on %s", req.URL.Path))
			return
		}
		next.ServeHTTP(w, req)
	})
}

// ComputeError evaluates the rules against a compute label (the server
// uses "compute/<analysis>") and returns the injected failure, or nil.
// Hold/Latency apply before the error; Panic panics.
func (in *Injector) ComputeError(label string) error {
	r, ok := in.pick(label)
	if !ok {
		return nil
	}
	in.delay(r)
	if r.Panic {
		in.count(func(s *Stats) { s.Panicked++ })
		panic(fmt.Sprintf("faultinject: injected panic on %s", label))
	}
	if r.Status != 0 {
		in.count(func(s *Stats) { s.Errored++ })
		return fmt.Errorf("faultinject: injected %s (status %d) on %s", r.code(), r.Status, label)
	}
	return nil
}
