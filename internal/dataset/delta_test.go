package dataset

import (
	"errors"
	"strings"
	"testing"
	"time"

	"csmaterials/internal/materials"
)

// firstMaterial returns the first course of the default corpus together
// with its first material.
func firstMaterial(t *testing.T) (*materials.Course, *materials.Material) {
	t.Helper()
	c := Repository().Courses()[0]
	if len(c.Materials) == 0 {
		t.Fatalf("seed course %q has no materials", c.ID)
	}
	return c, c.Materials[0]
}

// coveredMaterial finds a material in the default corpus whose every tag
// also appears on another material of the same course, so retagging it
// to a subset of its own tags leaves the course tag set unchanged. The
// generator duplicates about a third of each course's tags across two
// materials, so such a material always exists.
func coveredMaterial(t *testing.T) (*materials.Course, *materials.Material) {
	t.Helper()
	for _, c := range Repository().Courses() {
		for _, m := range c.Materials {
			covered := true
			for _, tag := range m.Tags {
				dup := false
				for _, other := range c.Materials {
					if other.ID == m.ID {
						continue
					}
					for _, ot := range other.Tags {
						if ot == tag {
							dup = true
						}
					}
				}
				if !dup {
					covered = false
					break
				}
			}
			if covered && len(m.Tags) > 0 {
				return c, m
			}
		}
	}
	t.Fatal("no fully-covered material in seed corpus")
	return nil, nil
}

func TestApplyRetagProducesDelta(t *testing.T) {
	now := time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC)
	r := NewRegistry(func() time.Time { return now })
	course, mat := firstMaterial(t)
	base := r.Default()
	origTags := append([]string(nil), mat.Tags...)

	// Retag to a single known tag taken from another course so the tag
	// set genuinely changes.
	var newTag string
	for _, c := range Repository().Courses()[1:] {
		for _, m := range c.Materials {
			for _, tag := range m.Tags {
				if !course.TagSet()[tag] {
					newTag = tag
				}
			}
		}
	}
	if newTag == "" {
		t.Fatal("no out-of-course tag found")
	}

	snap, err := r.Apply(DefaultID, []Event{{
		Op: OpRetag, Course: course.ID, MaterialID: mat.ID, Tags: []string{newTag},
	}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if snap.Revision() != base.Revision()+1 {
		t.Errorf("revision = %d, want %d", snap.Revision(), base.Revision()+1)
	}

	d := snap.Delta()
	if d == nil {
		t.Fatal("delta-derived snapshot must carry a Delta")
	}
	if d.Events != 1 || d.Retagged != 1 || d.Added != 0 || d.Removed != 0 {
		t.Errorf("delta counts = %+v", d)
	}
	if len(d.Courses) != 1 || d.Courses[0] != course.ID {
		t.Errorf("delta.Courses = %v, want [%s]", d.Courses, course.ID)
	}
	if !d.TouchesCourse(course.ID) || d.TouchesCourse("nope") {
		t.Error("TouchesCourse misreports")
	}
	wantGroup := strings.ToLower(string(course.Group))
	if !d.TouchesGroup(wantGroup) {
		t.Errorf("delta.Groups = %v, want to include %q", d.Groups, wantGroup)
	}
	// The tag union must cover both the old and the new tags.
	tagSet := map[string]bool{}
	for _, tag := range d.Tags {
		tagSet[tag] = true
	}
	if !tagSet[newTag] {
		t.Errorf("delta.Tags %v missing new tag %q", d.Tags, newTag)
	}
	for _, tag := range origTags {
		if !tagSet[tag] {
			t.Errorf("delta.Tags %v missing old tag %q", d.Tags, tag)
		}
	}
	tc, ok := d.TagChanges[course.ID]
	if !ok {
		t.Fatal("tag-set-changing retag must record a TagChange")
	}
	if len(tc.Added) != 1 || tc.Added[0] != newTag {
		t.Errorf("TagChange.Added = %v, want [%s]", tc.Added, newTag)
	}

	// New snapshot observes the change; base snapshot stays immutable.
	if got := snap.Repo().Material(mat.ID); len(got.Tags) != 1 || got.Tags[0] != newTag {
		t.Errorf("new repo material tags = %v", got.Tags)
	}
	if got := base.Repo().Material(mat.ID); len(got.Tags) != len(origTags) {
		t.Errorf("base repo mutated: tags = %v, want %v", got.Tags, origTags)
	}
	if base.Delta() != nil {
		t.Error("full-ingest snapshot must not carry a delta")
	}
	// Untouched courses are structurally shared, not copied.
	other := Repository().Courses()[1]
	if snap.Repo().Course(other.ID) != base.Repo().Course(other.ID) {
		t.Error("untouched course should be shared by pointer across revisions")
	}
}

func TestApplyTagSetPreservingRetag(t *testing.T) {
	r := NewRegistry(nil)
	course, mat := coveredMaterial(t)
	base := r.Default()

	snap, err := r.Apply(DefaultID, []Event{{
		Op: OpRetag, Course: course.ID, MaterialID: mat.ID, Tags: mat.Tags[:1],
	}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	d := snap.Delta()
	if !d.TouchesCourse(course.ID) {
		t.Error("course must still count as touched")
	}
	if tc, ok := d.TagChanges[course.ID]; ok {
		t.Errorf("tag-set-preserving retag recorded TagChange %+v", tc)
	}
	// Course tag sets match exactly across the revisions.
	oldSet := base.Repo().Course(course.ID).TagSet()
	newSet := snap.Repo().Course(course.ID).TagSet()
	if len(oldSet) != len(newSet) {
		t.Fatalf("tag set size changed %d -> %d", len(oldSet), len(newSet))
	}
	for tag := range oldSet {
		if !newSet[tag] {
			t.Errorf("tag %q lost", tag)
		}
	}
}

func TestApplyAddRemoveAndBatchMove(t *testing.T) {
	r := NewRegistry(nil)
	course, mat := firstMaterial(t)
	dest := Repository().Courses()[1]

	// Adding a material with a duplicate ID fails...
	dup := mat.Clone()
	_, err := r.Apply(DefaultID, []Event{{Op: OpAdd, Course: dest.ID, Material: dup}})
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate add error = %v", err)
	}
	// ...unless the same batch removed it first (a cross-course move).
	snap, err := r.Apply(DefaultID, []Event{
		{Op: OpRemove, Course: course.ID, MaterialID: mat.ID},
		{Op: OpAdd, Course: dest.ID, Material: dup},
	})
	if err != nil {
		t.Fatalf("move batch: %v", err)
	}
	d := snap.Delta()
	if d.Added != 1 || d.Removed != 1 || d.Events != 2 {
		t.Errorf("delta counts = %+v", d)
	}
	if len(d.Courses) != 2 {
		t.Errorf("delta.Courses = %v, want both courses", d.Courses)
	}
	if got := snap.Repo().Course(course.ID); got.TagSet()[mat.Tags[0]] && !courseHasOtherTagOwner(got, mat.ID, mat.Tags[0]) {
		t.Error("removed material's tags still attributed to source course")
	}
	found := false
	for _, m := range snap.Repo().Course(dest.ID).Materials {
		if m.ID == mat.ID {
			found = true
		}
	}
	if !found {
		t.Error("moved material missing from destination course")
	}
	if snap.Repo().NumMaterials() != Repository().NumMaterials() {
		t.Errorf("material count changed: %d vs %d", snap.Repo().NumMaterials(), Repository().NumMaterials())
	}
}

func courseHasOtherTagOwner(c *materials.Course, exceptID, tag string) bool {
	for _, m := range c.Materials {
		if m.ID == exceptID {
			continue
		}
		for _, t := range m.Tags {
			if t == tag {
				return true
			}
		}
	}
	return false
}

func TestApplyValidation(t *testing.T) {
	r := NewRegistry(nil)
	course, mat := firstMaterial(t)
	cases := []struct {
		name   string
		events []Event
		want   string
	}{
		{"no events", nil, "no events"},
		{"unknown op", []Event{{Op: "rename", Course: course.ID}}, "unknown op"},
		{"missing course", []Event{{Op: OpRetag, MaterialID: mat.ID, Tags: []string{"x"}}}, "missing course"},
		{"unknown course", []Event{{Op: OpRemove, Course: "ghost", MaterialID: mat.ID}}, "unknown course"},
		{"unknown material", []Event{{Op: OpRetag, Course: course.ID, MaterialID: "ghost", Tags: []string{"x"}}}, "no material"},
		{"retag no tags", []Event{{Op: OpRetag, Course: course.ID, MaterialID: mat.ID}}, "non-empty tag list"},
		{"add no material", []Event{{Op: OpAdd, Course: course.ID}}, "needs a material"},
		{"add contradictory id", []Event{{Op: OpAdd, Course: course.ID, MaterialID: "a", Material: &materials.Material{ID: "b", Type: materials.Lecture, Tags: []string{"x"}}}}, "contradicts"},
		{"retag unknown tag", []Event{{Op: OpRetag, Course: course.ID, MaterialID: mat.ID, Tags: []string{"not-a-guideline-tag"}}}, "unknown curriculum tag"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := r.Apply(DefaultID, tc.events); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Apply error = %v, want substring %q", err, tc.want)
			}
		})
	}

	if _, err := r.Apply("absent", []Event{{Op: OpRemove, Course: course.ID, MaterialID: mat.ID}}); !errors.Is(err, ErrNotFound) {
		t.Errorf("Apply on absent dataset = %v, want ErrNotFound", err)
	}
	if _, err := r.Apply("NOT VALID", []Event{{Op: OpRemove, Course: course.ID, MaterialID: mat.ID}}); err == nil {
		t.Error("Apply with invalid ID must fail validation")
	}

	// Failed applies must not advance the revision.
	if rev := r.Default().Revision(); rev != 1 {
		t.Errorf("revision after failed applies = %d, want 1", rev)
	}
}

func TestApplyRevisionSequencing(t *testing.T) {
	r := NewRegistry(nil)
	course, mat := firstMaterial(t)
	ev := []Event{{Op: OpRetag, Course: course.ID, MaterialID: mat.ID, Tags: mat.Tags[:1]}}
	s2, err := r.Apply(DefaultID, ev)
	if err != nil {
		t.Fatal(err)
	}
	// A later full Put continues the sequence and clears the delta.
	s3, err := r.Put(DefaultID, miniCourses(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Revision() != 2 || s3.Revision() != 3 {
		t.Errorf("revisions = %d, %d, want 2, 3", s2.Revision(), s3.Revision())
	}
	if s3.Delta() != nil {
		t.Error("Put snapshot must not carry a delta")
	}
}
