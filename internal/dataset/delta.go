package dataset

import (
	"fmt"
	"sort"
	"strings"

	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

// Op names a classification event kind.
type Op string

// Classification-event operations: the three ways a live corpus
// changes between revisions without a full re-ingest.
const (
	// OpAdd attaches a new material to an existing course.
	OpAdd Op = "add"
	// OpRemove detaches a material from its course.
	OpRemove Op = "remove"
	// OpRetag replaces a material's curriculum tags.
	OpRetag Op = "retag"
)

// Event is one classification event against a dataset: a material
// added to, removed from, or retagged within an existing course. It is
// the PATCH /api/v1/datasets/{id} payload item and the input to
// Registry.Apply.
type Event struct {
	Op     Op     `json:"op"`
	Course string `json:"course"`
	// Material carries the full new material for OpAdd.
	Material *materials.Material `json:"material,omitempty"`
	// MaterialID names the target of OpRemove and OpRetag.
	MaterialID string `json:"material_id,omitempty"`
	// Tags is the replacement tag list for OpRetag.
	Tags []string `json:"tags,omitempty"`
}

// TagChange is one course's tag-SET difference across a delta: the
// tags that entered and left the union of the course's material tags.
// It is what the incremental consumers (agreement histograms, the
// course × curriculum matrix) need — a retag that only touches tags
// the course already covers through other materials produces an empty
// TagChange even though the material itself changed.
type TagChange struct {
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"removed,omitempty"`
}

// Empty reports whether the course's tag set was unchanged.
func (tc TagChange) Empty() bool { return len(tc.Added) == 0 && len(tc.Removed) == 0 }

// Delta summarizes what one Apply changed, revision N-1 → N. It rides
// on the new Snapshot so the serving layer can invalidate precisely:
// an analysis scope that provably cannot observe any touched course or
// tag keeps its cached results across the revision bump.
type Delta struct {
	// Events is the number of events applied.
	Events int `json:"events"`
	// Added, Removed, and Retagged count events by operation.
	Added    int `json:"added"`
	Removed  int `json:"removed"`
	Retagged int `json:"retagged"`
	// Courses lists the touched course IDs, sorted.
	Courses []string `json:"courses"`
	// Tags is the sorted union of every tag named by a touched
	// material, before or after the delta.
	Tags []string `json:"tags"`
	// Groups is the sorted, lowercased union of the group labels
	// (primary and secondary) of the touched courses — the coarse
	// signal group-scoped analyses use to decide whether a delta can
	// reach them.
	Groups []string `json:"groups"`
	// TagChanges maps each touched course to its tag-set difference
	// (absent or empty when the course's tag union was unchanged).
	// It is carried in memory for incremental recompute, not exported
	// in API summaries.
	TagChanges map[string]TagChange `json:"-"`
}

// TouchesCourse reports whether the delta touched the given course.
func (d *Delta) TouchesCourse(id string) bool {
	for _, c := range d.Courses {
		if c == id {
			return true
		}
	}
	return false
}

// TouchesGroup reports whether any touched course carries the given
// lowercased group label.
func (d *Delta) TouchesGroup(group string) bool {
	for _, g := range d.Groups {
		if g == group {
			return true
		}
	}
	return false
}

// validateEvent checks an event's shape before application.
func validateEvent(i int, ev Event) error {
	if ev.Course == "" {
		return fmt.Errorf("dataset: event %d: missing course", i)
	}
	switch ev.Op {
	case OpAdd:
		if ev.Material == nil {
			return fmt.Errorf("dataset: event %d: %q needs a material", i, OpAdd)
		}
		if ev.MaterialID != "" && ev.MaterialID != ev.Material.ID {
			return fmt.Errorf("dataset: event %d: material_id %q contradicts material.id %q", i, ev.MaterialID, ev.Material.ID)
		}
	case OpRemove:
		if ev.MaterialID == "" {
			return fmt.Errorf("dataset: event %d: %q needs material_id", i, OpRemove)
		}
	case OpRetag:
		if ev.MaterialID == "" {
			return fmt.Errorf("dataset: event %d: %q needs material_id", i, OpRetag)
		}
		if len(ev.Tags) == 0 {
			return fmt.Errorf("dataset: event %d: %q needs a non-empty tag list", i, OpRetag)
		}
	default:
		return fmt.Errorf("dataset: event %d: unknown op %q", i, ev.Op)
	}
	return nil
}

// applyEvents derives a new repository from base by applying events,
// without re-validating (or re-indexing through guideline lookups) the
// untouched courses: they are adopted into the new repository by
// pointer, so the validation cost of a delta is proportional to the
// delta. Touched courses are cloned (and their touched materials
// cloned) so the base snapshot stays immutable.
func applyEvents(base *materials.Repository, events []Event) (*materials.Repository, *Delta, error) {
	touched := map[string]*materials.Course{} // course ID → working clone
	delta := &Delta{Events: len(events), TagChanges: map[string]TagChange{}}
	tags := map[string]bool{}

	courseOf := func(id string) (*materials.Course, error) {
		if c, ok := touched[id]; ok {
			return c, nil
		}
		orig := base.Course(id)
		if orig == nil {
			return nil, fmt.Errorf("dataset: unknown course %q", id)
		}
		c := orig.Clone()
		touched[id] = c
		return c, nil
	}
	findMaterial := func(c *materials.Course, id string) int {
		for i, m := range c.Materials {
			if m.ID == id {
				return i
			}
		}
		return -1
	}

	for i, ev := range events {
		if err := validateEvent(i, ev); err != nil {
			return nil, nil, err
		}
		c, err := courseOf(ev.Course)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: event %d: %w", i, err)
		}
		switch ev.Op {
		case OpAdd:
			m := ev.Material.Clone()
			// Global material-ID uniqueness, honoring in-batch removals:
			// the ID may have left the corpus earlier in this same batch.
			if owner, _ := ownerOf(base, touched, m.ID); owner != "" {
				return nil, nil, fmt.Errorf("dataset: event %d: material ID %q already exists in course %q", i, m.ID, owner)
			}
			c.Materials = append(c.Materials, m)
			delta.Added++
			for _, t := range m.Tags {
				tags[t] = true
			}
		case OpRemove:
			idx := findMaterial(c, ev.MaterialID)
			if idx < 0 {
				return nil, nil, fmt.Errorf("dataset: event %d: course %q has no material %q", i, ev.Course, ev.MaterialID)
			}
			for _, t := range c.Materials[idx].Tags {
				tags[t] = true
			}
			c.Materials = append(c.Materials[:idx], c.Materials[idx+1:]...)
			delta.Removed++
		case OpRetag:
			idx := findMaterial(c, ev.MaterialID)
			if idx < 0 {
				return nil, nil, fmt.Errorf("dataset: event %d: course %q has no material %q", i, ev.Course, ev.MaterialID)
			}
			m := c.Materials[idx].Clone()
			for _, t := range m.Tags {
				tags[t] = true
			}
			m.Tags = append([]string(nil), ev.Tags...)
			for _, t := range m.Tags {
				tags[t] = true
			}
			c.Materials[idx] = m
			delta.Retagged++
		}
	}

	// Rebuild the repository: touched courses go through full
	// validation (their new materials and tags are unproven); untouched
	// courses are adopted as-is from the base snapshot.
	repo := materials.NewRepository(ontology.CS2013(), ontology.PDC12())
	for _, orig := range base.Courses() {
		if mod, ok := touched[orig.ID]; ok {
			if err := repo.AddCourse(mod); err != nil {
				return nil, nil, err
			}
			continue
		}
		if err := repo.AdoptCourse(orig); err != nil {
			return nil, nil, err
		}
	}

	// Summarize: touched courses, their group labels, the tag union,
	// and the per-course tag-set differences old → new.
	groups := map[string]bool{}
	for id, mod := range touched {
		delta.Courses = append(delta.Courses, id)
		if g := strings.ToLower(string(mod.Group)); g != "" {
			groups[g] = true
		}
		if g := strings.ToLower(string(mod.SecondaryGroup)); g != "" {
			groups[g] = true
		}
		if tc := diffTagSets(base.Course(id).TagSet(), mod.TagSet()); !tc.Empty() {
			delta.TagChanges[id] = tc
		}
	}
	sort.Strings(delta.Courses)
	delta.Tags = sortedKeys(tags)
	delta.Groups = sortedKeys(groups)
	return repo, delta, nil
}

// ownerOf reports which course currently holds a material ID, honoring
// in-batch removals and additions: the working clones in touched
// shadow their base counterparts.
func ownerOf(base *materials.Repository, touched map[string]*materials.Course, materialID string) (string, int) {
	for _, c := range base.Courses() {
		cur := c
		if mod, ok := touched[c.ID]; ok {
			cur = mod
		}
		for i, m := range cur.Materials {
			if m.ID == materialID {
				return cur.ID, i
			}
		}
	}
	return "", -1
}

// diffTagSets computes the sorted set difference new − old (Added) and
// old − new (Removed).
func diffTagSets(old, new map[string]bool) TagChange {
	var tc TagChange
	for t := range new {
		if !old[t] {
			tc.Added = append(tc.Added, t)
		}
	}
	for t := range old {
		if !new[t] {
			tc.Removed = append(tc.Removed, t)
		}
	}
	sort.Strings(tc.Added)
	sort.Strings(tc.Removed)
	return tc
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
