package dataset

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"time"

	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

// DefaultID names the dataset the synthetic seed corpus registers
// under. Un-scoped API routes are permanent aliases for it, and it can
// be re-ingested (gaining revisions) but never deleted.
const DefaultID = "default"

// MaxIDLength bounds dataset IDs; longer IDs are rejected at ingest.
const MaxIDLength = 64

// idPattern admits lowercase letters, digits, '.', '_', and '-', with
// an alphanumeric first byte. The excluded characters are load-bearing:
// '|' separates cache-key fields, '@' separates the dataset generation
// prefix, and '/' separates the dataset from the analysis in breaker
// and stats scope names.
var idPattern = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]*$`)

// Sentinel errors the API layer maps onto its taxonomy (404 / 409).
var (
	ErrNotFound  = errors.New("dataset: no such dataset")
	ErrProtected = errors.New(`dataset: the "default" dataset cannot be deleted`)
	// ErrConflict reports that Apply lost the base-snapshot race too
	// many times in a row (concurrent mutations of the same dataset).
	ErrConflict = errors.New("dataset: concurrent mutation conflict, retry")
)

// ValidateID reports whether id is a well-formed dataset name.
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("dataset: empty dataset ID")
	}
	if len(id) > MaxIDLength {
		return fmt.Errorf("dataset: dataset ID %q exceeds %d characters", id, MaxIDLength)
	}
	if !idPattern.MatchString(id) {
		return fmt.Errorf("dataset: invalid dataset ID %q: want lowercase letters, digits, '.', '_', '-', starting with a letter or digit", id)
	}
	return nil
}

// Document is the ingest and on-disk dataset payload — the same
// {"courses": [...]} shape materials.Repository.SaveJSON writes, so a
// saved repository round-trips straight into PUT /api/v1/datasets/{id}.
type Document struct {
	Courses []*materials.Course `json:"courses"`
}

// Meta is the catalog-facing description of one dataset revision.
type Meta struct {
	ID        string    `json:"id"`
	Revision  uint64    `json:"revision"`
	Courses   int       `json:"courses"`
	Materials int       `json:"materials"`
	LoadedAt  time.Time `json:"loaded_at"`
	Owner     string    `json:"owner,omitempty"`
}

// Attrs carries a dataset's tenancy metadata. It lives beside the
// snapshot (not inside it) so it survives re-ingest revisions AND
// Delete: like the revision counter, a deleted dataset's ownership is
// retained so re-creating the name cannot silently transfer it to
// another key holder.
type Attrs struct {
	// Owner is the name of the API key that owns the dataset's
	// mutating surface. Empty = unowned (any valid key may claim it).
	Owner string `json:"owner,omitempty"`
	// CacheBudget overrides the dataset's fair-share serving-cache
	// budget (entries). 0 = fair share.
	CacheBudget int `json:"cache_budget,omitempty"`
	// Weight scales the dataset's share of the admission quota.
	// <= 0 counts as 1.
	Weight float64 `json:"weight,omitempty"`
}

// Snapshot is one immutable dataset revision: a fully validated
// repository plus its identity. Replacing a dataset swaps the whole
// snapshot pointer, so a compute holding one can never observe a
// half-ingested corpus (no torn reads).
type Snapshot struct {
	id       string
	revision uint64
	repo     *materials.Repository
	loadedAt time.Time
	// delta summarizes what changed from the previous revision when
	// this snapshot was produced by Apply; nil for full ingests (Put),
	// whose blast radius is the whole dataset.
	delta *Delta
}

// ID returns the dataset name.
func (s *Snapshot) ID() string { return s.id }

// Revision returns the snapshot's monotonic revision (1-based per ID).
func (s *Snapshot) Revision() uint64 { return s.revision }

// Repo returns the snapshot's repository; treat it as read-only.
func (s *Snapshot) Repo() *materials.Repository { return s.repo }

// LoadedAt returns when the snapshot was registered (zero when the
// registry was built without a clock).
func (s *Snapshot) LoadedAt() time.Time { return s.loadedAt }

// Delta returns the classification-event summary that produced this
// revision, or nil when the revision came from a full ingest (Put,
// LoadDir, the seed corpus). A nil Delta means "assume everything
// changed".
func (s *Snapshot) Delta() *Delta { return s.delta }

// Meta summarizes the snapshot for the catalog.
func (s *Snapshot) Meta() Meta {
	return Meta{
		ID:        s.id,
		Revision:  s.revision,
		Courses:   len(s.repo.Courses()),
		Materials: s.repo.NumMaterials(),
		LoadedAt:  s.loadedAt,
	}
}

// Registry holds named, versioned datasets. Lookups return immutable
// snapshots; Put atomically replaces a dataset's snapshot under a new
// revision. Revision counters are per-ID, monotonic, and survive
// Delete, so a cache key minted for any past revision can never
// collide with a future one even if the same name is re-ingested.
type Registry struct {
	clock func() time.Time

	mu    sync.RWMutex
	snaps map[string]*Snapshot
	order []string // registration order, for deterministic catalogs
	revs  map[string]uint64
	attrs map[string]Attrs // survives Delete, like revs
}

// NewRegistry returns a registry with the synthetic seed corpus
// registered as DefaultID at revision 1. The clock stamps LoadedAt;
// nil leaves timestamps zero (deterministic builds, tests).
func NewRegistry(clock func() time.Time) *Registry {
	if clock == nil {
		clock = func() time.Time { return time.Time{} }
	}
	r := &Registry{
		clock: clock,
		snaps: map[string]*Snapshot{},
		revs:  map[string]uint64{},
		attrs: map[string]Attrs{},
	}
	r.snaps[DefaultID] = &Snapshot{id: DefaultID, revision: 1, repo: Repository(), loadedAt: r.clock()}
	r.order = append(r.order, DefaultID)
	r.revs[DefaultID] = 1
	return r
}

// Get returns the current snapshot of id.
func (r *Registry) Get(id string) (*Snapshot, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.snaps[id]
	return s, ok
}

// Default returns the snapshot of the default dataset (always present).
func (r *Registry) Default() *Snapshot {
	s, _ := r.Get(DefaultID)
	return s
}

// Put validates courses into a fresh repository (every material tag
// checked against CS2013/PDC12, material IDs unique) and atomically
// registers the result as id's next revision. The previous snapshot,
// if any, stays valid for computations already holding it.
func (r *Registry) Put(id string, courses []*materials.Course) (*Snapshot, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	if len(courses) == 0 {
		return nil, fmt.Errorf("dataset: dataset %q has no courses", id)
	}
	repo := materials.NewRepository(ontology.CS2013(), ontology.PDC12())
	for _, c := range courses {
		if err := repo.AddCourse(c); err != nil {
			return nil, fmt.Errorf("dataset %q: %w", id, err)
		}
	}
	ts := r.clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	rev := r.revs[id] + 1
	r.revs[id] = rev
	if _, exists := r.snaps[id]; !exists {
		r.order = append(r.order, id)
	}
	snap := &Snapshot{id: id, revision: rev, repo: repo, loadedAt: ts}
	r.snaps[id] = snap
	return snap, nil
}

// Apply derives id's next revision from its current snapshot by
// applying classification events — materials added, removed, or
// retagged — without re-parsing or re-validating the untouched part
// of the corpus. The new snapshot carries a Delta summary (touched
// courses, tags, and groups) so the serving layer can invalidate
// precisely instead of sweeping the whole dataset.
//
// Apply is optimistic: the events are applied against the snapshot
// current at entry, and the swap is retried against a fresh base if a
// concurrent Put/Apply replaced it mid-derivation. Unknown datasets
// return ErrNotFound; persistent contention returns ErrConflict.
func (r *Registry) Apply(id string, events []Event) (*Snapshot, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("dataset: dataset %q: no events to apply", id)
	}
	const maxAttempts = 8
	for attempt := 0; attempt < maxAttempts; attempt++ {
		base, ok := r.Get(id)
		if !ok {
			return nil, ErrNotFound
		}
		repo, delta, err := applyEvents(base.repo, events)
		if err != nil {
			return nil, fmt.Errorf("dataset %q: %w", id, err)
		}
		ts := r.clock()
		r.mu.Lock()
		if r.snaps[id] != base {
			// Lost the race: someone swapped the snapshot while we were
			// deriving. The events were written against a corpus that is
			// no longer current — re-derive from the new base.
			r.mu.Unlock()
			continue
		}
		rev := r.revs[id] + 1
		r.revs[id] = rev
		snap := &Snapshot{id: id, revision: rev, repo: repo, loadedAt: ts, delta: delta}
		r.snaps[id] = snap
		r.mu.Unlock()
		return snap, nil
	}
	return nil, ErrConflict
}

// Delete removes id from the registry. The default dataset is
// protected (ErrProtected); unknown IDs return ErrNotFound. The
// revision counter is retained so re-ingesting the same name continues
// the sequence instead of reusing old cache keys.
func (r *Registry) Delete(id string) error {
	if id == DefaultID {
		return ErrProtected
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.snaps[id]; !ok {
		return ErrNotFound
	}
	delete(r.snaps, id)
	for i, v := range r.order {
		if v == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return nil
}

// SetAttrs records id's tenancy metadata. Attrs are independent of the
// snapshot lifecycle: they may be set before the dataset is ingested
// (operator-declared tenants) and persist across re-ingest and Delete.
func (r *Registry) SetAttrs(id string, a Attrs) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attrs[id] = a
}

// SetOwner records owner for id, leaving the other attrs untouched.
func (r *Registry) SetOwner(id, owner string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.attrs[id]
	a.Owner = owner
	r.attrs[id] = a
}

// Attrs returns id's tenancy metadata (zero value when never set).
func (r *Registry) Attrs(id string) Attrs {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.attrs[id]
}

// MetaOf returns id's catalog entry with ownership composed in.
func (r *Registry) MetaOf(id string) (Meta, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.snaps[id]
	if !ok {
		return Meta{}, false
	}
	m := s.Meta()
	m.Owner = r.attrs[id].Owner
	return m, true
}

// List returns every registered dataset's Meta in registration order.
func (r *Registry) List() []Meta {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Meta, 0, len(r.order))
	for _, id := range r.order {
		m := r.snaps[id].Meta()
		m.Owner = r.attrs[id].Owner
		out = append(out, m)
	}
	return out
}

// IDs returns the registered dataset names in registration order.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.snaps)
}

// LoadDir registers every *.json file in dir as a dataset named after
// the file's stem ("pdc-2024.json" becomes dataset "pdc-2024"), in
// lexical filename order. Each file holds a Document. The first
// invalid file aborts the load; the datasets registered before it
// remain.
func (r *Registry) LoadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading %s: %w", dir, err)
	}
	var loaded []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return loaded, fmt.Errorf("dataset: %s: %w", e.Name(), err)
		}
		var doc Document
		if err := json.Unmarshal(raw, &doc); err != nil {
			return loaded, fmt.Errorf("dataset: %s: %w", e.Name(), err)
		}
		id := strings.TrimSuffix(e.Name(), ".json")
		if _, err := r.Put(id, doc.Courses); err != nil {
			return loaded, fmt.Errorf("dataset: %s: %w", e.Name(), err)
		}
		loaded = append(loaded, id)
	}
	return loaded, nil
}
