package dataset

import (
	"strings"
	"testing"

	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

func TestTwentyCoursesInFigure1Order(t *testing.T) {
	cs := Courses()
	if len(cs) != 20 {
		t.Fatalf("dataset has %d courses, want 20 (Figure 1)", len(cs))
	}
	ids := AllCourseIDs()
	for i, c := range cs {
		if c.ID != ids[i] {
			t.Fatalf("course %d = %q, want %q", i, c.ID, ids[i])
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	// The shared instance must be stable, and regenerating a course from
	// its spec must reproduce the same tags.
	a := Courses()
	b := Courses()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Courses must return the shared instance")
		}
	}
	arch := buildArchetypes()
	uni := tagUniverse()
	for i, s := range courseSpecs[:3] {
		re := generate(s, i, arch, uni)
		want := a[i].SortedTags()
		got := re.SortedTags()
		if len(want) != len(got) {
			t.Fatalf("course %s regenerated with %d tags, want %d", s.id, len(got), len(want))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("course %s tag %d differs", s.id, j)
			}
		}
	}
}

func TestGroupCounts(t *testing.T) {
	repo := Repository()
	counts := map[materials.CourseGroup]int{}
	for _, c := range repo.Courses() {
		counts[c.Group]++
		if c.SecondaryGroup != "" {
			counts[c.SecondaryGroup]++
		}
	}
	// Figure 1 group totals (counting dual labels).
	want := map[materials.CourseGroup]int{
		materials.GroupCS1:     6,
		materials.GroupOOP:     2, // ITCS 3112 + VCU's dual label
		materials.GroupDS:      5,
		materials.GroupAlgo:    2,
		materials.GroupSoftEng: 2,
		materials.GroupPDC:     3,
		materials.GroupOther:   2,
	}
	for g, n := range want {
		if counts[g] != n {
			t.Errorf("group %s has %d courses, want %d", g, counts[g], n)
		}
	}
}

func TestSubsetsMatchPaper(t *testing.T) {
	if n := len(CS1CourseIDs()); n != 6 {
		t.Errorf("CS1 subset has %d courses, want 6", n)
	}
	if n := len(DSCourseIDs()); n != 5 {
		t.Errorf("DS subset has %d courses, want 5", n)
	}
	if n := len(DSAlgoCourseIDs()); n != 7 {
		t.Errorf("DS+Algo subset has %d courses, want 7 (Figure 7)", n)
	}
	if n := len(PDCCourseIDs()); n != 3 {
		t.Errorf("PDC subset has %d courses, want 3", n)
	}
	// All subsets resolve.
	for _, ids := range [][]string{CS1CourseIDs(), DSCourseIDs(), DSAlgoCourseIDs(), PDCCourseIDs()} {
		CoursesByID(ids) // panics on a miss
	}
}

func TestCoursesByIDUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CoursesByID([]string{"nope"})
}

func TestAllCoursesValidateAgainstGuidelines(t *testing.T) {
	// Repository() already validates on AddCourse; this asserts it built.
	repo := Repository()
	if len(repo.Courses()) != 20 {
		t.Fatalf("repository has %d courses", len(repo.Courses()))
	}
	if repo.NumMaterials() < 400 {
		t.Fatalf("repository has only %d materials; expected several hundred", repo.NumMaterials())
	}
}

func TestCourseSizesRealistic(t *testing.T) {
	for _, c := range Courses() {
		n := len(c.TagSet())
		if n < 30 || n > 160 {
			t.Errorf("course %s maps to %d tags; outside the realistic 30-160 band", c.ID, n)
		}
		if len(c.Materials) < 10 {
			t.Errorf("course %s has only %d materials", c.ID, len(c.Materials))
		}
	}
}

// agreementCounts returns tag → number of courses among ids containing it.
func agreementCounts(ids []string) map[string]int {
	counts := map[string]int{}
	for _, c := range CoursesByID(ids) {
		for tag := range c.TagSet() {
			counts[tag]++
		}
	}
	return counts
}

func atLeast(counts map[string]int, k int) int {
	n := 0
	for _, v := range counts {
		if v >= k {
			n++
		}
	}
	return n
}

func areaOf(tag string) string {
	if n := ontology.CS2013().Lookup(tag); n != nil {
		return ontology.AreaOf(n).ID
	}
	if n := ontology.PDC12().Lookup(tag); n != nil {
		return "PDC12:" + ontology.AreaOf(n).ID
	}
	return "?"
}

// TestCS1AgreementShape asserts the Figure 3a / Figure 4 calibration: CS1
// courses map to over 200 tags, with sharply decreasing agreement, and
// the high-agreement core falls inside SDF (mostly Fundamental
// Programming Concepts).
func TestCS1AgreementShape(t *testing.T) {
	counts := agreementCounts(CS1CourseIDs())
	total := len(counts)
	if total < 200 || total > 320 {
		t.Errorf("CS1 distinct tags = %d, want 200-320 (paper: 'over 200')", total)
	}
	ge2, ge3, ge4 := atLeast(counts, 2), atLeast(counts, 3), atLeast(counts, 4)
	if ge2 < 45 || ge2 > 95 {
		t.Errorf("CS1 tags in >=2 courses = %d, want ~50 (45-95)", ge2)
	}
	if ge3 < 18 || ge3 > 45 {
		t.Errorf("CS1 tags in >=3 courses = %d, want ~25 (18-45)", ge3)
	}
	if ge4 < 8 || ge4 > 25 {
		t.Errorf("CS1 tags in >=4 courses = %d, want ~13 (8-25)", ge4)
	}
	// Paper: the >=4 agreement falls entirely within SDF, mostly within
	// Fundamental Programming Concepts.
	fpc := 0
	for tag, n := range counts {
		if n < 4 {
			continue
		}
		if ka := areaOf(tag); ka != "SDF" {
			t.Errorf("CS1 >=4 tag %q is in %s, want SDF only", tag, ka)
		}
		if strings.HasPrefix(tag, "SDF/fundamental-programming-concepts/") {
			fpc++
		}
	}
	if ge4 > 0 && float64(fpc)/float64(ge4) < 0.6 {
		t.Errorf("CS1 >=4 agreement: only %d/%d in Fundamental Programming Concepts", fpc, ge4)
	}
	// Paper Figure 4a: the >=2 agreement spans (at least) SDF, AL, AR, PL.
	kas := map[string]bool{}
	for tag, n := range counts {
		if n >= 2 {
			kas[areaOf(tag)] = true
		}
	}
	for _, want := range []string{"SDF", "AL", "AR", "PL"} {
		if !kas[want] {
			t.Errorf("CS1 >=2 agreement missing knowledge area %s", want)
		}
	}
}

// TestDSAgreementShape asserts the Figure 3b / Figure 6 calibration: DS
// courses agree much more than CS1 courses, the >=3 agreement spans the
// five KAs named in §4.5, and PL drops out at >=4.
func TestDSAgreementShape(t *testing.T) {
	counts := agreementCounts(DSCourseIDs())
	total := len(counts)
	if total < 200 || total > 320 {
		t.Errorf("DS distinct tags = %d, want ~250 (200-320)", total)
	}
	ge2, ge3 := atLeast(counts, 2), atLeast(counts, 3)
	if ge2 < 85 || ge2 > 150 {
		t.Errorf("DS tags in >=2 courses = %d, want ~120 (85-150)", ge2)
	}
	if ge3 < 40 || ge3 > 80 {
		t.Errorf("DS tags in >=3 courses = %d, want ~50 (40-80)", ge3)
	}

	// More agreement than CS1 both absolutely and relatively.
	cs1 := agreementCounts(CS1CourseIDs())
	cs1ge2 := atLeast(cs1, 2)
	if ge2 <= cs1ge2 {
		t.Errorf("DS >=2 (%d) must exceed CS1 >=2 (%d)", ge2, cs1ge2)
	}
	dsShare := float64(ge2) / float64(total)
	cs1Share := float64(cs1ge2) / float64(len(cs1))
	if dsShare <= cs1Share {
		t.Errorf("DS agreement share %.2f must exceed CS1 share %.2f", dsShare, cs1Share)
	}

	// §4.5: agreement at >=3 spans AL, SDF, DS, CN, PL.
	ka3 := map[string]bool{}
	ka4 := map[string]bool{}
	for tag, n := range counts {
		if n >= 3 {
			ka3[areaOf(tag)] = true
		}
		if n >= 4 {
			ka4[areaOf(tag)] = true
		}
	}
	for _, want := range []string{"AL", "SDF", "DS", "CN", "PL"} {
		if !ka3[want] {
			t.Errorf("DS >=3 agreement missing knowledge area %s", want)
		}
	}
	// The classic DS core survives at >=4: AL and SDF must be present.
	for _, want := range []string{"AL", "SDF"} {
		if !ka4[want] {
			t.Errorf("DS >=4 agreement missing knowledge area %s", want)
		}
	}
	// PL participation shrinks from >=3 to >=4 (the paper's "drops PL").
	pl3, pl4 := 0, 0
	for tag, n := range counts {
		if areaOf(tag) != "PL" {
			continue
		}
		if n >= 3 {
			pl3++
		}
		if n >= 4 {
			pl4++
		}
	}
	if pl4 >= pl3 && pl3 > 0 {
		t.Errorf("PL agreement must shrink from >=3 (%d) to >=4 (%d)", pl3, pl4)
	}
	if pl4 > 2 {
		t.Errorf("PL at >=4 = %d; paper drops PL entirely at >=4", pl4)
	}
}

// TestPDCAgreementShape asserts §4.7 / Figure 8: PDC courses agree mostly
// on PDC-related entries, and the non-parallelism agreement is limited to
// directed graphs, recursion / divide-and-conquer, and Big-Oh analysis.
func TestPDCAgreementShape(t *testing.T) {
	counts := agreementCounts(PDCCourseIDs())
	// The six anchors must each be shared by at least two PDC courses.
	anchors := []string{
		"DS/graphs-and-trees/directed-graphs",
		"SDF/fundamental-programming-concepts/the-concept-of-recursion",
		"SDF/algorithms-and-design/divide-and-conquer-strategies",
		"AL/algorithmic-strategies/divide-and-conquer",
		"AL/basic-analysis/big-o-notation-use",
		"AL/basic-analysis/asymptotic-analysis-of-upper-and-expected-complexity-bounds",
	}
	anchorSet := map[string]bool{}
	for _, a := range anchors {
		anchorSet[a] = true
		if counts[a] < 2 {
			t.Errorf("PDC anchor %q shared by %d courses, want >=2", a, counts[a])
		}
	}
	// KAs that directly relate to concurrency or parallelism.
	parallelKAs := map[string]bool{
		"PD": true, "SF": true, "OS": true, "AR": true,
		"PDC12:ARCH": true, "PDC12:PROG": true, "PDC12:ALGO": true, "PDC12:XCUT": true,
	}
	for tag, n := range counts {
		if n < 2 || anchorSet[tag] {
			continue
		}
		if !parallelKAs[areaOf(tag)] {
			t.Errorf("unexpected non-parallel shared tag %q (in %d PDC courses, area %s)", tag, n, areaOf(tag))
		}
	}
	// Most of the agreement must be in the PD knowledge area or PDC12.
	pdish, totalShared := 0, 0
	for tag, n := range counts {
		if n < 2 {
			continue
		}
		totalShared++
		ka := areaOf(tag)
		if ka == "PD" || strings.HasPrefix(ka, "PDC12:") {
			pdish++
		}
	}
	if totalShared == 0 || float64(pdish)/float64(totalShared) < 0.6 {
		t.Errorf("PDC shared tags: only %d/%d in PD/PDC12 areas", pdish, totalShared)
	}
}

func TestNoiseIsolation(t *testing.T) {
	// Noise buckets partition by tag hash: a tag's bucket decides the only
	// course index that may have drawn it as noise, so any tag present in
	// two courses with different indices must come from archetypes. Verify
	// the partition function is total and stable.
	seen := map[int]bool{}
	for _, tag := range tagUniverse() {
		b := bucketOf(tag)
		if b < 0 || b >= noiseBuckets {
			t.Fatalf("bucketOf(%q) = %d out of range", tag, b)
		}
		seen[b] = true
	}
	if len(seen) < noiseBuckets-2 {
		t.Errorf("only %d of %d noise buckets populated; hash is skewed", len(seen), noiseBuckets)
	}
}

func TestMaterialGranularity(t *testing.T) {
	// Materials carry 1-3 tags each, mirroring CS Materials granularity.
	for _, c := range Courses() {
		for _, m := range c.Materials {
			if len(m.Tags) < 1 || len(m.Tags) > 3 {
				t.Fatalf("material %s has %d tags, want 1-3", m.ID, len(m.Tags))
			}
		}
	}
}

func TestDualLabeledCourses(t *testing.T) {
	repo := Repository()
	ucf := repo.Course("ucf-cop3502-ahmed")
	if ucf.Group != materials.GroupCS1 || ucf.SecondaryGroup != materials.GroupDS {
		t.Errorf("UCF course labels = %s/%s, want CS1/DS", ucf.Group, ucf.SecondaryGroup)
	}
	vcu := repo.Course("vcu-cmsc256-duke")
	if vcu.Group != materials.GroupDS || vcu.SecondaryGroup != materials.GroupOOP {
		t.Errorf("VCU course labels = %s/%s, want DS/OOP", vcu.Group, vcu.SecondaryGroup)
	}
}

func TestPDCCoursesCarryPDC12Tags(t *testing.T) {
	pdc := ontology.PDC12()
	for _, c := range CoursesByID(PDCCourseIDs()) {
		n := 0
		for tag := range c.TagSet() {
			if pdc.Lookup(tag) != nil {
				n++
			}
		}
		if n < 10 {
			t.Errorf("PDC course %s has only %d PDC12 tags", c.ID, n)
		}
	}
	// Non-PDC courses must not carry PDC12 tags (they were classified
	// against CS2013 only).
	for _, c := range Courses() {
		if c.HasGroup(materials.GroupPDC) {
			continue
		}
		for tag := range c.TagSet() {
			if pdc.Lookup(tag) != nil {
				t.Errorf("non-PDC course %s carries PDC12 tag %q", c.ID, tag)
			}
		}
	}
}
