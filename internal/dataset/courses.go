package dataset

import "csmaterials/internal/materials"

// component is one archetype with its mixture weight in a course. The
// probability that a course covers a tag is the archetype base
// probability times the weight (capped at 0.98), taking the maximum when
// several components supply the same tag.
type component struct {
	arch   string
	weight float64
}

// spec describes one course of Figure 1.
type spec struct {
	id          string
	name        string
	institution string
	instructor  string
	group       materials.CourseGroup
	secondary   materials.CourseGroup
	mix         []component
	noise       int // idiosyncratic tags unique to this course
}

// courseSpecs reconstructs Figure 1: the 20 retained workshop courses
// with their group labels, plus mixture weights encoding the paper's
// narrative about each course's flavor:
//
//   - Kerney's and Bourke's CS1 are imperative + data-representation
//     (type 2 in Figure 5); Kurdia's is imperative; Singh's is
//     object-oriented (type 3, taught in Java); Ahmed's is data
//     structures and algorithms (type 1, "CS1" in name only);
//     Toups' blends imperative and algorithms.
//   - UNCC's two 2214 sections are application-flavored DS (type 1 in
//     Figure 7), VCU's is OOP-flavored (type 2), BSC's and the two
//     Algorithms courses are combinatorial (type 3), and UCF's course
//     hits all three evenly.
var courseSpecs = []spec{
	{
		id: "uncc-2214-krs", name: "UNCC ITCS 2214 KRS Data Structures and Algorithms",
		institution: "UNC Charlotte", instructor: "KRS", group: materials.GroupDS,
		mix: []component{
			{archDSCore, 1.0}, {archDSPeriphery, 0.9}, {archDSApps, 1.0},
		},
		noise: 30,
	},
	{
		id: "uncc-2214-saule", name: "UNCC ITCS 2214 Saule Data Structures and Algorithms",
		institution: "UNC Charlotte", instructor: "Saule", group: materials.GroupDS,
		mix: []component{
			{archDSCore, 1.0}, {archDSPeriphery, 0.8}, {archDSApps, 0.9},
			{archOOP, 0.2}, {archCombinatorial, 0.35},
		},
		noise: 28,
	},
	{
		id: "uncc-3145-saule", name: "UNCC ITCS 3145 Saule Parallel and Distributed Computing",
		institution: "UNC Charlotte", instructor: "Saule", group: materials.GroupPDC,
		mix: []component{
			{archPDC, 1.0}, {archPDCAnchors, 1.0},
		},
		noise: 18,
	},
	{
		id: "uncc-3112-krs", name: "UNCC ITCS 3112 KRS Object Oriented Programming",
		institution: "UNC Charlotte", instructor: "KRS", group: materials.GroupOOP,
		mix: []component{
			{archOOP, 1.0}, {archImperative, 0.55}, {archSoftEng, 0.25},
		},
		noise: 20,
	},
	{
		id: "ccc-csci40-kerney", name: "CCC CSCI 40 Kerney CS1",
		institution: "Clovis Community College", instructor: "Kerney", group: materials.GroupCS1,
		mix: []component{
			{archImperative, 1.0}, {archDataRep, 1.0},
		},
		noise: 22,
	},
	{
		id: "hanover-cs225-wahl", name: "Hanover cs225 Wahl Algorithmic Analysis 2021",
		institution: "Hanover College", instructor: "Wahl", group: materials.GroupAlgo,
		mix: []component{
			{archCombinatorial, 1.0}, {archDSCore, 0.75}, {archAlgoThinking, 0.7},
		},
		noise: 20,
	},
	{
		id: "vcu-cmsc256-duke", name: "VCU CMSC 256 Duke Data Structures and Object-oriented Programming",
		institution: "Virginia Commonwealth University", instructor: "Duke", group: materials.GroupDS,
		secondary: materials.GroupOOP,
		mix: []component{
			{archDSCore, 0.95}, {archOOP, 0.95}, {archDSPeriphery, 0.9},
		},
		noise: 28,
	},
	{
		id: "ccc-csci41-kerney", name: "CCC CSCI 41 Kerney CS2",
		institution: "Clovis Community College", instructor: "Kerney", group: materials.GroupOther,
		mix: []component{
			{archCS2Bridge, 1.0}, {archImperative, 0.5}, {archDataRep, 0.45},
		},
		noise: 20,
	},
	{
		id: "bsc-cac210-wagner", name: "BSC CAC 210 Wagner Data Structures and Algorithms",
		institution: "Birmingham-Southern College", instructor: "Wagner", group: materials.GroupDS,
		mix: []component{
			{archDSCore, 0.95}, {archCombinatorial, 0.85}, {archDSPeriphery, 0.3},
		},
		noise: 26,
	},
	{
		id: "uncc-2215-krs", name: "UNCC ITCS 2215 KRS Algorithms",
		institution: "UNC Charlotte", instructor: "KRS", group: materials.GroupAlgo,
		mix: []component{
			{archCombinatorial, 1.0}, {archDSCore, 0.8}, {archAlgoThinking, 0.65},
		},
		noise: 20,
	},
	{
		id: "gsu-csc4350-levine", name: "GSU CSC4350 Levine Software Engineering",
		institution: "Georgia State University", instructor: "Levine", group: materials.GroupSoftEng,
		mix: []component{
			{archSoftEng, 1.0}, {archOOP, 0.3},
		},
		noise: 20,
	},
	{
		id: "tulane-cmps1100-kurdia", name: "Tulane CMPS1100 Kurdia Intro to Programming",
		institution: "Tulane University", instructor: "Kurdia", group: materials.GroupCS1,
		mix: []component{
			{archImperative, 0.95},
		},
		noise: 20,
	},
	{
		id: "knox-cs309-bunde", name: "Knox CS309 Bunde Parallel Computing",
		institution: "Knox College", instructor: "Bunde", group: materials.GroupPDC,
		mix: []component{
			{archPDC, 0.95}, {archPDCAnchors, 1.0},
		},
		noise: 18,
	},
	{
		id: "lsu-csc1350-kundu", name: "LSU CSC 1350 Kundu Parallel Computation",
		institution: "Louisiana State University", instructor: "Kundu", group: materials.GroupPDC,
		mix: []component{
			{archPDC, 0.9}, {archPDCAnchors, 1.0}, {archImperative, 0.2},
		},
		noise: 18,
	},
	{
		id: "ucf-cop3502-ahmed", name: "UCF COP3502 Ahmed Computer Science 1 (CS1) Data structure and algorithm",
		institution: "University of Central Florida", instructor: "Ahmed", group: materials.GroupCS1,
		secondary: materials.GroupDS,
		mix: []component{
			{archAlgoThinking, 1.0}, {archDSCore, 0.9}, {archDSPeriphery, 0.35},
			{archDSApps, 0.5}, {archOOP, 0.5}, {archCombinatorial, 0.55},
			{archImperative, 0.25},
		},
		noise: 22,
	},
	{
		id: "washu-cse131-singh", name: "WashU CSE131 Singh Computer Science 1",
		institution: "Washington University in St. Louis", instructor: "Singh", group: materials.GroupCS1,
		mix: []component{
			{archOOP, 1.0}, {archImperative, 0.7},
		},
		noise: 22,
	},
	{
		id: "unl-csce155e-bourke", name: "UNL CSCE 155E Bourke Computer Science I using C",
		institution: "University of Nebraska-Lincoln", instructor: "Bourke", group: materials.GroupCS1,
		mix: []component{
			{archImperative, 1.0}, {archDataRep, 0.8}, {archAlgoThinking, 0.3},
		},
		noise: 22,
	},
	{
		id: "uncc-4155-payton", name: "UNCC ITCS 4155 Payton Software Development Projects",
		institution: "UNC Charlotte", instructor: "Payton", group: materials.GroupSoftEng,
		mix: []component{
			{archSoftEng, 0.95}, {archOOP, 0.35},
		},
		noise: 20,
	},
	{
		id: "tulane-cmps1500-toups", name: "Tulane CMPS1500 Toups CS1",
		institution: "Tulane University", instructor: "Toups", group: materials.GroupCS1,
		mix: []component{
			{archImperative, 0.8}, {archAlgoThinking, 0.65},
		},
		noise: 22,
	},
	{
		id: "utsa-bopana", name: "UTSA Bopana Computer Network",
		institution: "UT San Antonio", instructor: "Bopana", group: materials.GroupOther,
		mix: []component{
			{archNetworking, 1.0},
		},
		noise: 20,
	},
}

// Paper-ordered course ID subsets used by the analyses.

// CS1CourseIDs returns the six CS1/intro-programming courses of §4.3,
// in the row order of Figure 5a.
func CS1CourseIDs() []string {
	return []string{
		"ccc-csci40-kerney",
		"tulane-cmps1100-kurdia",
		"ucf-cop3502-ahmed",
		"washu-cse131-singh",
		"unl-csce155e-bourke",
		"tulane-cmps1500-toups",
	}
}

// DSCourseIDs returns the five Data Structures courses of §4.5.
func DSCourseIDs() []string {
	return []string{
		"uncc-2214-krs",
		"uncc-2214-saule",
		"vcu-cmsc256-duke",
		"bsc-cac210-wagner",
		"ucf-cop3502-ahmed",
	}
}

// DSAlgoCourseIDs returns the Data Structures plus Algorithms courses of
// §4.6, in the row order of Figure 7a.
func DSAlgoCourseIDs() []string {
	return []string{
		"uncc-2214-krs",
		"uncc-2214-saule",
		"hanover-cs225-wahl",
		"vcu-cmsc256-duke",
		"bsc-cac210-wagner",
		"uncc-2215-krs",
		"ucf-cop3502-ahmed",
	}
}

// PDCCourseIDs returns the three PDC courses of §4.7.
func PDCCourseIDs() []string {
	return []string{
		"uncc-3145-saule",
		"knox-cs309-bunde",
		"lsu-csc1350-kundu",
	}
}

// AllCourseIDs returns every course ID in Figure 1 order.
func AllCourseIDs() []string {
	out := make([]string, len(courseSpecs))
	for i, s := range courseSpecs {
		out[i] = s.id
	}
	return out
}
