package dataset

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"

	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

// Seed is the deterministic seed of the generator. Every build of the
// dataset is identical; the tests and figure harness depend on it.
const Seed = 20231112 // SC-W 2023 opened November 12, 2023

// noiseBuckets partitions the tag universe for idiosyncratic tags: course
// i draws its noise only from bucket i mod noiseBuckets, so noise never
// creates cross-course agreement. Agreement between courses is therefore
// entirely controlled by the archetype mixtures, which is what makes the
// Figure 3/4/6/8 calibrations reliable.
const noiseBuckets = 20

var (
	buildOnce sync.Once
	built     []*materials.Course
	builtRepo *materials.Repository
)

// Courses returns the 20 synthesized courses in Figure 1 order. The
// result is built once and shared; treat it as read-only.
func Courses() []*materials.Course {
	buildOnce.Do(buildAll)
	return built
}

// Repository returns a repository pre-loaded with the 20 courses,
// validating against CS2013 and PDC12.
func Repository() *materials.Repository {
	buildOnce.Do(buildAll)
	return builtRepo
}

// CoursesByID returns the named courses in the given order, panicking on
// unknown IDs (the subsets are hard-coded, so a miss is a bug).
func CoursesByID(ids []string) []*materials.Course {
	repo := Repository()
	out := make([]*materials.Course, len(ids))
	for i, id := range ids {
		c := repo.Course(id)
		if c == nil {
			panic(fmt.Sprintf("dataset: unknown course ID %q", id))
		}
		out[i] = c
	}
	return out
}

func buildAll() {
	archetypes := buildArchetypes()
	universe := tagUniverse()
	built = make([]*materials.Course, len(courseSpecs))
	for i, s := range courseSpecs {
		built[i] = generate(s, i, archetypes, universe)
	}
	builtRepo = materials.NewRepository(ontology.CS2013(), ontology.PDC12())
	for _, c := range built {
		if err := builtRepo.AddCourse(c); err != nil {
			panic(fmt.Sprintf("dataset: generated invalid course: %v", err))
		}
	}
}

// tagUniverse returns the CS2013 leaf IDs eligible as idiosyncratic
// noise. The PD knowledge area is excluded: in the paper's data only the
// PDC courses classify against parallel-computing entries, and a stray
// PD tag on a CS1 course would blur the clean Figure 2 separation.
// PDC12 tags enter exclusively through the PDC archetype.
func tagUniverse() []string {
	var out []string
	for _, l := range ontology.CS2013().Leaves() {
		if a := ontology.AreaOf(l); a != nil && a.ID == "PD" {
			continue
		}
		out = append(out, l.ID)
	}
	return out
}

// courseSeed derives a stable per-course RNG seed from the dataset seed
// and the course ID.
func courseSeed(id string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", Seed, id)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

func bucketOf(tag string) int {
	h := fnv.New32a()
	h.Write([]byte(tag))
	return int(h.Sum32() % noiseBuckets)
}

// generate synthesizes one course: sample archetype tags, add partitioned
// noise, then split the tag set into materials.
func generate(s spec, index int, archetypes map[string]archetype, universe []string) *materials.Course {
	rng := rand.New(rand.NewSource(courseSeed(s.id)))

	// Effective inclusion probability per tag: max over components.
	probs := map[string]float64{}
	for _, comp := range s.mix {
		a, ok := archetypes[comp.arch]
		if !ok {
			panic(fmt.Sprintf("dataset: course %q references unknown archetype %q", s.id, comp.arch))
		}
		for _, tp := range a.tags {
			p := tp.p * comp.weight
			if p > 0.98 {
				p = 0.98
			}
			if p > probs[tp.id] {
				probs[tp.id] = p
			}
		}
	}
	// Deterministic iteration order for sampling.
	ids := make([]string, 0, len(probs))
	for id := range probs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	included := map[string]bool{}
	var tags []string
	for _, id := range ids {
		if rng.Float64() < probs[id] {
			included[id] = true
			tags = append(tags, id)
		}
	}

	// Idiosyncratic tags from this course's private bucket.
	var candidates []string
	for _, t := range universe {
		if !included[t] && bucketOf(t) == index%noiseBuckets {
			candidates = append(candidates, t)
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	n := s.noise
	if n > len(candidates) {
		n = len(candidates)
	}
	tags = append(tags, candidates[:n]...)
	sort.Strings(tags)

	return &materials.Course{
		ID:             s.id,
		Name:           s.name,
		Institution:    s.institution,
		Instructor:     s.instructor,
		Group:          s.group,
		SecondaryGroup: s.secondary,
		Materials:      splitIntoMaterials(s, tags, rng),
	}
}

// materialTypes cycles through realistic material kinds; the distribution
// loosely matches CS Materials (lectures dominate, then assignments).
var materialTypes = []materials.MaterialType{
	materials.Lecture, materials.Lecture, materials.Assignment,
	materials.Lecture, materials.Lab, materials.Lecture,
	materials.Assignment, materials.Quiz, materials.Lecture,
	materials.Activity,
}

// splitIntoMaterials distributes a course's tags over materials of 1-3
// tags each, mirroring the granularity of real CS Materials entries
// (~1700 materials over ~30 courses). About a third of the tags are
// covered by a second material as well — a concept both lectured on and
// assessed — so that the §3.1.1 alignment analysis has signal.
func splitIntoMaterials(s spec, tags []string, rng *rand.Rand) []*materials.Material {
	shuffled := append([]string(nil), tags...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	// Duplicate a deterministic subset so some tags span two materials.
	dup := make([]string, 0, len(shuffled)/3)
	for _, t := range shuffled {
		if rng.Float64() < 0.35 {
			dup = append(dup, t)
		}
	}
	shuffled = append(shuffled, dup...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	var out []*materials.Material
	for i := 0; i < len(shuffled); {
		size := 1 + rng.Intn(3)
		if i+size > len(shuffled) {
			size = len(shuffled) - i
		}
		idx := len(out)
		mt := materialTypes[idx%len(materialTypes)]
		seen := map[string]bool{}
		var mTags []string
		for _, t := range shuffled[i : i+size] {
			if !seen[t] {
				seen[t] = true
				mTags = append(mTags, t)
			}
		}
		m := &materials.Material{
			ID:          fmt.Sprintf("%s/m%03d", s.id, idx),
			Title:       fmt.Sprintf("%s — %s %d", shortName(s), mt, idx),
			Type:        mt,
			Author:      s.instructor,
			CourseLevel: string(s.group),
			Tags:        mTags,
		}
		out = append(out, m)
		i += size
	}
	return out
}

func shortName(s spec) string {
	if len(s.name) <= 24 {
		return s.name
	}
	return s.name[:24]
}
