// Package dataset synthesizes the paper's 20-course workshop dataset
// (Figure 1). The real classifications collected through the CS Materials
// workshops are not published, so this package builds a calibrated
// substitute: each course is a probabilistic mixture of *archetype* tag
// pools drawn from the CS2013 and PDC12 guidelines, with mixture weights
// set from the paper's narrative (which instructor's course leans which
// way), plus per-course idiosyncratic tags.
//
// The calibration targets are the paper's aggregate statistics — total
// distinct tags per course group, the agreement distributions of Figure 3,
// the knowledge-area spans of Figures 4/6/8, and the NNMF type structure
// of Figures 2/5/7. The tests in this package assert those shapes.
package dataset

import (
	"fmt"

	"csmaterials/internal/ontology"
)

// tagProb is one entry of an archetype: a curriculum tag and the base
// probability that a course built on this archetype covers it.
type tagProb struct {
	id string
	p  float64
}

// archetype is a named pool of weighted curriculum tags.
type archetype struct {
	name string
	tags []tagProb
}

// pool collects tagProb entries with convenience builders; it panics on
// unknown IDs so that typos in the data tables fail fast.
type pool struct {
	cs  *ontology.Guideline
	pdc *ontology.Guideline
	out []tagProb
}

func newPool() *pool {
	return &pool{cs: ontology.CS2013(), pdc: ontology.PDC12()}
}

// leaf adds a single CS2013 leaf by ID.
func (b *pool) leaf(id string, p float64) *pool {
	n := b.cs.Lookup(id)
	if n == nil {
		n = b.pdc.Lookup(id)
	}
	if n == nil {
		panic(fmt.Sprintf("dataset: unknown tag %q", id))
	}
	if len(n.Children) != 0 {
		panic(fmt.Sprintf("dataset: tag %q is not a leaf", id))
	}
	b.out = append(b.out, tagProb{id: id, p: p})
	return b
}

// unit adds every leaf under a CS2013 knowledge unit.
func (b *pool) unit(id string, p float64) *pool {
	return b.subtree(b.cs, id, p)
}

// pdcUnit adds every leaf under a PDC12 unit or area.
func (b *pool) pdcUnit(id string, p float64) *pool {
	return b.subtree(b.pdc, id, p)
}

func (b *pool) subtree(g *ontology.Guideline, id string, p float64) *pool {
	root := g.Lookup(id)
	if root == nil {
		panic(fmt.Sprintf("dataset: unknown subtree %q in %s", id, g.Name))
	}
	n := 0
	var walk func(*ontology.Node)
	walk = func(m *ontology.Node) {
		if len(m.Children) == 0 {
			b.out = append(b.out, tagProb{id: m.ID, p: p})
			n++
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(root)
	if n == 0 {
		panic(fmt.Sprintf("dataset: subtree %q has no leaves", id))
	}
	return b
}

// topicsOnly adds only the KindTopic leaves under a unit (skipping
// learning outcomes) — used where a course covers the subject matter but
// the instructor did not classify against outcome entries.
func (b *pool) topicsOnly(id string, p float64) *pool {
	root := b.cs.Lookup(id)
	if root == nil {
		panic(fmt.Sprintf("dataset: unknown subtree %q", id))
	}
	for _, c := range root.Children {
		if c.Kind == ontology.KindTopic {
			b.out = append(b.out, tagProb{id: c.ID, p: p})
		}
	}
	return b
}

func (b *pool) build(name string) archetype {
	if len(b.out) == 0 {
		panic(fmt.Sprintf("dataset: archetype %q is empty", name))
	}
	return archetype{name: name, tags: b.out}
}

// Archetype names used by the course specs.
const (
	archImperative    = "imperative"    // CS1 type 2 backbone: FPC + development methods
	archDataRep       = "data-rep"      // CS1 type 2 extras: in-memory representation, testing/correctness
	archAlgoThinking  = "algo-thinking" // CS1 type 1: complexity, D&C, sorting, basic structures
	archOOP           = "oop"           // CS1 type 3 / DS type 2: classes, inheritance, polymorphism, generics
	archDSCore        = "ds-core"       // the classic Data Structures core all DS flavors share
	archDSPeriphery   = "ds-periphery"  // Java-flavored periphery: collections, iterators, visualization
	archDSApps        = "ds-apps"       // DS type 1: problem solving, datasets, APIs, visualization
	archCombinatorial = "combinatorial" // DS type 3 / Algorithms: greedy, DP, counting, enumeration
	archSoftEng       = "softeng"       // software engineering courses
	archPDC           = "pdc"           // parallel and distributed computing courses
	archPDCAnchors    = "pdc-anchors"   // the non-PDC entries PDC courses share: digraphs, recursion/D&C, Big-Oh
	archNetworking    = "networking"    // the computer-network course
	archCS2Bridge     = "cs2-bridge"    // CS2: imperative consolidation + early data structures
)

// buildArchetypes constructs every archetype pool from the guidelines.
func buildArchetypes() map[string]archetype {
	m := map[string]archetype{}
	add := func(a archetype) {
		if _, dup := m[a.name]; dup {
			panic("dataset: duplicate archetype " + a.name)
		}
		m[a.name] = a
	}

	// --- CS1 archetypes -------------------------------------------------

	add(newPool().
		unit("SDF/fundamental-programming-concepts", 0.9).
		leaf("SDF/algorithms-and-design/implementation-of-algorithms", 0.85).
		leaf("SDF/algorithms-and-design/the-concept-and-properties-of-algorithms", 0.6).
		leaf("SDF/algorithms-and-design/problem-solving-strategies", 0.6).
		leaf("SDF/algorithms-and-design/the-role-of-algorithms-in-the-problem-solving-process", 0.45).
		unit("SDF/development-methods", 0.45).
		build(archImperative))

	add(newPool().
		unit("AR/machine-level-representation-of-data", 0.85).
		leaf("CN/processing/fundamentals-of-numerical-computation-and-error", 0.3).
		leaf("IAS/defensive-programming/input-validation-and-data-sanitization", 0.4).
		leaf("IAS/defensive-programming/correct-handling-of-exceptions-and-error-cases", 0.35).
		leaf("IAS/defensive-programming/checking-the-correctness-of-programs-assertions-and-invariants", 0.4).
		leaf("IAS/defensive-programming/use-assertions-to-document-and-check-invariants", 0.3).
		leaf("SE/software-verification-and-validation/testing-levels-unit-integration-system-acceptance", 0.4).
		leaf("SE/software-verification-and-validation/black-box-and-white-box-test-design", 0.3).
		leaf("SE/software-verification-and-validation/verification-versus-validation", 0.25).
		leaf("OS/overview-of-operating-systems/role-and-purpose-of-the-operating-system", 0.25).
		build(archDataRep))

	add(newPool().
		unit("AL/basic-analysis", 0.8).
		leaf("AL/algorithmic-strategies/brute-force-algorithms", 0.65).
		leaf("AL/algorithmic-strategies/divide-and-conquer", 0.85).
		leaf("AL/algorithmic-strategies/recursive-backtracking", 0.5).
		leaf("AL/algorithmic-strategies/use-a-divide-and-conquer-algorithm-to-solve-an-appropriate-problem", 0.6).
		leaf("AL/fundamental-data-structures-and-algorithms/sequential-and-binary-search-algorithms", 0.85).
		leaf("AL/fundamental-data-structures-and-algorithms/quadratic-sorting-algorithms-selection-and-insertion-sort", 0.8).
		leaf("AL/fundamental-data-structures-and-algorithms/o-n-log-n-sorting-algorithms-quicksort-heapsort-mergesort", 0.75).
		leaf("AL/fundamental-data-structures-and-algorithms/binary-search-trees-common-operations", 0.6).
		leaf("AL/fundamental-data-structures-and-algorithms/implement-basic-numerical-and-string-searching-algorithms", 0.6).
		leaf("AL/fundamental-data-structures-and-algorithms/implement-common-quadratic-and-o-n-log-n-sorting-algorithms", 0.6).
		unit("SDF/fundamental-data-structures", 0.8).
		leaf("DS/graphs-and-trees/trees-properties-and-traversal-strategies", 0.45).
		leaf("DS/graphs-and-trees/model-problems-using-graphs-and-trees", 0.3).
		build(archAlgoThinking))

	add(newPool().
		unit("PL/object-oriented-programming", 0.9).
		leaf("PL/basic-type-systems/generic-types-and-parametric-polymorphism", 0.6).
		leaf("PL/basic-type-systems/define-and-use-a-generic-type", 0.55).
		leaf("PL/basic-type-systems/a-type-as-a-set-of-values-with-operations", 0.5).
		leaf("PL/event-driven-and-reactive-programming/events-and-event-handlers", 0.45).
		leaf("PL/event-driven-and-reactive-programming/write-event-handlers-for-a-simple-graphical-application", 0.35).
		leaf("SE/software-design/principles-of-design-coupling-cohesion-information-hiding", 0.45).
		leaf("SE/software-design/designing-for-reuse-and-maintainability", 0.35).
		build(archOOP))

	// --- Data Structures archetypes --------------------------------------

	add(newPool().
		leaf("AL/basic-analysis/big-o-notation-formal-definition", 0.9).
		leaf("AL/basic-analysis/big-o-notation-use", 0.95).
		leaf("AL/basic-analysis/complexity-classes-such-as-constant-logarithmic-linear-and-quadratic", 0.9).
		leaf("AL/basic-analysis/differences-among-best-expected-and-worst-case-behaviors", 0.8).
		leaf("AL/basic-analysis/use-big-o-notation-to-give-asymptotic-upper-bounds", 0.85).
		leaf("AL/basic-analysis/determine-informally-the-time-and-space-complexity-of-simple-algorithms", 0.8).
		leaf("AL/basic-analysis/time-and-space-trade-offs-in-algorithms", 0.6).
		unit("SDF/fundamental-data-structures", 0.9).
		leaf("AL/fundamental-data-structures-and-algorithms/sequential-and-binary-search-algorithms", 0.9).
		leaf("AL/fundamental-data-structures-and-algorithms/quadratic-sorting-algorithms-selection-and-insertion-sort", 0.85).
		leaf("AL/fundamental-data-structures-and-algorithms/o-n-log-n-sorting-algorithms-quicksort-heapsort-mergesort", 0.9).
		leaf("AL/fundamental-data-structures-and-algorithms/hash-tables-including-collision-avoidance-strategies", 0.9).
		leaf("AL/fundamental-data-structures-and-algorithms/binary-search-trees-common-operations", 0.9).
		leaf("AL/fundamental-data-structures-and-algorithms/balanced-binary-search-trees", 0.7).
		leaf("AL/fundamental-data-structures-and-algorithms/heaps-and-priority-queues", 0.8).
		leaf("AL/fundamental-data-structures-and-algorithms/graphs-and-graph-algorithms-representations", 0.85).
		leaf("AL/fundamental-data-structures-and-algorithms/graph-traversals-depth-first-and-breadth-first", 0.85).
		leaf("AL/fundamental-data-structures-and-algorithms/implement-and-use-a-hash-table-handling-collisions", 0.75).
		leaf("AL/fundamental-data-structures-and-algorithms/implement-binary-search-trees-and-their-traversals", 0.8).
		leaf("AL/fundamental-data-structures-and-algorithms/implement-graph-algorithms-including-traversals-and-shortest-paths", 0.6).
		leaf("AL/fundamental-data-structures-and-algorithms/discuss-runtime-and-memory-efficiency-of-principal-algorithms", 0.7).
		leaf("AL/fundamental-data-structures-and-algorithms/select-an-appropriate-sorting-or-searching-algorithm-for-an-application", 0.6).
		leaf("SDF/fundamental-programming-concepts/the-concept-of-recursion", 0.9).
		leaf("SDF/fundamental-programming-concepts/describe-the-concept-of-recursion-and-give-examples-of-its-use", 0.75).
		leaf("SDF/fundamental-programming-concepts/identify-base-and-recursive-cases-of-a-recursive-function", 0.7).
		leaf("SDF/algorithms-and-design/iterative-and-recursive-traversal-of-data-structures", 0.85).
		leaf("SDF/algorithms-and-design/divide-and-conquer-strategies", 0.75).
		leaf("DS/graphs-and-trees/trees-properties-and-traversal-strategies", 0.8).
		leaf("DS/graphs-and-trees/undirected-graphs", 0.7).
		leaf("DS/graphs-and-trees/directed-graphs", 0.7).
		leaf("DS/graphs-and-trees/weighted-graphs", 0.6).
		leaf("DS/graphs-and-trees/illustrate-the-basic-terminology-of-graph-theory-and-properties-of-trees", 0.55).
		leaf("DS/graphs-and-trees/demonstrate-traversal-methods-for-trees-and-graphs", 0.6).
		// Commonly-covered band: entries most Data Structure courses
		// touch without them being the defining core. This band creates
		// the broad 2-3 course agreement of Figure 3b.
		leaf("AL/basic-analysis/empirical-measurement-of-performance", 0.5).
		leaf("AL/basic-analysis/explain-what-is-meant-by-best-expected-and-worst-case-behavior", 0.55).
		leaf("AL/basic-analysis/perform-empirical-studies-to-validate-hypotheses-about-runtime", 0.45).
		leaf("AL/basic-analysis/asymptotic-analysis-of-upper-and-expected-complexity-bounds", 0.55).
		leaf("AL/basic-analysis/recurrence-relations-and-the-analysis-of-recursive-algorithms", 0.5).
		leaf("AL/basic-analysis/solve-elementary-recurrence-relations", 0.4).
		leaf("AL/algorithmic-strategies/divide-and-conquer", 0.6).
		leaf("AL/algorithmic-strategies/use-a-divide-and-conquer-algorithm-to-solve-an-appropriate-problem", 0.45).
		leaf("AL/fundamental-data-structures-and-algorithms/pattern-matching-and-string-processing-algorithms", 0.45).
		leaf("DS/proof-techniques/recursive-mathematical-definitions", 0.5).
		leaf("DS/proof-techniques/weak-and-strong-mathematical-induction", 0.45).
		leaf("DS/proof-techniques/structural-induction", 0.35).
		leaf("DS/sets-relations-and-functions/sets-venn-diagrams-union-intersection-complement", 0.4).
		leaf("SDF/fundamental-programming-concepts/basic-syntax-and-semantics-of-a-higher-level-language", 0.5).
		leaf("SDF/fundamental-programming-concepts/functions-and-parameter-passing", 0.55).
		leaf("SDF/fundamental-programming-concepts/iterative-control-structures", 0.5).
		leaf("SDF/fundamental-programming-concepts/expressions-and-assignments", 0.4).
		leaf("SDF/algorithms-and-design/abstraction-and-encapsulation-in-program-design", 0.55).
		leaf("SDF/algorithms-and-design/separation-of-behavior-and-implementation", 0.5).
		leaf("SDF/algorithms-and-design/iterative-and-recursive-mathematical-functions", 0.45).
		leaf("SDF/algorithms-and-design/identify-the-data-components-and-behaviors-of-multiple-abstract-data-types", 0.5).
		leaf("SDF/development-methods/unit-testing-and-test-case-design", 0.5).
		leaf("SDF/development-methods/debugging-strategies", 0.55).
		leaf("SDF/development-methods/program-comprehension", 0.45).
		leaf("SDF/development-methods/trace-the-execution-of-a-variety-of-code-segments", 0.4).
		leaf("PL/language-translation-and-execution/memory-management-garbage-collection-versus-manual", 0.4).
		leaf("PL/basic-type-systems/primitive-types-versus-compound-types", 0.45).
		build(archDSCore))

	add(newPool().
		leaf("PL/object-oriented-programming/collection-classes-and-iterators", 0.5).
		leaf("PL/object-oriented-programming/use-iterators-and-collection-classes-to-process-aggregates", 0.45).
		leaf("PL/object-oriented-programming/generics-and-parameterized-types", 0.45).
		leaf("PL/object-oriented-programming/object-interfaces-and-abstract-classes", 0.4).
		leaf("PL/object-oriented-programming/object-oriented-design-classes-and-objects", 0.5).
		leaf("PL/object-oriented-programming/encapsulation-and-information-hiding", 0.45).
		leaf("PL/object-oriented-programming/definition-of-classes-fields-methods-and-constructors", 0.4).
		leaf("CN/interactive-visualization/interactive-charts-maps-and-graph-drawings", 0.4).
		leaf("CN/introduction-to-modeling-and-simulation/visualizing-simulation-results", 0.35).
		leaf("CN/introduction-to-modeling-and-simulation/working-with-large-datasets", 0.45).
		build(archDSPeriphery))

	add(newPool().
		unit("CN/introduction-to-modeling-and-simulation", 0.75).
		leaf("CN/interactive-visualization/principles-of-visual-encoding-of-data", 0.6).
		leaf("CN/interactive-visualization/build-an-interactive-visualization-of-a-dataset", 0.55).
		leaf("CN/data-information-and-knowledge/acquisition-cleaning-and-provenance-of-data", 0.6).
		leaf("CN/data-information-and-knowledge/clean-and-document-a-raw-dataset-for-analysis", 0.5).
		leaf("IM/information-management-concepts/data-capture-representation-and-organization", 0.65).
		leaf("IM/information-management-concepts/indexing-and-searching-stored-information", 0.7).
		leaf("IM/information-management-concepts/design-an-index-to-support-efficient-search-over-a-dataset", 0.55).
		leaf("SDF/development-methods/modern-programming-environments-and-libraries", 0.7).
		leaf("SDF/development-methods/construct-and-debug-programs-using-standard-libraries", 0.65).
		leaf("SDF/algorithms-and-design/problem-solving-strategies", 0.7).
		leaf("SDF/algorithms-and-design/the-role-of-algorithms-in-the-problem-solving-process", 0.6).
		leaf("GV/visualization/information-visualization-of-trees-graphs-and-tables", 0.4).
		build(archDSApps))

	add(newPool().
		leaf("AL/algorithmic-strategies/greedy-algorithms", 0.9).
		leaf("AL/algorithmic-strategies/dynamic-programming", 0.9).
		leaf("AL/algorithmic-strategies/recursive-backtracking", 0.75).
		leaf("AL/algorithmic-strategies/brute-force-algorithms", 0.7).
		leaf("AL/algorithmic-strategies/reduction-transform-and-conquer", 0.55).
		leaf("AL/algorithmic-strategies/use-a-greedy-approach-to-solve-an-appropriate-problem", 0.7).
		leaf("AL/algorithmic-strategies/use-dynamic-programming-to-solve-an-appropriate-problem", 0.7).
		leaf("AL/algorithmic-strategies/determine-an-appropriate-algorithmic-approach-to-a-problem", 0.6).
		leaf("AL/fundamental-data-structures-and-algorithms/shortest-path-algorithms-dijkstra-and-floyd", 0.75).
		leaf("AL/fundamental-data-structures-and-algorithms/minimum-spanning-trees-prim-and-kruskal", 0.7).
		leaf("AL/fundamental-data-structures-and-algorithms/topological-sort-of-a-directed-acyclic-graph", 0.6).
		unit("DS/basics-of-counting", 0.7).
		leaf("DS/sets-relations-and-functions/sets-venn-diagrams-union-intersection-complement", 0.6).
		leaf("DS/sets-relations-and-functions/sets-cartesian-products-and-power-sets", 0.45).
		leaf("DS/sets-relations-and-functions/perform-the-operations-of-union-intersection-complement-on-sets", 0.5).
		leaf("AL/basic-analysis/recurrence-relations-and-the-analysis-of-recursive-algorithms", 0.75).
		leaf("AL/basic-analysis/solve-elementary-recurrence-relations", 0.65).
		leaf("AL/basic-automata-computability-and-complexity/introduction-to-the-p-and-np-classes-and-the-p-vs-np-problem", 0.5).
		leaf("AL/basic-automata-computability-and-complexity/np-completeness-and-cook-s-theorem", 0.4).
		leaf("AL/advanced-data-structures-algorithms-and-analysis/graphs-network-flows-and-matching", 0.35).
		leaf("AL/advanced-data-structures-algorithms-and-analysis/randomized-algorithms", 0.3).
		leaf("AL/advanced-data-structures-algorithms-and-analysis/union-find-and-path-compression", 0.35).
		build(archCombinatorial))

	// --- Other course archetypes -----------------------------------------

	add(newPool().
		unit("SE/software-processes", 0.85).
		unit("SE/software-project-management", 0.8).
		unit("SE/tools-and-environments", 0.75).
		unit("SE/requirements-engineering", 0.85).
		unit("SE/software-design", 0.8).
		unit("SE/software-construction", 0.75).
		unit("SE/software-verification-and-validation", 0.8).
		unit("SE/software-evolution", 0.5).
		leaf("SP/professional-communication/writing-technical-documentation", 0.5).
		leaf("SP/professional-communication/communicating-with-stakeholders", 0.45).
		leaf("SP/professional-communication/present-a-technical-solution-to-a-non-technical-audience", 0.4).
		leaf("HCI/foundations/usability-heuristics-and-principles", 0.35).
		build(archSoftEng))

	add(newPool().
		unit("PD/parallelism-fundamentals", 0.9).
		unit("PD/parallel-decomposition", 0.85).
		unit("PD/communication-and-coordination", 0.85).
		unit("PD/parallel-algorithms-analysis-and-programming", 0.8).
		unit("PD/parallel-architecture", 0.7).
		unit("PD/parallel-performance", 0.55).
		unit("PD/distributed-systems", 0.4).
		unit("OS/concurrency", 0.6).
		unit("SF/parallelism", 0.6).
		leaf("SF/evaluation/apply-amdahl-s-law-to-predict-improvement-limits", 0.5).
		leaf("AR/multiprocessing-and-alternative-architectures/shared-memory-multiprocessors-and-cache-coherence", 0.5).
		leaf("AR/multiprocessing-and-alternative-architectures/gpu-and-accelerator-architectures", 0.4).
		leaf("AR/assembly-level-machine-organization/introduction-to-simd-versus-mimd-and-the-flynn-taxonomy", 0.45).
		pdcUnit("PROG/parallel-programming-paradigms", 0.6).
		pdcUnit("PROG/semantics-and-correctness-issues", 0.55).
		pdcUnit("ALGO/parallel-and-distributed-models-and-complexity", 0.6).
		pdcUnit("ALGO/algorithmic-paradigms", 0.55).
		pdcUnit("ARCH/classes-of-parallelism", 0.45).
		pdcUnit("XCUT/concurrency-concepts", 0.5).
		build(archPDC))

	add(newPool().
		leaf("DS/graphs-and-trees/directed-graphs", 0.98).
		leaf("SDF/fundamental-programming-concepts/the-concept-of-recursion", 0.95).
		leaf("SDF/algorithms-and-design/divide-and-conquer-strategies", 0.92).
		leaf("AL/algorithmic-strategies/divide-and-conquer", 0.92).
		leaf("AL/basic-analysis/big-o-notation-use", 0.95).
		leaf("AL/basic-analysis/asymptotic-analysis-of-upper-and-expected-complexity-bounds", 0.9).
		build(archPDCAnchors))

	add(newPool().
		unit("NC/introduction", 0.9).
		unit("NC/networked-applications", 0.85).
		unit("NC/reliable-data-delivery", 0.8).
		unit("NC/routing-and-forwarding", 0.75).
		unit("NC/local-area-networks", 0.7).
		unit("NC/resource-allocation", 0.5).
		unit("NC/mobility", 0.4).
		leaf("IAS/network-security/firewalls-and-intrusion-detection", 0.5).
		leaf("IAS/network-security/transport-layer-security", 0.45).
		build(archNetworking))

	add(newPool().
		unit("SDF/fundamental-data-structures", 0.8).
		leaf("SDF/fundamental-programming-concepts/functions-and-parameter-passing", 0.7).
		leaf("SDF/fundamental-programming-concepts/the-concept-of-recursion", 0.75).
		leaf("AL/basic-analysis/big-o-notation-use", 0.6).
		leaf("AL/fundamental-data-structures-and-algorithms/sequential-and-binary-search-algorithms", 0.7).
		leaf("AL/fundamental-data-structures-and-algorithms/quadratic-sorting-algorithms-selection-and-insertion-sort", 0.65).
		leaf("PL/object-oriented-programming/object-oriented-design-classes-and-objects", 0.6).
		leaf("PL/object-oriented-programming/inheritance-and-subtyping", 0.5).
		unit("SDF/development-methods", 0.55).
		build(archCS2Bridge))

	return m
}
