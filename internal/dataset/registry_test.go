package dataset

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
	"csmaterials/internal/stats"
)

// miniCourses builds a small valid corpus by cloning a couple of seed
// courses under fresh IDs (tags are already guideline-valid; material
// IDs are re-minted to stay globally unique inside the new repository).
func miniCourses(t *testing.T, n int) []*materials.Course {
	t.Helper()
	seed := Courses()
	if n > len(seed) {
		t.Fatalf("miniCourses(%d): seed has only %d", n, len(seed))
	}
	out := make([]*materials.Course, 0, n)
	for i := 0; i < n; i++ {
		src := seed[i]
		c := &materials.Course{
			ID: "mini-" + src.ID, Name: "Mini " + src.Name,
			Group: src.Group, SecondaryGroup: src.SecondaryGroup,
		}
		for j, m := range src.Materials {
			mm := *m
			mm.ID = c.ID + "-m" + string(rune('a'+j%26)) + string(rune('a'+(j/26)%26))
			c.Materials = append(c.Materials, &mm)
		}
		out = append(out, c)
	}
	return out
}

func TestValidateID(t *testing.T) {
	for _, ok := range []string{"default", "a", "pdc-2024", "x_y.z", "0abc"} {
		if err := ValidateID(ok); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", ok, err)
		}
	}
	long := strings.Repeat("a", MaxIDLength+1)
	for _, bad := range []string{"", "UPPER", "has space", "a/b", "a|b", "a@b", "-lead", ".lead", long} {
		if err := ValidateID(bad); err == nil {
			t.Errorf("ValidateID(%q) = nil, want error", bad)
		}
	}
}

func TestRegistrySeedsDefault(t *testing.T) {
	r := NewRegistry(nil)
	def := r.Default()
	if def == nil || def.ID() != DefaultID || def.Revision() != 1 {
		t.Fatalf("default snapshot = %+v", def)
	}
	if def.Repo() != Repository() {
		t.Error("default must serve the shared seed repository")
	}
	if !def.LoadedAt().IsZero() {
		t.Error("nil clock must leave LoadedAt zero")
	}
	m := def.Meta()
	if m.Courses != 20 || m.Materials == 0 {
		t.Errorf("default meta = %+v, want the 20-course seed corpus", m)
	}
	if got := r.IDs(); len(got) != 1 || got[0] != DefaultID {
		t.Errorf("IDs() = %v", got)
	}
}

func TestPutRevisionsAndIsolation(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	r := NewRegistry(func() time.Time { return now })
	cs := miniCourses(t, 3)

	s1, err := r.Put("alt", cs)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if s1.Revision() != 1 || s1.ID() != "alt" {
		t.Fatalf("first revision = %+v", s1.Meta())
	}
	if !s1.LoadedAt().Equal(now) {
		t.Errorf("LoadedAt = %v, want %v", s1.LoadedAt(), now)
	}

	// Re-ingest: a new snapshot under revision 2; the old snapshot
	// pointer keeps serving its own corpus (no torn reads).
	s2, err := r.Put("alt", miniCourses(t, 2))
	if err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	if s2.Revision() != 2 {
		t.Fatalf("second revision = %d, want 2", s2.Revision())
	}
	if len(s1.Repo().Courses()) != 3 || len(s2.Repo().Courses()) != 2 {
		t.Error("old snapshot mutated by re-ingest")
	}
	cur, _ := r.Get("alt")
	if cur != s2 {
		t.Error("Get must return the newest snapshot")
	}

	// Catalog order is registration order, default first.
	metas := r.List()
	if len(metas) != 2 || metas[0].ID != DefaultID || metas[1].ID != "alt" {
		t.Errorf("List() = %+v", metas)
	}
}

func TestPutRejectsInvalid(t *testing.T) {
	r := NewRegistry(nil)
	if _, err := r.Put("Bad/ID", miniCourses(t, 1)); err == nil {
		t.Error("invalid ID must be rejected")
	}
	if _, err := r.Put("empty", nil); err == nil {
		t.Error("empty course list must be rejected")
	}
	bad := miniCourses(t, 1)
	bad[0].Materials[0].Tags = append(bad[0].Materials[0].Tags, "NoSuchKA:NoSuchKU:nonsense")
	if _, err := r.Put("badtags", bad); err == nil {
		t.Error("unknown guideline tags must be rejected")
	}
	if _, ok := r.Get("badtags"); ok {
		t.Error("failed Put must not register anything")
	}
}

func TestDeleteProtectionAndRevisionContinuity(t *testing.T) {
	r := NewRegistry(nil)
	if err := r.Delete(DefaultID); !errors.Is(err, ErrProtected) {
		t.Errorf("Delete(default) = %v, want ErrProtected", err)
	}
	if err := r.Delete("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete(ghost) = %v, want ErrNotFound", err)
	}

	if _, err := r.Put("alt", miniCourses(t, 2)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := r.Delete("alt"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok := r.Get("alt"); ok {
		t.Error("deleted dataset still resolvable")
	}
	if r.Len() != 1 {
		t.Errorf("Len() = %d after delete, want 1", r.Len())
	}
	// Revision counters survive deletion: re-ingesting the same name
	// continues the sequence so old cache keys can never be reused.
	s, err := r.Put("alt", miniCourses(t, 1))
	if err != nil {
		t.Fatalf("re-Put after delete: %v", err)
	}
	if s.Revision() != 2 {
		t.Errorf("revision after delete+Put = %d, want 2", s.Revision())
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	// A repository saved by SaveJSON ingests unchanged as a Document.
	repo := materials.NewRepository(ontology.CS2013(), ontology.PDC12())
	for _, c := range miniCourses(t, 2) {
		if err := repo.AddCourse(c); err != nil {
			t.Fatalf("AddCourse: %v", err)
		}
	}
	var buf strings.Builder
	if err := repo.SaveJSON(&buf); err != nil {
		t.Fatalf("SaveJSON: %v", err)
	}
	var doc Document
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("unmarshal saved repository: %v", err)
	}
	r := NewRegistry(nil)
	s, err := r.Put("mini", doc.Courses)
	if err != nil {
		t.Fatalf("Put(saved document): %v", err)
	}
	if len(s.Repo().Courses()) != 2 {
		t.Errorf("round-tripped dataset has %d courses, want 2", len(s.Repo().Courses()))
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, doc Document) {
		t.Helper()
		raw, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("beta.json", Document{Courses: miniCourses(t, 1)})
	write("alpha.json", Document{Courses: miniCourses(t, 2)})
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(nil)
	loaded, err := r.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	// Lexical filename order, stems as IDs, non-JSON ignored.
	if len(loaded) != 2 || loaded[0] != "alpha" || loaded[1] != "beta" {
		t.Fatalf("loaded = %v", loaded)
	}
	if r.Len() != 3 {
		t.Errorf("Len() = %d, want default + 2", r.Len())
	}

	// A broken file aborts the load but keeps prior registrations.
	if err := os.WriteFile(filepath.Join(dir, "aaa.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry(nil)
	if _, err := r2.LoadDir(dir); err == nil {
		t.Fatal("invalid JSON must fail LoadDir")
	}

	if _, err := r.LoadDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing directory must error")
	}
}

// TestAttrsSurviveReingestAndDelete pins the ownership contract: attrs
// are set once, survive every re-ingest revision, survive Delete (so a
// deleted name cannot be silently claimed by another tenant), and
// compose into the catalog Meta without living inside the snapshot.
func TestAttrsSurviveReingestAndDelete(t *testing.T) {
	r := NewRegistry(nil)
	cs := miniCourses(t, 2)
	if _, err := r.Put("tenant", cs); err != nil {
		t.Fatal(err)
	}
	r.SetAttrs("tenant", Attrs{Owner: "alice", CacheBudget: 9, Weight: 2})

	// Re-ingest twice: revisions advance, attrs stay.
	for want := uint64(2); want <= 3; want++ {
		snap, err := r.Put("tenant", cs)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Revision() != want {
			t.Fatalf("revision = %d, want %d", snap.Revision(), want)
		}
		if a := r.Attrs("tenant"); a.Owner != "alice" || a.CacheBudget != 9 || !stats.WithinTol(a.Weight, 2, 0) {
			t.Fatalf("attrs after re-ingest = %+v", a)
		}
	}
	m, ok := r.MetaOf("tenant")
	if !ok || m.Owner != "alice" || m.Revision != 3 {
		t.Fatalf("MetaOf = %+v, %v", m, ok)
	}
	var found bool
	for _, lm := range r.List() {
		if lm.ID == "tenant" {
			found = true
			if lm.Owner != "alice" {
				t.Fatalf("List meta owner = %q", lm.Owner)
			}
		}
	}
	if !found {
		t.Fatal("tenant missing from List")
	}

	if err := r.Delete("tenant"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.MetaOf("tenant"); ok {
		t.Fatal("deleted dataset still in catalog")
	}
	if a := r.Attrs("tenant"); a.Owner != "alice" {
		t.Fatalf("ownership lost on Delete: %+v", a)
	}
	// Re-creating the name continues under the original owner.
	snap, err := r.Put("tenant", cs)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Revision() != 4 {
		t.Fatalf("revision after re-create = %d, want 4", snap.Revision())
	}
	if m, _ := r.MetaOf("tenant"); m.Owner != "alice" {
		t.Fatalf("owner after re-create = %q, want alice", m.Owner)
	}
}

// TestSetOwnerLeavesOtherAttrs: SetOwner is a partial update.
func TestSetOwnerLeavesOtherAttrs(t *testing.T) {
	r := NewRegistry(nil)
	r.SetAttrs("d", Attrs{CacheBudget: 5})
	r.SetOwner("d", "bob")
	if a := r.Attrs("d"); a.Owner != "bob" || a.CacheBudget != 5 {
		t.Fatalf("attrs = %+v", a)
	}
}
