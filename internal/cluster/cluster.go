// Package cluster implements agglomerative hierarchical clustering of
// courses by curriculum-tag similarity — the complementary view to NNMF
// that the paper's future work asks for ("possibly identify more types of
// courses"). Where NNMF models courses as mixtures of types, the
// dendrogram shows discrete merge structure and does not require choosing
// k up front.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"csmaterials/internal/materials"
	"csmaterials/internal/stats"
)

// Linkage selects how the distance between merged clusters is computed.
type Linkage int

const (
	// Average linkage (UPGMA): mean pairwise distance.
	Average Linkage = iota
	// Single linkage: minimum pairwise distance.
	Single
	// Complete linkage: maximum pairwise distance.
	Complete
)

func (l Linkage) String() string {
	switch l {
	case Average:
		return "average"
	case Single:
		return "single"
	case Complete:
		return "complete"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Node is a dendrogram node: either a leaf (Course != nil) or a merge of
// two children at the recorded height (distance).
type Node struct {
	Course      *materials.Course
	Left, Right *Node
	// Height is the inter-cluster distance at which the merge happened
	// (0 for leaves).
	Height float64
	// Size is the number of leaves underneath.
	Size int
}

// IsLeaf reports whether the node wraps a single course.
func (n *Node) IsLeaf() bool { return n.Course != nil }

// Leaves returns the courses under the node, left to right.
func (n *Node) Leaves() []*materials.Course {
	if n.IsLeaf() {
		return []*materials.Course{n.Course}
	}
	return append(n.Left.Leaves(), n.Right.Leaves()...)
}

// Dendrogram is the result of a hierarchical clustering.
type Dendrogram struct {
	Root    *Node
	Linkage Linkage
}

// Build clusters the courses bottom-up using 1 − Jaccard(tag sets) as the
// distance. Ties break deterministically by course order.
func Build(courses []*materials.Course, linkage Linkage) (*Dendrogram, error) {
	if len(courses) < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 courses, got %d", len(courses))
	}
	n := len(courses)
	// Pairwise leaf distances.
	sets := make([]map[string]bool, n)
	for i, c := range courses {
		sets[i] = c.TagSet()
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i != j {
				dist[i][j] = 1 - stats.Jaccard(sets[i], sets[j])
			}
		}
	}

	// Active clusters; each remembers its leaf indices for linkage.
	type clusterState struct {
		node   *Node
		leaves []int
	}
	active := make([]*clusterState, n)
	for i, c := range courses {
		active[i] = &clusterState{node: &Node{Course: c, Size: 1}, leaves: []int{i}}
	}

	linkDist := func(a, b *clusterState) float64 {
		best := math.Inf(1)
		worst := math.Inf(-1)
		sum, cnt := 0.0, 0
		for _, i := range a.leaves {
			for _, j := range b.leaves {
				d := dist[i][j]
				sum += d
				cnt++
				if d < best {
					best = d
				}
				if d > worst {
					worst = d
				}
			}
		}
		switch linkage {
		case Single:
			return best
		case Complete:
			return worst
		default:
			return sum / float64(cnt)
		}
	}

	for len(active) > 1 {
		bi, bj, bd := 0, 1, math.Inf(1)
		for i := 0; i < len(active); i++ {
			for j := i + 1; j < len(active); j++ {
				if d := linkDist(active[i], active[j]); d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		merged := &clusterState{
			node: &Node{
				Left:   active[bi].node,
				Right:  active[bj].node,
				Height: bd,
				Size:   active[bi].node.Size + active[bj].node.Size,
			},
			leaves: append(append([]int(nil), active[bi].leaves...), active[bj].leaves...),
		}
		next := make([]*clusterState, 0, len(active)-1)
		for k, c := range active {
			if k != bi && k != bj {
				next = append(next, c)
			}
		}
		active = append(next, merged)
	}
	return &Dendrogram{Root: active[0].node, Linkage: linkage}, nil
}

// Cut returns the clusters obtained by cutting the dendrogram at the
// given height: the maximal subtrees whose merge height is below it. Each
// cluster is a list of courses; clusters are ordered by size descending.
func (d *Dendrogram) Cut(height float64) [][]*materials.Course {
	var out [][]*materials.Course
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() || n.Height <= height {
			out = append(out, n.Leaves())
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(d.Root)
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0].ID < out[j][0].ID
	})
	return out
}

// CutK cuts the dendrogram into exactly k clusters (the k−1 highest
// merges undone). k must be between 1 and the leaf count.
func (d *Dendrogram) CutK(k int) ([][]*materials.Course, error) {
	if k < 1 || k > d.Root.Size {
		return nil, fmt.Errorf("cluster: k=%d out of range 1..%d", k, d.Root.Size)
	}
	// Collect merge heights, cut just below the k-1-th largest.
	var heights []float64
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			return
		}
		heights = append(heights, n.Height)
		walk(n.Left)
		walk(n.Right)
	}
	walk(d.Root)
	sort.Sort(sort.Reverse(sort.Float64Slice(heights)))
	if k == 1 {
		return d.Cut(math.Inf(1)), nil
	}
	threshold := heights[k-2]
	// Cut strictly below the (k-1)-th largest merge height.
	return d.Cut(threshold - 1e-12), nil
}

// Render draws the dendrogram as indented text, merges annotated with
// their heights — a terminal-sized replacement for a dendrogram plot.
func (d *Dendrogram) Render() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		if n.IsLeaf() {
			fmt.Fprintf(&b, "%s- %s\n", indent, n.Course.ID)
			return
		}
		fmt.Fprintf(&b, "%s+ merge at %.3f (%d courses)\n", indent, n.Height, n.Size)
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	walk(d.Root, 0)
	return b.String()
}

// CopheneticDistance returns the height at which two courses first join
// the same cluster (their dendrogram distance), or an error for unknown
// IDs.
func (d *Dendrogram) CopheneticDistance(idA, idB string) (float64, error) {
	if idA == idB {
		return 0, nil
	}
	var find func(n *Node) *Node
	contains := func(n *Node, id string) bool {
		for _, c := range n.Leaves() {
			if c.ID == id {
				return true
			}
		}
		return false
	}
	find = func(n *Node) *Node {
		if n.IsLeaf() {
			return nil
		}
		if la := contains(n.Left, idA); la == contains(n.Left, idB) && la {
			return find(n.Left)
		}
		if ra := contains(n.Right, idA); ra == contains(n.Right, idB) && ra {
			return find(n.Right)
		}
		if contains(n, idA) && contains(n, idB) {
			return n
		}
		return nil
	}
	lca := find(d.Root)
	if lca == nil {
		return 0, fmt.Errorf("cluster: courses %q and %q not both in the dendrogram", idA, idB)
	}
	return lca.Height, nil
}
