package cluster

import (
	"math"
	"strings"
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/materials"
)

func mkCourse(id string, tags ...string) *materials.Course {
	ms := make([]*materials.Material, len(tags))
	for i, t := range tags {
		ms[i] = &materials.Material{ID: id + "-" + t, Title: t, Type: materials.Lecture, Tags: []string{t}}
	}
	return &materials.Course{ID: id, Name: id, Group: materials.GroupCS1, Materials: ms}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]*materials.Course{mkCourse("a", "x")}, Average); err == nil {
		t.Fatal("single course accepted")
	}
}

func TestTwoObviousGroups(t *testing.T) {
	courses := []*materials.Course{
		mkCourse("a1", "x", "y", "z"),
		mkCourse("a2", "x", "y", "w"),
		mkCourse("b1", "p", "q", "r"),
		mkCourse("b2", "p", "q", "s"),
	}
	for _, link := range []Linkage{Average, Single, Complete} {
		d, err := Build(courses, link)
		if err != nil {
			t.Fatal(err)
		}
		clusters, err := d.CutK(2)
		if err != nil {
			t.Fatal(err)
		}
		if len(clusters) != 2 {
			t.Fatalf("%v: %d clusters", link, len(clusters))
		}
		for _, cl := range clusters {
			if len(cl) != 2 {
				t.Fatalf("%v: cluster sizes wrong", link)
			}
			prefix := cl[0].ID[:1]
			if cl[1].ID[:1] != prefix {
				t.Fatalf("%v: mixed cluster %s/%s", link, cl[0].ID, cl[1].ID)
			}
		}
	}
}

func TestDendrogramShape(t *testing.T) {
	courses := dataset.Courses()
	d, err := Build(courses, Average)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root.Size != len(courses) {
		t.Fatalf("root size %d", d.Root.Size)
	}
	leaves := d.Root.Leaves()
	if len(leaves) != len(courses) {
		t.Fatalf("%d leaves", len(leaves))
	}
	// Heights are within [0, 1] (Jaccard distances) and children merge no
	// higher than their parent under average linkage on this data.
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			return
		}
		if n.Height < 0 || n.Height > 1 {
			t.Fatalf("height %v out of range", n.Height)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(d.Root)
}

func TestCutKBounds(t *testing.T) {
	d, err := Build(dataset.Courses(), Average)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CutK(0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := d.CutK(99); err == nil {
		t.Error("oversized k accepted")
	}
	one, err := d.CutK(1)
	if err != nil || len(one) != 1 || len(one[0]) != 20 {
		t.Fatalf("CutK(1) = %d clusters, err %v", len(one), err)
	}
	all, err := d.CutK(20)
	if err != nil || len(all) != 20 {
		t.Fatalf("CutK(20) = %d clusters, err %v", len(all), err)
	}
	// Cluster counts are exactly k for every k.
	for k := 2; k <= 20; k++ {
		cl, err := d.CutK(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(cl) != k {
			t.Fatalf("CutK(%d) = %d clusters", k, len(cl))
		}
		total := 0
		for _, c := range cl {
			total += len(c)
		}
		if total != 20 {
			t.Fatalf("CutK(%d) covers %d courses", k, total)
		}
	}
}

// TestDatasetClustersMatchPaperFamilies: cutting the full dendrogram into
// a handful of clusters must keep the three PDC courses together and the
// two SoftEng courses together — the same families Figure 2 separates.
func TestDatasetClustersMatchPaperFamilies(t *testing.T) {
	d, err := Build(dataset.Courses(), Average)
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := d.CutK(6)
	if err != nil {
		t.Fatal(err)
	}
	clusterOf := map[string]int{}
	for ci, cl := range clusters {
		for _, c := range cl {
			clusterOf[c.ID] = ci
		}
	}
	if clusterOf["uncc-3145-saule"] != clusterOf["knox-cs309-bunde"] ||
		clusterOf["uncc-3145-saule"] != clusterOf["lsu-csc1350-kundu"] {
		t.Error("PDC courses split across clusters")
	}
	if clusterOf["gsu-csc4350-levine"] != clusterOf["uncc-4155-payton"] {
		t.Error("SoftEng courses split across clusters")
	}
	if clusterOf["uncc-2214-krs"] != clusterOf["uncc-2214-saule"] {
		t.Error("the two 2214 sections split across clusters")
	}
	// PDC courses do not share a cluster with CS1 courses at this cut.
	if clusterOf["uncc-3145-saule"] == clusterOf["ccc-csci40-kerney"] {
		t.Error("PDC and CS1 merged at k=6")
	}
}

func TestCopheneticDistance(t *testing.T) {
	d, err := Build(dataset.Courses(), Average)
	if err != nil {
		t.Fatal(err)
	}
	same, err := d.CopheneticDistance("uncc-2214-krs", "uncc-2214-krs")
	if err != nil || same != 0 {
		t.Fatalf("self distance = %v, %v", same, err)
	}
	within, err := d.CopheneticDistance("uncc-3145-saule", "knox-cs309-bunde")
	if err != nil {
		t.Fatal(err)
	}
	across, err := d.CopheneticDistance("uncc-3145-saule", "utsa-bopana")
	if err != nil {
		t.Fatal(err)
	}
	if within >= across {
		t.Fatalf("PDC pair cophenetic %v not below cross-family %v", within, across)
	}
	if _, err := d.CopheneticDistance("ghost", "utsa-bopana"); err == nil {
		t.Fatal("unknown course accepted")
	}
}

func TestRender(t *testing.T) {
	d, err := Build(dataset.CoursesByID(dataset.PDCCourseIDs()), Average)
	if err != nil {
		t.Fatal(err)
	}
	out := d.Render()
	for _, id := range dataset.PDCCourseIDs() {
		if !strings.Contains(out, id) {
			t.Fatalf("render missing %s:\n%s", id, out)
		}
	}
	if !strings.Contains(out, "merge at") {
		t.Fatal("render missing merge annotations")
	}
}

func TestLinkageString(t *testing.T) {
	if Average.String() != "average" || Single.String() != "single" || Complete.String() != "complete" {
		t.Fatal("linkage strings wrong")
	}
	if Linkage(9).String() == "" {
		t.Fatal("out-of-range linkage string empty")
	}
}

func TestSingleVsCompleteDiffer(t *testing.T) {
	// A chain of courses: single linkage chains them together at low
	// heights; complete linkage merges late.
	courses := []*materials.Course{
		mkCourse("c1", "a", "b"),
		mkCourse("c2", "b", "c"),
		mkCourse("c3", "c", "d"),
		mkCourse("c4", "d", "e"),
	}
	s, err := Build(courses, Single)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(courses, Complete)
	if err != nil {
		t.Fatal(err)
	}
	if !(s.Root.Height < c.Root.Height) && math.Abs(s.Root.Height-c.Root.Height) > 1e-12 {
		t.Fatalf("single root %v should be below complete root %v", s.Root.Height, c.Root.Height)
	}
}
