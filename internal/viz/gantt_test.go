package viz

import (
	"strings"
	"testing"

	"csmaterials/internal/bicluster"
	"csmaterials/internal/matrix"
	"csmaterials/internal/taskgraph"
)

func testSchedule(t *testing.T) *taskgraph.Schedule {
	t.Helper()
	g := taskgraph.ForkJoin(4)
	s, err := taskgraph.ListSchedule(g, 2, taskgraph.FIFO)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestASCIIGantt(t *testing.T) {
	s := testSchedule(t)
	out := ASCIIGantt(s, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + one lane per machine + axis.
	if len(lines) != 1+2+1 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "makespan") {
		t.Fatal("missing makespan header")
	}
	// Fork 'f' and join 'j' appear; body tasks 'b' appear in both lanes.
	body := lines[1] + lines[2]
	for _, ch := range []string{"f", "j", "b"} {
		if !strings.Contains(body, ch) {
			t.Fatalf("gantt missing task %q:\n%s", ch, out)
		}
	}
}

func TestASCIIGanttEmpty(t *testing.T) {
	s := &taskgraph.Schedule{}
	if got := ASCIIGantt(s, 10); got != "(empty schedule)\n" {
		t.Fatalf("empty gantt = %q", got)
	}
}

func TestSVGGantt(t *testing.T) {
	s := testSchedule(t)
	svg := SVGGantt(s, "fork-join on 2 machines")
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG")
	}
	// One rect per task.
	if got := strings.Count(svg, "<rect"); got != 6 {
		t.Fatalf("rects = %d, want 6", got)
	}
}

func TestASCIIMatrixView(t *testing.T) {
	// Two interleaved blocks.
	a := matrix.New(4, 6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			if i%2 == j%2 {
				a.Set(i, j, 1)
			}
		}
	}
	res, err := bicluster.Cluster(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := ASCIIMatrixView(a, res.RowOrder, res.ColOrder, res.RowBlock,
		[]string{"m0", "m1", "m2", "m3"}, 6)
	if !strings.Contains(out, "#") {
		t.Fatal("matrix view empty")
	}
	// Block separator drawn once between the two blocks.
	if strings.Count(out, "+---") != 1 {
		t.Fatalf("expected one block separator:\n%s", out)
	}
	// After biclustering the first two displayed rows are identical
	// patterns (same block).
	lines := strings.Split(out, "\n")
	p0 := lines[0][strings.Index(lines[0], "|"):]
	p1 := lines[1][strings.Index(lines[1], "|"):]
	if p0 != p1 {
		t.Fatalf("rows of the same block differ:\n%s", out)
	}
}
