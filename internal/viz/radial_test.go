package viz

import (
	"strings"
	"testing"

	"csmaterials/internal/ontology"
)

// TestLayoutDeterministic pins the determinism contract (DESIGN §8) for
// the radial layout: identical input trees must produce identical polar
// coordinates, because the workshop figures diff these artifacts
// run-to-run.
func TestLayoutDeterministic(t *testing.T) {
	a := Layout(ontology.CS2013())
	b := Layout(ontology.CS2013())
	if a.RefLevel != b.RefLevel || a.MaxDepth != b.MaxDepth {
		t.Fatalf("layout shape differs: ref %d/%d, depth %d/%d", a.RefLevel, b.RefLevel, a.MaxDepth, b.MaxDepth)
	}
	if len(a.Angle) != len(b.Angle) {
		t.Fatalf("angle map sizes differ: %d vs %d", len(a.Angle), len(b.Angle))
	}
	for id, ang := range a.Angle {
		if b.Angle[id] != ang { // lint:exact — identical runs must place nodes bit-identically
			t.Fatalf("angle for %s differs between identical runs: %v vs %v", id, ang, b.Angle[id])
		}
	}
	for id, d := range a.Depth {
		if b.Depth[id] != d {
			t.Fatalf("depth for %s differs between identical runs: %d vs %d", id, d, b.Depth[id])
		}
	}
}

func TestLayoutCoversEveryNode(t *testing.T) {
	g := ontology.CS2013()
	l := Layout(g)
	g.Walk(func(n *ontology.Node) bool {
		if n.Kind == ontology.KindRoot {
			return true
		}
		if _, ok := l.Angle[n.ID]; !ok {
			t.Errorf("node %s has no angle", n.ID)
		}
		if _, ok := l.Depth[n.ID]; !ok {
			t.Errorf("node %s has no depth", n.ID)
		}
		return true
	})
	if l.RefLevel < 1 || l.RefLevel > l.MaxDepth {
		t.Fatalf("reference level %d outside 1..%d", l.RefLevel, l.MaxDepth)
	}
}

func TestSVGRadialTreeDeterministic(t *testing.T) {
	g := ontology.PDC12()
	counts := map[string]int{}
	align := map[string]float64{}
	for i, n := range g.Leaves() {
		counts[n.ID] = i % 7
		align[n.ID] = float64(i%5-2) / 2
	}
	opts := RadialOptions{Counts: counts, Alignment: align, LabelAreas: true}
	first := SVGRadialTree(g, opts)
	for i := 0; i < 3; i++ {
		if got := SVGRadialTree(g, opts); got != first {
			t.Fatalf("render %d differs from first render of identical input", i+1)
		}
	}
}

func TestSVGRadialTreeShape(t *testing.T) {
	g := ontology.PDC12()
	svg := SVGRadialTree(g, RadialOptions{Size: 320})
	if !strings.HasPrefix(svg, `<svg xmlns="http://www.w3.org/2000/svg" width="320" height="320">`) {
		t.Fatalf("unexpected SVG header: %.80s", svg)
	}
	if !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatal("SVG not closed")
	}
	if !strings.Contains(svg, `fill="#cc2222"`) {
		t.Fatal("root marker missing")
	}
	// One circle per non-root node, plus the root marker.
	want := g.Len() + 1
	if got := strings.Count(svg, "<circle "); got != want {
		t.Fatalf("got %d circles, want %d", got, want)
	}
	// Default size applies when unset.
	if !strings.Contains(SVGRadialTree(g, RadialOptions{}), `width="640"`) {
		t.Fatal("default size not applied")
	}
}
