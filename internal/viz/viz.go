// Package viz renders the repository's analysis artifacts the way the
// paper's figures do: W/H matrix heat maps (Figures 2, 5, 7), radial
// hit-trees over the curriculum ontology (Figures 4, 6, 8), and
// tag-agreement series plots (Figure 3). Every visualization has an SVG
// form for files and an ASCII form for terminals; both are deterministic.
package viz

import (
	"fmt"
	"math"
	"strings"

	"csmaterials/internal/matrix"
)

// asciiShades maps intensity 0..1 to characters of increasing density.
const asciiShades = " .:-=+*#%@"

// ASCIIHeatmap renders a matrix as text, one character per cell, scaled
// to the matrix maximum. Row labels are truncated to labelWidth.
func ASCIIHeatmap(m *matrix.Dense, rowLabels []string, labelWidth int) string {
	if labelWidth <= 0 {
		labelWidth = 24
	}
	max := m.MaxAbs()
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	for i := 0; i < m.Rows(); i++ {
		label := ""
		if i < len(rowLabels) {
			label = rowLabels[i]
		}
		fmt.Fprintf(&b, "%-*s |", labelWidth, truncate(label, labelWidth))
		for _, v := range m.RowView(i) {
			b.WriteByte(shade(v / max))
		}
		b.WriteString("|\n")
	}
	return b.String()
}

func shade(x float64) byte {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	idx := int(x * float64(len(asciiShades)-1))
	return asciiShades[idx]
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}

// SVGHeatmap renders a matrix as an SVG heat map with a white→blue scale
// and row labels, mirroring the W-matrix panels of Figures 2, 5a and 7a.
func SVGHeatmap(m *matrix.Dense, rowLabels, colLabels []string, title string) string {
	const cell = 18
	const labelW = 260
	const topH = 40
	rows, cols := m.Dims()
	w := labelW + cols*cell + 20
	h := topH + rows*cell + 40
	max := m.MaxAbs()
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="10" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n", escape(title))
	for i := 0; i < rows; i++ {
		y := topH + i*cell
		label := ""
		if i < len(rowLabels) {
			label = rowLabels[i]
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			labelW-6, y+cell-5, escape(truncate(label, 44)))
		for j := 0; j < cols; j++ {
			v := m.At(i, j) / max
			if v < 0 {
				v = 0
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#ccc"/>`+"\n",
				labelW+j*cell, y, cell, cell, blueScale(v))
		}
	}
	for j := 0; j < cols && j < len(colLabels); j++ {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="9" text-anchor="middle">%s</text>`+"\n",
			labelW+j*cell+cell/2, topH+rows*cell+14, escape(truncate(colLabels[j], 10)))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// blueScale maps 0..1 to a white→dark-blue hex color.
func blueScale(v float64) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	r := int(255 - 205*v)
	g := int(255 - 175*v)
	bl := int(255 - 75*v)
	return fmt.Sprintf("#%02x%02x%02x", r, g, bl)
}

// divergingScale maps -1..1 to a red→white→blue color (the alignment
// scale of the radial view: mid-range means fully aligned).
func divergingScale(v float64) string {
	if v < -1 {
		v = -1
	}
	if v > 1 {
		v = 1
	}
	if v < 0 {
		t := -v
		return fmt.Sprintf("#%02x%02x%02x", 255, int(255-180*t), int(255-180*t))
	}
	t := v
	return fmt.Sprintf("#%02x%02x%02x", int(255-180*t), int(255-180*t), 255)
}

// ASCIISeries renders a Figure-3-style descending series as a text
// column chart with the given height in rows.
func ASCIISeries(series []int, height int) string {
	if len(series) == 0 {
		return "(empty series)\n"
	}
	if height <= 0 {
		height = 8
	}
	max := series[0]
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	// Downsample to at most 100 columns.
	cols := len(series)
	step := 1
	if cols > 100 {
		step = (cols + 99) / 100
		cols = (len(series) + step - 1) / step
	}
	var b strings.Builder
	for row := height; row >= 1; row-- {
		threshold := float64(row) / float64(height) * float64(max)
		fmt.Fprintf(&b, "%4d |", int(math.Ceil(threshold)))
		for c := 0; c < cols; c++ {
			v := series[c*step]
			if float64(v) >= threshold {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "     +%s\n", strings.Repeat("-", cols))
	fmt.Fprintf(&b, "      tags 1..%d (sorted by agreement, %d per column)\n", len(series), step)
	return b.String()
}

// SVGSeries renders the Figure 3 plot: x = tag index, y = number of
// courses the tag appears in.
func SVGSeries(series []int, title, xLabel, yLabel string) string {
	const w, h = 520, 300
	const mLeft, mBottom, mTop, mRight = 50, 40, 30, 10
	plotW := w - mLeft - mRight
	plotH := h - mTop - mBottom
	maxY := 1
	for _, v := range series {
		if v > maxY {
			maxY = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-family="sans-serif" font-size="13" font-weight="bold">%s</text>`+"\n", mLeft, escape(title))
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", mLeft, mTop, mLeft, mTop+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", mLeft, mTop+plotH, mLeft+plotW, mTop+plotH)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n", mLeft+plotW/2, h-8, escape(xLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" font-family="sans-serif" font-size="10" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n", mTop+plotH/2, mTop+plotH/2, escape(yLabel))
	// Y ticks at integers.
	for y := 0; y <= maxY; y++ {
		py := mTop + plotH - y*plotH/maxY
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="9" text-anchor="end">%d</text>`+"\n", mLeft-4, py+3, y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#eee"/>`+"\n", mLeft, py, mLeft+plotW, py)
	}
	// Points.
	n := len(series)
	if n > 0 {
		var pts []string
		for i, v := range series {
			px := mLeft
			if n > 1 {
				px = mLeft + i*plotW/(n-1)
			}
			py := mTop + plotH - v*plotH/maxY
			pts = append(pts, fmt.Sprintf("%d,%d", px, py))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#1f5fbf" stroke-width="1.5"/>`+"\n", strings.Join(pts, " "))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
