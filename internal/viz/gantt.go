package viz

import (
	"fmt"
	"sort"
	"strings"

	"csmaterials/internal/matrix"
	"csmaterials/internal/taskgraph"
)

// ASCIIGantt renders a list schedule as a per-machine timeline, one row
// per machine, time flowing right, each task drawn as its first letter
// repeated over its duration. Width is the number of character columns
// for the full makespan (default 72).
func ASCIIGantt(s *taskgraph.Schedule, width int) string {
	if width <= 0 {
		width = 72
	}
	if s.Makespan == 0 || len(s.Slots) == 0 {
		return "(empty schedule)\n"
	}
	scale := float64(width) / s.Makespan

	rows := make([][]byte, s.Machines)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	// Deterministic paint order.
	ids := make([]string, 0, len(s.Slots))
	for id := range s.Slots {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		slot := s.Slots[id]
		from := int(slot.Start * scale)
		to := int(slot.End * scale)
		if to > width {
			to = width
		}
		if to == from && from < width {
			to = from + 1
		}
		ch := id[0]
		for x := from; x < to; x++ {
			rows[slot.Machine][x] = ch
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.2f on %d machines (%s priority)\n", s.Makespan, s.Machines, s.Policy)
	for m, row := range rows {
		fmt.Fprintf(&b, "m%-2d |%s|\n", m, row)
	}
	fmt.Fprintf(&b, "    0%s%.1f\n", strings.Repeat(" ", width-6), s.Makespan)
	return b.String()
}

// SVGGantt renders the schedule as an SVG timeline with one lane per
// machine and labeled task bars.
func SVGGantt(s *taskgraph.Schedule, title string) string {
	const laneH = 26
	const leftW = 46
	const plotW = 640
	h := 50 + s.Machines*laneH
	scale := plotW / s.Makespan
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", leftW+plotW+20, h)
	fmt.Fprintf(&b, `<text x="8" y="18" font-family="sans-serif" font-size="13" font-weight="bold">%s</text>`+"\n", escape(title))
	for m := 0; m < s.Machines; m++ {
		y := 32 + m*laneH
		fmt.Fprintf(&b, `<text x="8" y="%d" font-family="sans-serif" font-size="10">m%d</text>`+"\n", y+laneH/2+3, m)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n", leftW, y+laneH, leftW+plotW, y+laneH)
	}
	ids := make([]string, 0, len(s.Slots))
	for id := range s.Slots {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	palette := []string{"#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2", "#eeca3b"}
	for i, id := range ids {
		slot := s.Slots[id]
		x := leftW + slot.Start*scale
		w := (slot.End - slot.Start) * scale
		y := 32 + slot.Machine*laneH
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="#333" stroke-width="0.5"/>`+"\n",
			x, y+3, w, laneH-6, palette[i%len(palette)])
		if w > 28 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="9" fill="white">%s</text>`+"\n",
				x+3, y+laneH/2+3, escape(truncate(id, int(w/7))))
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// ASCIIMatrixView renders the biclustered material × tag matrix view of
// §3.1.1: rows are materials, columns are tags, both in the biclustered
// order, with block boundaries marked.
func ASCIIMatrixView(a *matrix.Dense, rowOrder, colOrder []int, rowBlocks []int, rowLabels []string, labelWidth int) string {
	if labelWidth <= 0 {
		labelWidth = 20
	}
	var b strings.Builder
	prevBlock := -1
	for _, i := range rowOrder {
		if rowBlocks != nil && rowBlocks[i] != prevBlock {
			if prevBlock != -1 {
				fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", len(colOrder)))
			}
			prevBlock = rowBlocks[i]
		}
		label := ""
		if i < len(rowLabels) {
			label = rowLabels[i]
		}
		fmt.Fprintf(&b, "%-*s |", labelWidth, truncate(label, labelWidth))
		for _, j := range colOrder {
			if a.At(i, j) > 0 {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}
