package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"csmaterials/internal/ontology"
)

// RadialOptions configures the radial hit-tree rendering of §3.1.1.
type RadialOptions struct {
	// Counts sizes each node by the number of materials classified
	// against it (nil means uniform sizes).
	Counts map[string]int
	// Alignment colors nodes on a divergent scale in [-1, 1]: -1 means
	// the entry is only in the left material set, +1 only in the right,
	// 0 fully aligned. Nil means uniform coloring.
	Alignment map[string]float64
	// LabelAreas writes the knowledge-area names next to the first-level
	// nodes, as Figure 4 does.
	LabelAreas bool
	// Size is the SVG width and height in pixels (default 640).
	Size int
}

// RadialLayout places every node of a guideline tree on concentric
// circles: the root at the center, each depth at a fixed radius. The
// level with the most nodes (the "reference level" of §3.1.1) is spaced
// uniformly; other levels inherit angles from their descendants (mean of
// children) or, for nodes below the reference level without that
// anchoring, from their parent ordering.
type RadialLayout struct {
	// Pos maps node ID to its (angle, radius) in polar coordinates;
	// radius is the depth (0 = root).
	Angle map[string]float64
	Depth map[string]int
	// RefLevel is the depth chosen as the reference level.
	RefLevel int
	// MaxDepth is the deepest level present.
	MaxDepth int
}

// Layout computes the radial layout for a guideline tree.
func Layout(g *ontology.Guideline) *RadialLayout {
	l := &RadialLayout{Angle: map[string]float64{}, Depth: map[string]int{}}

	// Find the level with the most nodes.
	levelNodes := map[int][]*ontology.Node{}
	g.Walk(func(n *ontology.Node) bool {
		d := ontology.Depth(n)
		l.Depth[n.ID] = d
		if d > l.MaxDepth {
			l.MaxDepth = d
		}
		if n.Kind != ontology.KindRoot {
			levelNodes[d] = append(levelNodes[d], n)
		}
		return true
	})
	best, bestCount := 1, -1
	depths := make([]int, 0, len(levelNodes))
	for d := range levelNodes {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	for _, d := range depths {
		if len(levelNodes[d]) > bestCount {
			best, bestCount = d, len(levelNodes[d])
		}
	}
	l.RefLevel = best

	// Order the reference level by a depth-first traversal so subtrees
	// stay angularly contiguous, then space uniformly.
	var refOrder []*ontology.Node
	g.Walk(func(n *ontology.Node) bool {
		if l.Depth[n.ID] == best && n.Kind != ontology.KindRoot {
			refOrder = append(refOrder, n)
		}
		return true
	})
	for i, n := range refOrder {
		l.Angle[n.ID] = 2 * math.Pi * float64(i) / float64(len(refOrder))
	}

	// Nodes above the reference level: mean angle of their children
	// (bottom-up). Nodes below: inherit the nearest positioned ancestor's
	// angle with a small deterministic fan-out.
	var fix func(n *ontology.Node) (float64, bool)
	fix = func(n *ontology.Node) (float64, bool) {
		if a, ok := l.Angle[n.ID]; ok {
			// Still descend so deeper nodes get placed.
			placeDescendants(l, n)
			return a, true
		}
		var sum float64
		var cnt int
		for _, c := range n.Children {
			if a, ok := fix(c); ok {
				sum += a
				cnt++
			}
		}
		if cnt == 0 {
			return 0, false
		}
		a := sum / float64(cnt)
		if n.Kind != ontology.KindRoot {
			l.Angle[n.ID] = a
		}
		return a, true
	}
	fix(g.Root)
	return l
}

// placeDescendants assigns angles to nodes strictly below an anchored
// node by fanning them around the anchor's angle.
func placeDescendants(l *RadialLayout, n *ontology.Node) {
	base := l.Angle[n.ID]
	var leaves []*ontology.Node
	var collect func(m *ontology.Node)
	collect = func(m *ontology.Node) {
		for _, c := range m.Children {
			leaves = append(leaves, c)
			collect(c)
		}
	}
	collect(n)
	if len(leaves) == 0 {
		return
	}
	spread := math.Pi / 64
	for i, c := range leaves {
		if _, done := l.Angle[c.ID]; done {
			continue
		}
		offset := (float64(i) - float64(len(leaves)-1)/2) * spread / float64(len(leaves))
		l.Angle[c.ID] = base + offset
	}
}

// SVGRadialTree renders the hit-tree: nodes on concentric circles, edges
// to parents, node area scaled by material counts, and an optional
// divergent alignment coloring. The root is drawn in red, as in the
// paper's figures.
func SVGRadialTree(g *ontology.Guideline, opts RadialOptions) string {
	size := opts.Size
	if size <= 0 {
		size = 640
	}
	l := Layout(g)
	center := float64(size) / 2
	ringGap := (center - 40) / math.Max(float64(l.MaxDepth), 1)

	pos := func(id string) (float64, float64) {
		a := l.Angle[id]
		r := float64(l.Depth[id]) * ringGap
		return center + r*math.Cos(a), center + r*math.Sin(a)
	}

	maxCount := 1
	for _, c := range opts.Counts {
		if c > maxCount {
			maxCount = c
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", size, size)
	// Edges first.
	g.Walk(func(n *ontology.Node) bool {
		if n.Kind == ontology.KindRoot || n.Parent == nil {
			return true
		}
		x1, y1 := pos(n.ID)
		var x2, y2 float64
		if n.Parent.Kind == ontology.KindRoot {
			x2, y2 = center, center
		} else {
			x2, y2 = pos(n.Parent.ID)
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#bbb" stroke-width="0.6"/>`+"\n", x1, y1, x2, y2)
		return true
	})
	// Root in red.
	fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="6" fill="#cc2222"/>`+"\n", center, center)
	// Nodes.
	g.Walk(func(n *ontology.Node) bool {
		if n.Kind == ontology.KindRoot {
			return true
		}
		x, y := pos(n.ID)
		r := 2.5
		if opts.Counts != nil {
			r = 2 + 4*math.Sqrt(float64(opts.Counts[n.ID])/float64(maxCount))
		}
		fill := "#336699"
		if opts.Alignment != nil {
			if v, ok := opts.Alignment[n.ID]; ok {
				fill = divergingScale(v)
			}
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="#333" stroke-width="0.4"/>`+"\n", x, y, r, fill)
		if opts.LabelAreas && n.Kind == ontology.KindArea {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" font-weight="bold">%s</text>`+"\n", x+6, y-4, escape(n.ID))
		}
		return true
	})
	b.WriteString("</svg>\n")
	return b.String()
}
