package viz

import (
	"strings"
	"testing"

	"csmaterials/internal/agreement"
	"csmaterials/internal/dataset"
	"csmaterials/internal/matrix"
	"csmaterials/internal/ontology"
)

func TestASCIIHeatmapShape(t *testing.T) {
	m := matrix.NewFromRows([][]float64{{0, 0.5, 1}, {1, 0, 0}})
	out := ASCIIHeatmap(m, []string{"row-a", "row-b"}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("heatmap lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "row-a") {
		t.Fatal("row label missing")
	}
	// Max value renders as the densest shade, zero as space.
	if !strings.Contains(lines[0], "@") {
		t.Fatalf("max cell not dense: %q", lines[0])
	}
}

func TestASCIIHeatmapZeroMatrix(t *testing.T) {
	out := ASCIIHeatmap(matrix.New(2, 3), nil, 0)
	if !strings.Contains(out, "|   |") {
		t.Fatalf("zero matrix should render blank cells: %q", out)
	}
}

func TestTruncate(t *testing.T) {
	if got := truncate("abcdef", 4); got != "abc…" {
		t.Fatalf("truncate = %q", got)
	}
	if got := truncate("ab", 4); got != "ab" {
		t.Fatalf("truncate = %q", got)
	}
}

func TestSVGHeatmapWellFormed(t *testing.T) {
	m := matrix.NewFromRows([][]float64{{0, 1}, {0.5, 0.2}})
	svg := SVGHeatmap(m, []string{"a", "b"}, []string{"t1", "t2"}, "Figure 2 <test>")
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(svg, "<rect") != 4 {
		t.Fatalf("expected 4 cells, got %d", strings.Count(svg, "<rect"))
	}
	if strings.Contains(svg, "<test>") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "&lt;test&gt;") {
		t.Fatal("escaped title missing")
	}
}

func TestBlueScaleEndpoints(t *testing.T) {
	if blueScale(0) != "#ffffff" {
		t.Fatalf("blueScale(0) = %s", blueScale(0))
	}
	if blueScale(1) != "#3250b4" {
		t.Fatalf("blueScale(1) = %s", blueScale(1))
	}
	if blueScale(-5) != blueScale(0) || blueScale(5) != blueScale(1) {
		t.Fatal("blueScale must clamp")
	}
}

func TestDivergingScale(t *testing.T) {
	if divergingScale(0) != "#ffffff" {
		t.Fatalf("center = %s", divergingScale(0))
	}
	left, right := divergingScale(-1), divergingScale(1)
	if left == right {
		t.Fatal("diverging endpoints identical")
	}
	if !strings.HasPrefix(left, "#ff") {
		t.Fatalf("negative side should be red-ish: %s", left)
	}
}

func TestASCIISeries(t *testing.T) {
	out := ASCIISeries([]int{5, 4, 3, 2, 1, 1, 1}, 5)
	if !strings.Contains(out, "#") {
		t.Fatal("series has no bars")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 6 {
		t.Fatalf("series too short: %d lines", len(lines))
	}
	if ASCIISeries(nil, 5) != "(empty series)\n" {
		t.Fatal("empty series not handled")
	}
}

func TestASCIISeriesDownsamples(t *testing.T) {
	big := make([]int, 500)
	for i := range big {
		big[i] = 500 - i
	}
	out := ASCIISeries(big, 6)
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 130 {
			t.Fatalf("line too long (%d): downsampling failed", len(line))
		}
	}
}

func TestSVGSeriesWellFormed(t *testing.T) {
	svg := SVGSeries([]int{4, 3, 2, 1}, "Fig 3a", "Tags", "Courses")
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("series line missing")
	}
	if !strings.Contains(svg, "Fig 3a") {
		t.Fatal("title missing")
	}
}

func TestLayoutReferenceLevelUniform(t *testing.T) {
	g := ontology.CS2013()
	l := Layout(g)
	if l.RefLevel < 1 || l.RefLevel > l.MaxDepth {
		t.Fatalf("RefLevel = %d", l.RefLevel)
	}
	// Every node must have an angle and a depth.
	g.Walk(func(n *ontology.Node) bool {
		if n.Kind == ontology.KindRoot {
			return true
		}
		if _, ok := l.Angle[n.ID]; !ok {
			t.Fatalf("node %q has no angle", n.ID)
		}
		return true
	})
	// Reference-level nodes are uniformly spaced: collect and check gaps.
	var refIDs []string
	g.Walk(func(n *ontology.Node) bool {
		if n.Kind != ontology.KindRoot && l.Depth[n.ID] == l.RefLevel {
			refIDs = append(refIDs, n.ID)
		}
		return true
	})
	if len(refIDs) < 10 {
		t.Fatalf("reference level suspiciously small: %d", len(refIDs))
	}
	want := 2 * 3.14159265 / float64(len(refIDs))
	angles := make([]float64, len(refIDs))
	for i, id := range refIDs {
		angles[i] = l.Angle[id]
	}
	// Angles were assigned in DFS order, so consecutive entries differ by
	// the uniform step.
	for i := 1; i < len(angles); i++ {
		gap := angles[i] - angles[i-1]
		if gap < want*0.99 || gap > want*1.01 {
			t.Fatalf("non-uniform gap %v at %d, want %v", gap, i, want)
		}
	}
}

func TestSVGRadialTreeOnAgreementTree(t *testing.T) {
	a, err := agreement.Analyze(dataset.CoursesByID(dataset.CS1CourseIDs()), ontology.CS2013())
	if err != nil {
		t.Fatal(err)
	}
	tree := a.Tree(ontology.CS2013(), 2)
	svg := SVGRadialTree(tree, RadialOptions{Counts: a.Counts, LabelAreas: true})
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	// Root is red; SDF label appears.
	if !strings.Contains(svg, "#cc2222") {
		t.Fatal("red root missing")
	}
	if !strings.Contains(svg, ">SDF</text>") {
		t.Fatal("knowledge-area label missing")
	}
	// One circle per node plus the root.
	nodes := tree.Len()
	if got := strings.Count(svg, "<circle"); got != nodes+1 {
		t.Fatalf("circles = %d, want %d", got, nodes+1)
	}
}

func TestSVGRadialTreeAlignmentColors(t *testing.T) {
	g := ontology.CS2013().Prune(func(n *ontology.Node) bool {
		return n.ID == "SDF/fundamental-programming-concepts/the-concept-of-recursion"
	})
	svg := SVGRadialTree(g, RadialOptions{Alignment: map[string]float64{
		"SDF/fundamental-programming-concepts/the-concept-of-recursion": -1,
	}})
	if !strings.Contains(svg, divergingScale(-1)) {
		t.Fatal("alignment color not applied")
	}
}
