// Package bicluster reorders a 0-1 material × tag matrix so that related
// material/tag blocks become visually contiguous — the bi-clustered
// matrix view of §3.1.1 that CS Materials uses for interactive
// classification editing.
//
// The implementation is spectral co-clustering in miniature: rows and
// columns are sorted by their coordinate on the leading singular
// direction pair of the normalized incidence matrix (Dhillon 2001), which
// groups rows and columns that co-occur. A k-block assignment is then
// derived by cutting the ordering into k contiguous groups balanced by
// mass.
package bicluster

import (
	"fmt"
	"math"
	"sort"

	"csmaterials/internal/matrix"
)

// Result holds a biclustering: permutations that make the matrix block
// structured and the block assignment of every row and column.
type Result struct {
	// RowOrder and ColOrder are permutations: RowOrder[0] is the index of
	// the input row that should be displayed first.
	RowOrder, ColOrder []int
	// RowBlock and ColBlock assign each input row/column to one of K
	// blocks.
	RowBlock, ColBlock []int
	// K is the number of blocks.
	K int
}

// Cluster biclusters a non-negative matrix into k blocks.
func Cluster(a *matrix.Dense, k int) (*Result, error) {
	rows, cols := a.Dims()
	if k <= 0 || k > rows || k > cols {
		return nil, fmt.Errorf("bicluster: k=%d out of range for %dx%d", k, rows, cols)
	}
	for i := 0; i < rows; i++ {
		for _, v := range a.RowView(i) {
			if v < 0 {
				return nil, fmt.Errorf("bicluster: negative entry %v", v)
			}
		}
	}

	// Normalize: An = D1^{-1/2} A D2^{-1/2}. Empty rows/columns get unit
	// scaling so they sort to one end rather than producing NaNs.
	rowSums := a.RowSums()
	colSums := a.ColSums()
	an := a.Apply(func(i, j int, v float64) float64 {
		ri, cj := rowSums[i], colSums[j]
		if ri == 0 || cj == 0 {
			return 0
		}
		return v / math.Sqrt(ri*cj)
	})

	// Second singular vector pair of An via the eigensystem of AnᵀAn
	// (skip the trivial leading pair).
	gram := an.MulAtB(an)
	_, vecs := matrix.TopEigenSym(gram, min(2, cols))
	colCoord := vecs.Col(vecs.Cols() - 1)
	// Row coordinates: project rows onto the chosen column vector.
	rowCoord := make([]float64, rows)
	for i := 0; i < rows; i++ {
		s := 0.0
		for j, v := range an.RowView(i) {
			s += v * colCoord[j]
		}
		rowCoord[i] = s
	}

	res := &Result{K: k}
	res.RowOrder = orderByCoord(rowCoord)
	res.ColOrder = orderByCoord(colCoord)
	res.RowBlock = blocksFromOrder(res.RowOrder, k)
	res.ColBlock = blocksFromOrder(res.ColOrder, k)
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func orderByCoord(coord []float64) []int {
	idx := make([]int, len(coord))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return coord[idx[a]] < coord[idx[b]] })
	return idx
}

// blocksFromOrder cuts an ordering into k contiguous, size-balanced
// groups and reports each element's group.
func blocksFromOrder(order []int, k int) []int {
	out := make([]int, len(order))
	n := len(order)
	for pos, idx := range order {
		b := pos * k / n
		if b >= k {
			b = k - 1
		}
		out[idx] = b
	}
	return out
}

// Permute returns a copy of a with rows and columns rearranged according
// to the result's orderings — the matrix as the view would display it.
func (r *Result) Permute(a *matrix.Dense) *matrix.Dense {
	rows, cols := a.Dims()
	if len(r.RowOrder) != rows || len(r.ColOrder) != cols {
		panic(fmt.Sprintf("bicluster: Permute shape mismatch %dx%d vs %dx%d", rows, cols, len(r.RowOrder), len(r.ColOrder)))
	}
	out := matrix.New(rows, cols)
	for i, src := range r.RowOrder {
		row := a.RowView(src)
		for j, srcCol := range r.ColOrder {
			out.Set(i, j, row[srcCol])
		}
	}
	return out
}

// BlockDensity returns, for each (row block, column block) pair, the mean
// value of a inside that block — high diagonal density indicates a good
// biclustering.
func (r *Result) BlockDensity(a *matrix.Dense) *matrix.Dense {
	sums := matrix.New(r.K, r.K)
	counts := matrix.New(r.K, r.K)
	rows, cols := a.Dims()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			rb, cb := r.RowBlock[i], r.ColBlock[j]
			sums.Set(rb, cb, sums.At(rb, cb)+a.At(i, j))
			counts.Set(rb, cb, counts.At(rb, cb)+1)
		}
	}
	return sums.Apply(func(i, j int, v float64) float64 {
		c := counts.At(i, j)
		if c == 0 {
			return 0
		}
		return v / c
	})
}

// DiagonalAdvantage quantifies biclustering quality: mean density of the
// diagonal blocks minus mean density off-diagonal. Positive values mean
// the blocks capture real co-occurrence structure.
func (r *Result) DiagonalAdvantage(a *matrix.Dense) float64 {
	d := r.BlockDensity(a)
	var diag, off float64
	var nd, no int
	for i := 0; i < r.K; i++ {
		for j := 0; j < r.K; j++ {
			if i == j {
				diag += d.At(i, j)
				nd++
			} else {
				off += d.At(i, j)
				no++
			}
		}
	}
	if nd > 0 {
		diag /= float64(nd)
	}
	if no > 0 {
		off /= float64(no)
	}
	return diag - off
}
