package bicluster

import (
	"math/rand"
	"testing"

	"csmaterials/internal/matrix"
)

// blockMatrix builds a 0-1 matrix with two disjoint blocks, rows and
// columns interleaved so that the input order hides the structure.
func interleavedBlocks(rowsPerBlock, colsPerBlock int) *matrix.Dense {
	rows := rowsPerBlock * 2
	cols := colsPerBlock * 2
	a := matrix.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			// Even rows/cols belong to block 0, odd to block 1.
			if i%2 == j%2 {
				a.Set(i, j, 1)
			}
		}
	}
	return a
}

func TestClusterValidation(t *testing.T) {
	a := interleavedBlocks(3, 3)
	if _, err := Cluster(a, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Cluster(a, 100); err == nil {
		t.Error("huge k accepted")
	}
	neg := a.Clone()
	neg.Set(0, 0, -1)
	if _, err := Cluster(neg, 2); err == nil {
		t.Error("negative entry accepted")
	}
}

func TestClusterRecoversInterleavedBlocks(t *testing.T) {
	a := interleavedBlocks(4, 5)
	res, err := Cluster(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	// All even rows must share a block, all odd rows the other.
	if res.RowBlock[0] == res.RowBlock[1] {
		t.Fatalf("interleaved rows not separated: %v", res.RowBlock)
	}
	for i := 2; i < len(res.RowBlock); i++ {
		if res.RowBlock[i] != res.RowBlock[i%2] {
			t.Fatalf("row %d in wrong block: %v", i, res.RowBlock)
		}
	}
	for j := 2; j < len(res.ColBlock); j++ {
		if res.ColBlock[j] != res.ColBlock[j%2] {
			t.Fatalf("col %d in wrong block: %v", j, res.ColBlock)
		}
	}
	// The diagonal blocks must be denser than the off-diagonal ones.
	if adv := res.DiagonalAdvantage(a); adv <= 0.5 {
		t.Fatalf("diagonal advantage %v too small for perfect blocks", adv)
	}
}

func TestPermuteMakesBlocksContiguous(t *testing.T) {
	a := interleavedBlocks(3, 4)
	res, err := Cluster(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Permute(a)
	// After permutation the first half of rows and columns forms one
	// solid block: the top-left and bottom-right quadrants are all ones
	// (or the anti-diagonal ones, depending on sort direction).
	rows, cols := p.Dims()
	q := func(r0, r1, c0, c1 int) float64 {
		s, n := 0.0, 0
		for i := r0; i < r1; i++ {
			for j := c0; j < c1; j++ {
				s += p.At(i, j)
				n++
			}
		}
		return s / float64(n)
	}
	tl := q(0, rows/2, 0, cols/2)
	br := q(rows/2, rows, cols/2, cols)
	tr := q(0, rows/2, cols/2, cols)
	bl := q(rows/2, rows, 0, cols/2)
	diag := (tl + br) / 2
	anti := (tr + bl) / 2
	if diag != 1 && anti != 1 { // lint:exact — a perfect checkerboard scores exactly 1
		t.Fatalf("permuted matrix not block-diagonal: tl=%v br=%v tr=%v bl=%v", tl, br, tr, bl)
	}
}

func TestPermuteShapeMismatchPanics(t *testing.T) {
	a := interleavedBlocks(3, 3)
	res, err := Cluster(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	res.Permute(matrix.New(2, 2))
}

func TestOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := matrix.Random(15, 25, rng)
	res, err := Cluster(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkPerm := func(p []int, n int) {
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
	}
	checkPerm(res.RowOrder, 15)
	checkPerm(res.ColOrder, 25)
	// Block assignments are within range and contiguous along the order.
	prev := -1
	for _, idx := range res.RowOrder {
		b := res.RowBlock[idx]
		if b < prev {
			t.Fatal("blocks not monotone along the row order")
		}
		prev = b
	}
}

func TestEmptyRowsHandled(t *testing.T) {
	a := matrix.New(4, 4)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	// Rows 2, 3 are empty — must not produce NaNs or panic.
	res, err := Cluster(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Permute(a)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			v := p.At(i, j)
			if v != 0 && v != 1 { // lint:exact — indicator matrix holds exact 0/1 entries
				t.Fatalf("corrupted value %v", v)
			}
		}
	}
}

func TestBlockDensityBounds(t *testing.T) {
	a := interleavedBlocks(3, 3)
	res, err := Cluster(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := res.BlockDensity(a)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			v := d.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("density %v out of [0,1]", v)
			}
		}
	}
}
