// Package anchor operationalizes §5.2 of the paper: given what a course
// actually covers (its curriculum classification and its NNMF type), where
// can PDC content anchor without disrupting the course?
//
// Each Rule in the rule base is one of the paper's concrete suggestions —
// reduction order for courses that teach data representation, parallel-for
// for algorithmic CS1s, promise-style concurrency for object-oriented
// CS1s, thread-safe containers and parallel combinatorial algorithms for
// Data Structures flavors, and the parallel task-graph assignment. A rule
// fires for a course when enough of its anchor tags are covered; the
// recommendation lists the matched anchors (the insertion points) and the
// PDC12 entries the content would teach.
package anchor

import (
	"fmt"
	"sort"
	"strings"

	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

// AnchorTag is a curriculum entry a rule can attach to, with a weight
// expressing how load-bearing the entry is for the rule.
type AnchorTag struct {
	Tag    string
	Weight float64
}

// Rule is one PDC-content insertion opportunity.
type Rule struct {
	// ID is a stable slug, Title a human-readable name.
	ID, Title string
	// Audience describes the course flavor the paper aims the content at.
	Audience string
	// Activity describes what students would do.
	Activity string
	// Anchors are the CS2013 entries the content attaches to.
	Anchors []AnchorTag
	// Teaches are the PDC12 entries the content introduces.
	Teaches []string
	// Threshold is the minimum weighted anchor coverage in (0, 1] for the
	// rule to fire.
	Threshold float64
}

// Recommendation is a rule matched against a concrete course.
type Recommendation struct {
	Rule   *Rule
	Course *materials.Course
	// Score is the weighted fraction of the rule's anchors the course
	// covers (0, 1].
	Score float64
	// MatchedAnchors are the course's covered anchor tags — the concrete
	// insertion points an instructor would recognize.
	MatchedAnchors []string
	// MissingAnchors are anchor tags the course does not cover.
	MissingAnchors []string
}

// Recommender matches courses against the §5.2 rule base.
type Recommender struct {
	rules []*Rule
}

// NewRecommender builds the recommender with the paper's rule base,
// validating every referenced tag against the given guidelines.
func NewRecommender(guidelines ...*ontology.Guideline) (*Recommender, error) {
	if len(guidelines) == 0 {
		return nil, fmt.Errorf("anchor: no guidelines")
	}
	lookup := func(tag string) bool {
		for _, g := range guidelines {
			if g.Lookup(tag) != nil {
				return true
			}
		}
		return false
	}
	rules := ruleBase()
	for _, r := range rules {
		if r.Threshold <= 0 || r.Threshold > 1 {
			return nil, fmt.Errorf("anchor: rule %q has threshold %v", r.ID, r.Threshold)
		}
		if len(r.Anchors) == 0 || len(r.Teaches) == 0 {
			return nil, fmt.Errorf("anchor: rule %q lacks anchors or teachings", r.ID)
		}
		for _, a := range r.Anchors {
			if !lookup(a.Tag) {
				return nil, fmt.Errorf("anchor: rule %q references unknown anchor %q", r.ID, a.Tag)
			}
		}
		for _, tch := range r.Teaches {
			if !lookup(tch) {
				return nil, fmt.Errorf("anchor: rule %q teaches unknown entry %q", r.ID, tch)
			}
		}
	}
	return &Recommender{rules: rules}, nil
}

// Rules returns the rule base.
func (r *Recommender) Rules() []*Rule { return r.rules }

// Rule returns the rule with the given ID, or nil.
func (r *Recommender) Rule(id string) *Rule {
	for _, rule := range r.rules {
		if rule.ID == id {
			return rule
		}
	}
	return nil
}

// Recommend evaluates every rule against the course's tag set and returns
// the firing rules sorted by descending score (ties by rule ID).
func (r *Recommender) Recommend(c *materials.Course) []Recommendation {
	tags := c.TagSet()
	var out []Recommendation
	for _, rule := range r.rules {
		rec := score(rule, c, tags)
		if rec.Score >= rule.Threshold {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Rule.ID < out[j].Rule.ID
	})
	return out
}

func score(rule *Rule, c *materials.Course, tags map[string]bool) Recommendation {
	rec := Recommendation{Rule: rule, Course: c}
	total, hit := 0.0, 0.0
	for _, a := range rule.Anchors {
		total += a.Weight
		if tags[a.Tag] {
			hit += a.Weight
			rec.MatchedAnchors = append(rec.MatchedAnchors, a.Tag)
		} else {
			rec.MissingAnchors = append(rec.MissingAnchors, a.Tag)
		}
	}
	sort.Strings(rec.MatchedAnchors)
	sort.Strings(rec.MissingAnchors)
	if total > 0 {
		rec.Score = hit / total
	}
	return rec
}

// Report renders a course's recommendations as a readable block.
func Report(recs []Recommendation) string {
	if len(recs) == 0 {
		return "no anchor points found\n"
	}
	var b strings.Builder
	for _, rec := range recs {
		fmt.Fprintf(&b, "[%.0f%%] %s (%s)\n", rec.Score*100, rec.Rule.Title, rec.Rule.ID)
		fmt.Fprintf(&b, "       audience: %s\n", rec.Rule.Audience)
		fmt.Fprintf(&b, "       activity: %s\n", rec.Rule.Activity)
		fmt.Fprintf(&b, "       anchors covered (%d):\n", len(rec.MatchedAnchors))
		for _, a := range rec.MatchedAnchors {
			fmt.Fprintf(&b, "         - %s\n", a)
		}
		fmt.Fprintf(&b, "       teaches:\n")
		for _, t := range rec.Rule.Teaches {
			fmt.Fprintf(&b, "         + %s\n", t)
		}
	}
	return b.String()
}

// ruleBase encodes §5.2. Anchor weights mark the load-bearing entries;
// thresholds are set so the rule fires for the course flavor the paper
// aims it at and not for the flavors the paper excludes.
func ruleBase() []*Rule {
	return []*Rule{
		{
			ID:       "reduction-order",
			Title:    "Order of operations in parallel reductions",
			Audience: "CS1 type 2 (imperative courses covering in-memory data representation)",
			Activity: "Sum an array in different orders; observe that integer sums agree while floating-point sums differ, and connect the observation to parallel reduction trees.",
			Anchors: []AnchorTag{
				{Tag: "AR/machine-level-representation-of-data/fixed-and-floating-point-representation-of-real-numbers", Weight: 3},
				{Tag: "AR/machine-level-representation-of-data/explain-how-floating-point-rounding-makes-addition-non-associative", Weight: 2},
				{Tag: "AR/machine-level-representation-of-data/signed-and-unsigned-arithmetic-and-overflow", Weight: 1},
				{Tag: "AR/machine-level-representation-of-data/numeric-data-representation-unsigned-and-twos-complement-integers", Weight: 2},
				{Tag: "SDF/fundamental-programming-concepts/iterative-control-structures", Weight: 1},
			},
			Teaches: []string{
				"ARCH/floating-point-representation/non-associativity-of-floating-point-addition",
				"ARCH/floating-point-representation/error-propagation-in-parallel-reductions",
				"ALGO/algorithmic-paradigms/reduction-as-a-parallel-pattern",
			},
			Threshold: 0.55,
		},
		{
			ID:       "parallel-for",
			Title:    "Parallel-for over compute-heavy loops",
			Audience: "CS1 type 1 (courses with algorithmic thinking and implementation, where long runtimes are visible)",
			Activity: "Take an existing O(n²) exercise, measure its runtime, annotate the outer loop parallel-for style, and measure again.",
			Anchors: []AnchorTag{
				{Tag: "AL/basic-analysis/empirical-measurement-of-performance", Weight: 2},
				{Tag: "AL/basic-analysis/big-o-notation-use", Weight: 2},
				{Tag: "AL/fundamental-data-structures-and-algorithms/quadratic-sorting-algorithms-selection-and-insertion-sort", Weight: 2},
				{Tag: "SDF/algorithms-and-design/implementation-of-algorithms", Weight: 2},
				{Tag: "AL/basic-analysis/complexity-classes-such-as-constant-logarithmic-linear-and-quadratic", Weight: 1},
			},
			Teaches: []string{
				"PROG/parallel-programming-notations/parallel-for-loop-annotations-such-as-openmp",
				"PROG/parallel-programming-paradigms/programming-by-data-parallel-decomposition",
				"ALGO/parallel-and-distributed-models-and-complexity/speedup-efficiency-and-scalability",
			},
			Threshold: 0.6,
		},
		{
			ID:       "promise-concurrency",
			Title:    "Promise-style concurrency on objects",
			Audience: "CS1 type 3 (object-oriented programming courses with little algorithmic development)",
			Activity: "Give two independent objects slow methods; have students observe that calls on distinct objects need not be ordered, and coordinate results with promise-style futures or a CORBA-style remote object.",
			Anchors: []AnchorTag{
				{Tag: "PL/object-oriented-programming/object-oriented-design-classes-and-objects", Weight: 2},
				{Tag: "PL/object-oriented-programming/dynamic-dispatch-definition-of-method-call", Weight: 1},
				{Tag: "PL/object-oriented-programming/encapsulation-and-information-hiding", Weight: 2},
				{Tag: "PL/object-oriented-programming/object-interfaces-and-abstract-classes", Weight: 1},
			},
			Teaches: []string{
				"PROG/parallel-programming-notations/futures-and-promises",
				"PROG/parallel-programming-paradigms/client-server-and-distributed-object-paradigms",
				"XCUT/concurrency-concepts/ordering-of-operations-on-shared-objects",
			},
			Threshold: 0.6,
		},
		{
			ID:       "concurrent-data-structures",
			Title:    "Concurrent access to data structures",
			Audience: "all Data Structures flavors (they all cover the core structures)",
			Activity: "Hammer a shared stack or queue from two threads, watch it corrupt, then fix it with a lock and discuss the cost.",
			Anchors: []AnchorTag{
				{Tag: "SDF/fundamental-data-structures/stacks-and-queues", Weight: 2},
				{Tag: "SDF/fundamental-data-structures/linked-lists", Weight: 2},
				{Tag: "SDF/fundamental-data-structures/write-programs-that-use-linked-lists-stacks-and-queues", Weight: 2},
				{Tag: "AL/fundamental-data-structures-and-algorithms/hash-tables-including-collision-avoidance-strategies", Weight: 1},
				{Tag: "AL/fundamental-data-structures-and-algorithms/implement-and-use-a-hash-table-handling-collisions", Weight: 1},
				{Tag: "AL/fundamental-data-structures-and-algorithms/binary-search-trees-common-operations", Weight: 1},
				{Tag: "SDF/fundamental-data-structures/choosing-an-appropriate-data-structure", Weight: 1},
			},
			Teaches: []string{
				"PROG/semantics-and-correctness-issues/thread-safety-of-data-structures",
				"PROG/semantics-and-correctness-issues/mutual-exclusion-with-locks",
				"PROG/semantics-and-correctness-issues/data-races-and-determinism",
			},
			Threshold: 0.55,
		},
		{
			ID:       "thread-safe-types",
			Title:    "Thread-safe types (ArrayList versus Vector)",
			Audience: "DS type 2 (object-oriented Data Structures courses)",
			Activity: "Compare Java's ArrayList and Vector under concurrent mutation; articulate that thread safety is the primary difference between the two types.",
			Anchors: []AnchorTag{
				{Tag: "PL/object-oriented-programming/collection-classes-and-iterators", Weight: 3},
				{Tag: "PL/object-oriented-programming/generics-and-parameterized-types", Weight: 2},
				{Tag: "SDF/fundamental-data-structures/choosing-an-appropriate-data-structure", Weight: 1},
				{Tag: "PL/object-oriented-programming/object-interfaces-and-abstract-classes", Weight: 1},
			},
			Teaches: []string{
				"PROG/parallel-programming-notations/concurrent-collections-and-thread-safe-containers",
				"PROG/semantics-and-correctness-issues/thread-safety-of-data-structures",
			},
			Threshold: 0.6,
		},
		{
			ID:       "parallel-brute-force",
			Title:    "Cilk-style parallel brute force",
			Audience: "DS type 3 (combinatorial algorithms courses)",
			Activity: "Parallelize an exhaustive search (subset enumeration or backtracking) with spawn/sync task parallelism; brute-force algorithms are perfect for cilk-like parallelism.",
			Anchors: []AnchorTag{
				{Tag: "AL/algorithmic-strategies/brute-force-algorithms", Weight: 3},
				{Tag: "AL/algorithmic-strategies/recursive-backtracking", Weight: 2},
				{Tag: "DS/basics-of-counting/permutations-and-combinations", Weight: 1},
			},
			Teaches: []string{
				"PROG/parallel-programming-notations/task-spawn-constructs-such-as-cilk-spawn-and-sync",
				"ALGO/algorithmic-paradigms/recursive-task-based-parallelism",
				"ALGO/algorithmic-paradigms/speculative-execution-and-branch-and-bound",
			},
			Threshold: 0.6,
		},
		{
			ID:       "parallel-dynamic-programming",
			Title:    "Parallelizing dynamic programming",
			Audience: "DS type 3 (combinatorial algorithms courses covering dynamic programming)",
			Activity: "Parallelize a bottom-up DP table with parallel-for over anti-diagonals; contrast with top-down memoization, whose dependency pattern justifies a tasking model.",
			Anchors: []AnchorTag{
				{Tag: "AL/algorithmic-strategies/dynamic-programming", Weight: 3},
				{Tag: "AL/algorithmic-strategies/use-dynamic-programming-to-solve-an-appropriate-problem", Weight: 2},
				{Tag: "AL/basic-analysis/recurrence-relations-and-the-analysis-of-recursive-algorithms", Weight: 1},
			},
			Teaches: []string{
				"ALGO/algorithmic-paradigms/bottom-up-dynamic-programming-in-parallel",
				"PROG/parallel-programming-notations/parallel-for-loop-annotations-such-as-openmp",
				"ALGO/parallel-and-distributed-models-and-complexity/dependencies-and-task-graphs-as-models-of-computation",
			},
			Threshold: 0.7,
		},
		{
			ID:       "task-graph-scheduling",
			Title:    "Parallel task graphs and list scheduling",
			Audience: "all DS flavors covering graphs; fits type 1 (problem-solving) best",
			Activity: "Model a computation as a DAG, topologically sort it for a feasible order, compute the critical path to see how parallel it is, and implement a list-scheduling simulator with a priority queue (see the taskgraph package and the schedulerlab example).",
			Anchors: []AnchorTag{
				{Tag: "DS/graphs-and-trees/directed-graphs", Weight: 2},
				{Tag: "AL/fundamental-data-structures-and-algorithms/graphs-and-graph-algorithms-representations", Weight: 2},
				{Tag: "AL/fundamental-data-structures-and-algorithms/heaps-and-priority-queues", Weight: 2},
				{Tag: "AL/fundamental-data-structures-and-algorithms/topological-sort-of-a-directed-acyclic-graph", Weight: 1},
			},
			Teaches: []string{
				"ALGO/parallel-and-distributed-models-and-complexity/critical-path-as-a-lower-bound-on-time",
				"ALGO/parallel-and-distributed-models-and-complexity/work-and-span-of-a-computation-dag",
				"ALGO/algorithmic-problems/list-scheduling-and-makespan-minimization",
				"ALGO/algorithmic-problems/topological-sort-for-dependency-resolution",
			},
			Threshold: 0.55,
		},
	}
}
