package anchor

import (
	"strings"
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

func newRecommender(t *testing.T) *Recommender {
	t.Helper()
	r, err := NewRecommender(ontology.CS2013(), ontology.PDC12())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func recIDs(recs []Recommendation) map[string]float64 {
	out := map[string]float64{}
	for _, r := range recs {
		out[r.Rule.ID] = r.Score
	}
	return out
}

func TestNewRecommenderValidatesRules(t *testing.T) {
	if _, err := NewRecommender(); err == nil {
		t.Fatal("no guidelines accepted")
	}
	// All rule tags must resolve against the real guidelines (this is the
	// typo guard for the rule base).
	r := newRecommender(t)
	if len(r.Rules()) < 8 {
		t.Fatalf("rule base has %d rules, want >= 8 (§5.2)", len(r.Rules()))
	}
	for _, rule := range r.Rules() {
		if rule.Activity == "" || rule.Audience == "" || rule.Title == "" {
			t.Errorf("rule %q missing documentation fields", rule.ID)
		}
	}
}

func TestRuleLookup(t *testing.T) {
	r := newRecommender(t)
	if r.Rule("parallel-for") == nil {
		t.Fatal("parallel-for rule missing")
	}
	if r.Rule("nope") != nil {
		t.Fatal("unknown rule returned")
	}
}

func TestScoreComputation(t *testing.T) {
	r := newRecommender(t)
	rule := r.Rule("promise-concurrency")
	course := &materials.Course{
		ID: "x", Name: "X", Group: materials.GroupOOP,
		Materials: []*materials.Material{{
			ID: "m", Title: "m", Type: materials.Lecture,
			Tags: []string{
				"PL/object-oriented-programming/object-oriented-design-classes-and-objects",
				"PL/object-oriented-programming/encapsulation-and-information-hiding",
			},
		}},
	}
	recs := r.Recommend(course)
	ids := recIDs(recs)
	// classes(2) + encapsulation(2) of total 6 = 0.667 ≥ 0.6.
	got, ok := ids["promise-concurrency"]
	if !ok {
		t.Fatalf("promise-concurrency did not fire: %v", ids)
	}
	if got < 0.66 || got > 0.68 {
		t.Fatalf("score = %v, want ~2/3", got)
	}
	// Matched and missing anchors partition the rule's anchors.
	for _, rec := range recs {
		if rec.Rule.ID == "promise-concurrency" {
			if len(rec.MatchedAnchors)+len(rec.MissingAnchors) != len(rule.Anchors) {
				t.Fatal("matched+missing != anchors")
			}
		}
	}
}

func TestRecommendationsSorted(t *testing.T) {
	r := newRecommender(t)
	for _, c := range dataset.Courses() {
		recs := r.Recommend(c)
		for i := 1; i < len(recs); i++ {
			if recs[i].Score > recs[i-1].Score {
				t.Fatalf("course %s: recommendations not sorted", c.ID)
			}
		}
	}
}

// TestSection52CS1Claims asserts the paper's CS1 recommendations:
// reduction-order fits the type 2 courses (Kerney, Bourke) and does not
// fit types 1 and 3 (Ahmed, Singh, and the pure intro courses), the
// algorithmic course gets parallel-for, and the OOP course gets
// promise-style concurrency.
func TestSection52CS1Claims(t *testing.T) {
	r := newRecommender(t)
	recsFor := func(id string) map[string]float64 {
		return recIDs(r.Recommend(dataset.Repository().Course(id)))
	}

	kerney := recsFor("ccc-csci40-kerney")
	if _, ok := kerney["reduction-order"]; !ok {
		t.Error("Kerney (type 2) must get the reduction-order activity")
	}
	bourke := recsFor("unl-csce155e-bourke")
	if _, ok := bourke["reduction-order"]; !ok {
		t.Error("Bourke (type 2, C course) must get the reduction-order activity")
	}
	for _, id := range []string{"washu-cse131-singh", "tulane-cmps1100-kurdia", "ucf-cop3502-ahmed", "tulane-cmps1500-toups"} {
		if _, ok := recsFor(id)["reduction-order"]; ok {
			t.Errorf("%s (not type 2) must not get reduction-order", id)
		}
	}

	ahmed := recsFor("ucf-cop3502-ahmed")
	if _, ok := ahmed["parallel-for"]; !ok {
		t.Error("Ahmed (type 1, algorithmic) must get parallel-for")
	}

	singh := recsFor("washu-cse131-singh")
	if _, ok := singh["promise-concurrency"]; !ok {
		t.Error("Singh (type 3, OOP) must get promise-style concurrency")
	}
	if _, ok := singh["parallel-for"]; ok {
		t.Error("Singh (OOP, no algorithmic development) must not get parallel-for")
	}
	if _, ok := kerney["promise-concurrency"]; ok {
		t.Error("Kerney (imperative) must not get promise-style concurrency")
	}
}

// TestSection52DSClaims asserts the paper's Data Structures
// recommendations: every DS flavor can host concurrent-data-structure
// discussions, the OOP flavor gets thread-safe types, the combinatorial
// flavor gets brute-force and dynamic-programming parallelism, and the
// task-graph assignment fits every flavor (they all cover graphs).
func TestSection52DSClaims(t *testing.T) {
	r := newRecommender(t)
	recsFor := func(id string) map[string]float64 {
		return recIDs(r.Recommend(dataset.Repository().Course(id)))
	}

	for _, id := range dataset.DSCourseIDs() {
		ids := recsFor(id)
		if _, ok := ids["concurrent-data-structures"]; !ok {
			t.Errorf("DS course %s must get concurrent-data-structures", id)
		}
		if _, ok := ids["task-graph-scheduling"]; !ok {
			t.Errorf("DS course %s must get task-graph-scheduling (all flavors cover graphs)", id)
		}
	}

	vcu := recsFor("vcu-cmsc256-duke")
	if _, ok := vcu["thread-safe-types"]; !ok {
		t.Error("VCU (DS type 2, OOP) must get thread-safe-types")
	}

	for _, id := range []string{"bsc-cac210-wagner", "uncc-2215-krs"} {
		ids := recsFor(id)
		if _, ok := ids["parallel-brute-force"]; !ok {
			t.Errorf("%s (combinatorial) must get parallel-brute-force", id)
		}
		if _, ok := ids["parallel-dynamic-programming"]; !ok {
			t.Errorf("%s (combinatorial) must get parallel-dynamic-programming", id)
		}
	}
}

// TestPDCCoursesNeedNoAnchors: the recommender targets early CS courses;
// the PDC courses themselves already teach this content and should not
// dominate the recommendations (their CS2013 coverage is PDC-focused).
func TestPDCCoursesNeedNoAnchors(t *testing.T) {
	r := newRecommender(t)
	for _, id := range dataset.PDCCourseIDs() {
		recs := r.Recommend(dataset.Repository().Course(id))
		if len(recs) > 1 {
			t.Errorf("PDC course %s received %d recommendations; expected at most 1", id, len(recs))
		}
	}
}

func TestTeachesResolveToPDC12(t *testing.T) {
	r := newRecommender(t)
	pdc := ontology.PDC12()
	for _, rule := range r.Rules() {
		for _, tag := range rule.Teaches {
			n := pdc.Lookup(tag)
			if n == nil {
				t.Errorf("rule %s teaches %q, which is not a PDC12 entry", rule.ID, tag)
				continue
			}
			if n.Kind != ontology.KindTopic {
				t.Errorf("rule %s teaches non-topic %q", rule.ID, tag)
			}
		}
	}
}

// TestTeachingsMigrateToPDC20 verifies that every PDC12 entry the rule
// base teaches has a home in the PDC 2.0-beta revision — either the same
// ID or a crosswalk mapping — so the recommender survives the guideline
// update the paper anticipates.
func TestTeachingsMigrateToPDC20(t *testing.T) {
	r := newRecommender(t)
	pdc20 := ontology.PDC20Beta()
	crosswalk := ontology.CrosswalkPDC12To20()
	for _, rule := range r.Rules() {
		for _, tag := range rule.Teaches {
			if pdc20.Lookup(tag) != nil {
				continue
			}
			if mapped, ok := crosswalk[tag]; ok {
				if pdc20.Lookup(mapped) == nil {
					t.Errorf("rule %s: crosswalk target %q missing from PDC 2.0-beta", rule.ID, mapped)
				}
				continue
			}
			t.Errorf("rule %s teaches %q, which has no home in PDC 2.0-beta", rule.ID, tag)
		}
	}
}

func TestReport(t *testing.T) {
	r := newRecommender(t)
	recs := r.Recommend(dataset.Repository().Course("vcu-cmsc256-duke"))
	out := Report(recs)
	if !strings.Contains(out, "thread-safe-types") {
		t.Fatalf("report missing rule: %s", out)
	}
	if !strings.Contains(out, "anchors covered") || !strings.Contains(out, "teaches:") {
		t.Fatal("report missing sections")
	}
	if Report(nil) != "no anchor points found\n" {
		t.Fatal("empty report wrong")
	}
}

func TestEmptyCourseGetsNothing(t *testing.T) {
	r := newRecommender(t)
	c := &materials.Course{ID: "empty", Name: "Empty", Group: materials.GroupOther}
	if recs := r.Recommend(c); len(recs) != 0 {
		t.Fatalf("empty course got %d recommendations", len(recs))
	}
}
