// End-to-end integration tests: drive the whole reproduction pipeline the
// way cmd/figures and cmd/workshop do — dataset synthesis, repository
// persistence, factorization, agreement, anchor recommendation, catalog
// recommendation — and assert the pieces compose.
package csmaterials_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"csmaterials/internal/agreement"
	"csmaterials/internal/anchor"
	"csmaterials/internal/audit"
	"csmaterials/internal/catalog"
	"csmaterials/internal/core"
	"csmaterials/internal/dataset"
	"csmaterials/internal/factorize"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
	"csmaterials/internal/search"
	"csmaterials/internal/simgraph"
)

// TestFullPipelineRoundTrip exports the dataset to JSON, reloads it into
// a fresh repository, and verifies the analyses produce identical results
// on the reloaded data — persistence does not lose analysis-relevant
// information.
func TestFullPipelineRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := dataset.Repository().SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded := materials.NewRepository(ontology.CS2013(), ontology.PDC12())
	if err := reloaded.LoadJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if len(reloaded.Courses()) != 20 {
		t.Fatalf("reloaded %d courses", len(reloaded.Courses()))
	}

	// Agreement results identical on original and reloaded data.
	orig, err := agreement.Analyze(dataset.CoursesByID(dataset.CS1CourseIDs()), ontology.CS2013())
	if err != nil {
		t.Fatal(err)
	}
	var reCS1 []*materials.Course
	for _, id := range dataset.CS1CourseIDs() {
		reCS1 = append(reCS1, reloaded.Course(id))
	}
	re, err := agreement.Analyze(reCS1, ontology.CS2013())
	if err != nil {
		t.Fatal(err)
	}
	if orig.NumTags() != re.NumTags() || orig.AtLeast(3) != re.AtLeast(3) {
		t.Fatal("agreement differs after JSON round trip")
	}

	// Factorization identical (same matrix, same seed).
	m1, err := factorize.Analyze(dataset.Courses(), 4, factorize.PaperOptions(), ontology.CS2013(), ontology.PDC12())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := factorize.Analyze(reloaded.Courses(), 4, factorize.PaperOptions(), ontology.CS2013(), ontology.PDC12())
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Courses {
		if m1.DominantType(i) != m2.DominantType(i) {
			t.Fatalf("course %d type differs after round trip", i)
		}
	}
}

// TestAnchorsFollowTypes ties the two halves of the paper together: the
// courses the NNMF assigns to a flavor get the recommendations §5.2 aims
// at that flavor.
func TestAnchorsFollowTypes(t *testing.T) {
	model, err := factorize.Analyze(dataset.CoursesByID(dataset.CS1CourseIDs()), 3,
		factorize.PaperOptions(), ontology.CS2013(), ontology.PDC12())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := anchor.NewRecommender(ontology.CS2013(), ontology.PDC12())
	if err != nil {
		t.Fatal(err)
	}
	// Find the imperative+representation type via its AR mass.
	arType, best := 0, -1.0
	for typ := 0; typ < 3; typ++ {
		if s := model.KAShare(typ)["AR"]; s > best {
			best, arType = s, typ
		}
	}
	// Every CS1 course dominated by that type gets the reduction-order
	// rule; courses dominated by the PL-heavy type get promises.
	plType, best := 0, -1.0
	for typ := 0; typ < 3; typ++ {
		if s := model.KAShare(typ)["PL"]; s > best {
			best, plType = s, typ
		}
	}
	for i, c := range model.Courses {
		recs := rec.Recommend(c)
		has := func(id string) bool {
			for _, r := range recs {
				if r.Rule.ID == id {
					return true
				}
			}
			return false
		}
		share := model.TypeShare(i)
		switch {
		case model.DominantType(i) == arType && share[arType] > 0.9:
			if !has("reduction-order") {
				t.Errorf("course %s strongly in the representation type but no reduction-order rule", c.ID)
			}
		case model.DominantType(i) == plType && share[plType] > 0.9:
			if !has("promise-concurrency") {
				t.Errorf("course %s strongly in the OOP type but no promise rule", c.ID)
			}
		}
	}
}

// TestSearchFindsCatalogEntriesWhenLoaded verifies the future-work flow:
// load the public catalog into the repository next to real courses and
// search across both.
func TestSearchFindsCatalogEntriesWhenLoaded(t *testing.T) {
	repo := materials.NewRepository(ontology.CS2013(), ontology.PDC12())
	for _, c := range dataset.Courses() {
		// Courses are shared instances; adding them to a second repository
		// is fine because repositories only index.
		if err := repo.AddCourse(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range catalog.AsCourses() {
		if err := repo.AddCourse(c); err != nil {
			t.Fatal(err)
		}
	}
	engine := search.NewEngine(repo)
	res := engine.Search(search.Query{
		TagPrefixes: []string{"ALGO/parallel-and-distributed-models-and-complexity/"},
		Limit:       30,
	})
	foundCatalog, foundCourse := false, false
	for _, r := range res {
		if strings.HasPrefix(r.Material.ID, "catalog/") {
			foundCatalog = true
		} else {
			foundCourse = true
		}
	}
	if !foundCatalog || !foundCourse {
		t.Fatalf("cross-repository search incomplete: catalog=%v course=%v", foundCatalog, foundCourse)
	}
}

// TestWorkshopPipelinePieces drives the workshop steps programmatically.
func TestWorkshopPipelinePieces(t *testing.T) {
	course := dataset.Repository().Course("vcu-cmsc256-duke")

	// Alignment between material kinds.
	var lectures, assessments []*materials.Material
	for _, m := range course.Materials {
		if m.Type == materials.Lecture {
			lectures = append(lectures, m)
		} else {
			assessments = append(assessments, m)
		}
	}
	al := agreement.Align(lectures, assessments)
	if al.Jaccard <= 0 || al.Jaccard >= 1 {
		t.Fatalf("alignment %v should be strictly between 0 and 1 for this dataset", al.Jaccard)
	}

	// Similarity map embeds without error and separates materials.
	g, err := simgraph.Build(course.Materials[:10], simgraph.Jaccard)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Embed(1); err != nil {
		t.Fatal(err)
	}

	// Audit, readiness, catalog recommendations all fire.
	rep := audit.Audit(course, ontology.CS2013())
	if rep.TierCoverage(ontology.TierCore1) <= 0 {
		t.Fatal("zero core-1 coverage for a DS course")
	}
	if audit.AssessPDCReadiness(course).PrerequisiteScore() <= 0 {
		t.Fatal("zero PDC readiness for a DS course")
	}
	if len(catalog.Recommend(course, 5)) == 0 {
		t.Fatal("no catalog recommendations for a DS course")
	}
}

// TestFiguresMatchDirectAnalyses cross-checks the core facade against the
// underlying packages (guards against the facade drifting from the
// analyses it wraps).
func TestFiguresMatchDirectAnalyses(t *testing.T) {
	art, err := core.Figure3a()
	if err != nil {
		t.Fatal(err)
	}
	a, err := agreement.Analyze(dataset.CoursesByID(dataset.CS1CourseIDs()), ontology.CS2013(), ontology.PDC12())
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Split(art.Text, "\n")[0]
	if !strings.Contains(want, "246") && !strings.Contains(want, "map to") {
		t.Logf("header: %s", want)
	}
	if !strings.Contains(art.Text, "map to") {
		t.Fatal("figure 3a text malformed")
	}
	// The number in the figure equals the direct analysis.
	if !strings.Contains(art.Text, strconv.Itoa(a.NumTags())) {
		t.Fatalf("figure 3a does not report the direct tag count %d", a.NumTags())
	}
}
